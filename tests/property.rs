//! Property-based tests over the substrate invariants.
//!
//! Strategy: `proptest` drives seeds and scalar knobs; the domain generators
//! (databases, UDFs, queries) are deterministic functions of those seeds, so
//! failures shrink to a reproducible seed.

use graceful::prelude::*;
use graceful_cfg::EdgeKind;
use graceful_common::metrics::q_error;
use graceful_common::rng::Rng;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every generated UDF's printed source re-parses to the identical AST.
    #[test]
    fn generated_udfs_round_trip(seed in 0u64..5_000) {
        let db = generate(&schema("tpc_h"), 0.02, 1);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        let reparsed = parse_udf(&u.source).expect("generated UDF parses");
        prop_assert_eq!(&u.def, &reparsed);
    }

    /// Every generated UDF evaluates without error on adapted data and its
    /// DAG satisfies the paper's structural invariants.
    #[test]
    fn generated_udfs_evaluate_and_lower(seed in 0u64..5_000) {
        let mut db = generate(&schema("imdb"), 0.02, 2);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        let table = db.table(&u.table).unwrap();
        let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
        let mut interp = Interpreter::default();
        for row in 0..table.num_rows().min(10) {
            let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
            let out = interp.eval(&u.def, &args).expect("UDF evaluates");
            prop_assert!(out.cost.total > 0.0);
        }
        // DAG invariants: single INV + RET, balanced LOOP/LOOP_END, acyclic
        // by index order, one residual edge per loop.
        let types: Vec<DataType> = u
            .input_columns
            .iter()
            .map(|c| table.column_type(c).unwrap())
            .collect();
        let dag = build_dag(&u.def, &types, DataType::Float, DagConfig::default());
        let count = |k: UdfNodeKind| dag.nodes.iter().filter(|n| n.kind == k).count();
        prop_assert_eq!(count(UdfNodeKind::Inv), 1);
        prop_assert_eq!(count(UdfNodeKind::Ret), 1);
        prop_assert_eq!(count(UdfNodeKind::Loop), count(UdfNodeKind::LoopEnd));
        let residuals = dag.edges.iter().filter(|(_, _, k)| *k == EdgeKind::Residual).count();
        prop_assert_eq!(residuals, count(UdfNodeKind::Loop));
        for &(s, d, _) in &dag.edges {
            prop_assert!(s < d);
        }
    }

    /// Row annotation conserves probability: INV and RET always carry the
    /// full input rows; no node exceeds them.
    #[test]
    fn dag_row_annotation_is_conservative(seed in 0u64..5_000, sel in 0.01f64..0.99) {
        let db = generate(&schema("tpc_h"), 0.02, 3);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        let mut dag = build_dag(&u.def, &[], DataType::Float, DagConfig::default());
        dag.annotate_rows(1000.0, |conds| {
            conds.iter().fold(1.0, |p, (c, taken)| {
                let s = c.as_ref().map_or(0.5, |_| sel);
                p * if *taken { s } else { 1.0 - s }
            })
        });
        prop_assert!((dag.nodes[dag.inv].in_rows - 1000.0).abs() < 1e-6);
        prop_assert!((dag.nodes[dag.ret].in_rows - 1000.0).abs() < 1e-6);
        for n in &dag.nodes {
            prop_assert!(n.in_rows <= 1000.0 + 1e-6);
            prop_assert!(n.in_rows >= -1e-6);
        }
    }

    /// Plan rewrites preserve query answers (pull-up == push-down), for any
    /// generated query with a movable UDF filter.
    #[test]
    fn plan_rewrites_preserve_semantics(seed in 0u64..2_000) {
        let mut db = generate(&schema("movielens"), 0.02, 4);
        let qgen = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = qgen.generate(&db, seed, &mut rng).unwrap();
        prop_assume!(spec.has_udf() && spec.udf_usage == UdfUsage::Filter && !spec.joins.is_empty());
        if let Some(u) = &spec.udf {
            graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        }
        let exec = Session::from_env().unwrap().executor(&db);
        let mut results = Vec::new();
        for placement in graceful::plan::valid_placements(&spec) {
            let plan = build_plan(&spec, placement).unwrap();
            plan.validate().unwrap();
            results.push(exec.run(&plan, spec.id).unwrap().agg_value);
        }
        for w in results.windows(2) {
            let rel = (w[0] - w[1]).abs() / w[0].abs().max(1e-9);
            prop_assert!(rel < 1e-9, "placements disagree: {:?}", results);
        }
    }

    /// The bytecode VM is a drop-in replacement for the tree-walker: for
    /// every generator-produced UDF and every row, the evaluated value AND
    /// the accounted cost (every counter, bit-for-bit totals) must match.
    #[test]
    fn vm_matches_tree_walker_on_generated_corpus(seed in 0u64..5_000) {
        let mut db = generate(&schema("tpc_h"), 0.02, 6);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        let table = db.table(&u.table).unwrap();
        let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
        let prog = compile(&u.def).expect("generated UDF compiles");
        let mut interp = Interpreter::default();
        let mut vm = Vm::default();
        for row in 0..table.num_rows().min(16) {
            let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
            let reference = interp.eval(&u.def, &args).expect("tree-walker evaluates");
            let out = vm.eval(&prog, &args).expect("VM evaluates");
            prop_assert_eq!(&out.value, &reference.value, "row {} value", row);
            prop_assert_eq!(&out.cost, &reference.cost, "row {} cost", row);
        }
    }

    /// Batch evaluation equals row-at-a-time evaluation: same outputs in
    /// order, and the batch cost counter equals the row costs merged in row
    /// order (so the engine's work accounting is batch-size independent).
    #[test]
    fn vm_batches_equal_rows(seed in 0u64..5_000) {
        let mut db = generate(&schema("ssb"), 0.02, 8);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        let table = db.table(&u.table).unwrap();
        let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
        let rows = table.num_rows().min(24);
        let col_data: Vec<Vec<Value>> = cols
            .iter()
            .map(|c| (0..rows).map(|r| c.value(r)).collect())
            .collect();
        let prog = compile(&u.def).unwrap();
        let mut vm = Vm::default();
        let slices: Vec<&[Value]> = col_data.iter().map(|c| c.as_slice()).collect();
        let mut batch_out = Vec::new();
        let mut batch_cost = graceful::udf::CostCounter::new();
        vm.eval_batch(&prog, &slices, &mut batch_out, &mut batch_cost).unwrap();
        prop_assert_eq!(batch_out.len(), rows);
        let mut merged = graceful::udf::CostCounter::new();
        for r in 0..rows {
            let args: Vec<Value> = col_data.iter().map(|c| c[r].clone()).collect();
            let one = vm.eval(&prog, &args).unwrap();
            prop_assert_eq!(&one.value, &batch_out[r]);
            merged.merge(&one.cost);
        }
        prop_assert_eq!(merged, batch_cost);
    }

    /// The columnar SIMD path is a drop-in for the batch VM: over the
    /// generated corpus, batch values and the merged cost counters (every
    /// counter, bit-for-bit `f64` totals) must equal both the row-at-a-time
    /// VM and a tree-walker row loop.
    #[test]
    fn simd_matches_vm_and_tree_walker_on_generated_corpus(seed in 0u64..5_000) {
        let mut db = generate(&schema("baseball"), 0.02, 9);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        let table = db.table(&u.table).unwrap();
        let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
        let rows = table.num_rows().min(48);
        let col_data: Vec<Vec<Value>> =
            cols.iter().map(|c| (0..rows).map(|r| c.value(r)).collect()).collect();
        let slices: Vec<&[Value]> = col_data.iter().map(|c| c.as_slice()).collect();
        let prog = compile(&u.def).unwrap();
        let shape = prog.simd_shape();

        let mut simd_vm = Vm::default();
        let mut simd_out = Vec::new();
        let mut simd_cost = graceful::udf::CostCounter::new();
        graceful::udf::simd::eval_batch_values(
            &mut simd_vm, &prog, &shape, &slices, &mut simd_out, &mut simd_cost,
        ).expect("SIMD path evaluates");

        let mut vm = Vm::default();
        let mut vm_out = Vec::new();
        let mut vm_cost = graceful::udf::CostCounter::new();
        vm.eval_batch(&prog, &slices, &mut vm_out, &mut vm_cost).expect("VM evaluates");
        prop_assert_eq!(&simd_out, &vm_out, "values differ from batch VM");
        prop_assert_eq!(&simd_cost, &vm_cost, "counters differ from batch VM");
        prop_assert_eq!(
            simd_cost.total.to_bits(), vm_cost.total.to_bits(),
            "work totals not bit-identical: {} vs {}", simd_cost.total, vm_cost.total
        );

        let mut interp = Interpreter::default();
        let mut tw_cost = graceful::udf::CostCounter::new();
        for r in 0..rows {
            let args: Vec<Value> = col_data.iter().map(|c| c[r].clone()).collect();
            let o = interp.eval(&u.def, &args).expect("tree-walker evaluates");
            prop_assert_eq!(&o.value, &simd_out[r], "row {} value", r);
            tw_cost.merge(&o.cost);
        }
        prop_assert_eq!(&simd_cost, &tw_cost, "counters differ from tree-walker");
        prop_assert_eq!(simd_cost.total.to_bits(), tw_cost.total.to_bits());
    }

    /// Q-error is symmetric and >= 1 for all positive pairs.
    #[test]
    fn q_error_properties(a in 1e-6f64..1e12, b in 1e-6f64..1e12) {
        let q = q_error(a, b);
        prop_assert!(q >= 1.0);
        prop_assert!((q - q_error(b, a)).abs() < 1e-9 * q);
    }

    /// Histogram selectivities are monotone in the threshold and bounded.
    #[test]
    fn histogram_selectivity_monotone(seed in 0u64..10_000) {
        let mut rng = Rng::seed(seed);
        let values: Vec<f64> = (0..500).map(|_| rng.normal(0.0, 10.0)).collect();
        if let Some(h) = graceful::storage::Histogram::build(values) {
            let mut prev = 0.0;
            for i in -40..=40 {
                let s = h.selectivity_lt(i as f64);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!(s >= prev - 1e-9);
                prev = s;
            }
        }
    }

    /// Estimator outputs are always finite, non-negative selectivities.
    #[test]
    fn estimator_selectivities_in_range(seed in 0u64..2_000, lit in -100f64..100.0) {
        let db = generate(&schema("airline"), 0.02, 5);
        let preds = vec![graceful::plan::Pred::new(
            "flight",
            "dep_delay",
            graceful::udf::ast::CmpOp::Lt,
            Value::Float(lit),
        )];
        let actual = ActualCard::new(&db);
        let naive = NaiveCard::new(&db);
        let dd = DataDrivenCard::build(&db, seed);
        let samp = SamplingCard::new(&db, 50, seed);
        for est in [&actual as &dyn CardEstimator, &naive, &dd, &samp] {
            let s = est.conjunction_selectivity("flight", &preds);
            prop_assert!((0.0..=1.0).contains(&s), "{} returned {s}", est.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The bytecode verifier accepts every program the compiler emits over
    /// the generated corpus. `compile()` already runs it (strict is the
    /// default [`graceful_common::config::VerifyMode`]); a second explicit
    /// pass proves verification is idempotent on an accepted program.
    #[test]
    fn verifier_accepts_every_compiled_program(seed in 0u64..5_000) {
        use graceful_common::config::VerifyMode;
        let db = generate(&schema("imdb"), 0.02, 11);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        let prog = graceful::udf::compile_with(&u.def, VerifyMode::Strict)
            .expect("strict compile verifies");
        graceful::udf::analysis::verify(&prog).expect("verification is idempotent");
    }

    /// Corrupted bytecode — the mutations a decoder bug or a stale plan
    /// cache could produce — is rejected with a typed
    /// [`GracefulError::Verify`] before anything executes it: never a panic,
    /// never a silent accept.
    #[test]
    fn corrupted_bytecode_is_rejected_not_executed(seed in 0u64..2_000) {
        use graceful::udf::bytecode::{Instr, Operand};
        use graceful_common::GracefulError;
        let db = generate(&schema("ssb"), 0.02, 12);
        let gen = UdfGenerator::default();
        let mut rng = Rng::seed(seed);
        let u = gen.generate(&db, &mut rng).unwrap();
        let prog = compile(&u.def).unwrap();
        let verify = graceful::udf::analysis::verify;

        // Jump target far past the end of the program.
        let jump_pc = prog.instrs.iter().position(|i| {
            matches!(i, Instr::Jump { .. } | Instr::JumpIfFalse { .. } | Instr::JumpIfTrue { .. })
        });
        if let Some(pc) = jump_pc {
            let mut bad = prog.clone();
            match &mut bad.instrs[pc] {
                Instr::Jump { target }
                | Instr::JumpIfFalse { target, .. }
                | Instr::JumpIfTrue { target, .. } => *target = 1_000_000,
                _ => unreachable!(),
            }
            prop_assert!(matches!(verify(&bad), Err(GracefulError::Verify(_))));
        }

        // Dropped trailing return (the compiler always ends on one):
        // control can now fall off the end of the instruction stream.
        let mut bad = prog.clone();
        let last = bad.instrs.len() - 1;
        bad.instrs[last] = Instr::Cost(graceful::udf::bytecode::CostKind::Stmt);
        prop_assert!(matches!(verify(&bad), Err(GracefulError::Verify(_))));

        // Write to a register past the frame.
        let mut bad = prog.clone();
        bad.instrs.insert(0, Instr::Copy { dst: prog.n_regs + 7, src: Operand::constant(0) });
        prop_assert!(matches!(verify(&bad), Err(GracefulError::Verify(_))));

        // Read of a constant-pool index that does not exist.
        let mut bad = prog.clone();
        let oob = Operand::constant(prog.consts.len() as u16 + 5);
        bad.instrs.insert(0, Instr::Copy { dst: 0, src: oob });
        prop_assert!(matches!(verify(&bad), Err(GracefulError::Verify(_))));
    }

    /// A constant-trip `for` loop — which bailed every row to the scalar VM
    /// before trip-count analysis — now runs entirely on SIMD lanes (zero
    /// bail rows) and stays bit-identical to the scalar VM and the
    /// tree-walker across random inputs.
    #[test]
    fn counted_loops_run_columnar_and_bit_identical(seed in 0u64..5_000) {
        use graceful::udf::{InstrClass, TypedCol};
        let u = parse_udf(
            "def f(x0):\n    z = 0\n    for i in range(12):\n        z = z + i * x0\n    return z\n",
        )
        .unwrap();
        let prog = compile(&u).unwrap();
        let shape = prog.simd_shape();
        prop_assert!(shape.class.contains(&InstrClass::Counted), "loop is counted");
        prop_assert!(!shape.class.contains(&InstrClass::Bail), "nothing bails");

        let mut rng = Rng::seed(seed);
        let rows = 256;
        let data: Vec<Value> =
            (0..rows).map(|_| Value::Int(rng.normal(0.0, 50.0) as i64)).collect();
        let cols = vec![TypedCol::from_values(&data).expect("int column types")];

        let mut simd_vm = Vm::default();
        let mut simd_out = Vec::new();
        let mut simd_cost = graceful::udf::CostCounter::new();
        let mut stats = graceful::udf::SimdBatchStats::default();
        graceful::udf::simd::eval_batch_typed_with_stats(
            &mut simd_vm, &prog, &shape, &cols, &mut simd_out, &mut simd_cost, &mut stats,
        )
        .expect("SIMD path evaluates");
        prop_assert_eq!(stats.bail_rows, 0, "counted loop must not bail");
        prop_assert_eq!(stats.fast_rows, rows as u64);

        let slices = vec![data.as_slice()];
        let mut vm = Vm::default();
        let mut vm_out = Vec::new();
        let mut vm_cost = graceful::udf::CostCounter::new();
        vm.eval_batch(&prog, &slices, &mut vm_out, &mut vm_cost).unwrap();
        prop_assert_eq!(&simd_out, &vm_out);
        prop_assert_eq!(&simd_cost, &vm_cost);
        prop_assert_eq!(simd_cost.total.to_bits(), vm_cost.total.to_bits());

        let mut interp = Interpreter::default();
        let mut tw_cost = graceful::udf::CostCounter::new();
        for r in 0..rows {
            let o = interp.eval(&u, &[data[r].clone()]).unwrap();
            prop_assert_eq!(&o.value, &simd_out[r], "row {} value", r);
            tw_cost.merge(&o.cost);
        }
        prop_assert_eq!(&simd_cost, &tw_cost);
        prop_assert_eq!(simd_cost.total.to_bits(), tw_cost.total.to_bits());
    }
}

/// The mutated plan must be rejected twice over: by the standalone plan
/// verifier, and by the executor under its default strict gate — both with
/// the typed [`GracefulError::PlanVerify`](graceful_common::GracefulError),
/// never a panic, never a silent accept.
fn assert_plan_rejected(db: &Database, bad: &graceful::plan::Plan, seed: u64, what: &str) {
    use graceful_common::GracefulError;
    match graceful::plan::analysis::verify(bad, db) {
        Err(GracefulError::PlanVerify(_)) => {}
        other => panic!("verifier accepted a plan with {what}: {other:?}"),
    }
    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
        let session = ExecOptions::new().mode(mode).build().unwrap();
        match session.run(db, bad, seed) {
            Err(GracefulError::PlanVerify(_)) => {}
            Err(other) => panic!("{mode:?} executor mis-typed {what}: {other:?}"),
            Ok(run) => panic!("{mode:?} executor ran a plan with {what}: {}", run.agg_value),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Every plan the workload generator emits — across all valid UDF
    /// placements — passes the plan verifier, and after cardinality
    /// annotation the estimates stay within the monotone upper bounds.
    #[test]
    fn plan_verifier_accepts_generated_corpus(seed in 0u64..5_000) {
        let mut db = generate(&schema("tpc_h"), 0.02, 13);
        let qgen = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = qgen.generate(&db, seed, &mut rng).unwrap();
        if let Some(u) = &spec.udf {
            graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let mut plan = build_plan(&spec, placement).unwrap();
            graceful::plan::analysis::verify(&plan, &db).expect("generated plan verifies");
            NaiveCard::new(&db).annotate(&mut plan).unwrap();
            graceful::plan::analysis::verify(&plan, &db).expect("annotated plan verifies");
            graceful::plan::analysis::verify_bounds(&plan, &db)
                .expect("estimates respect monotone bounds");
        }
    }

    /// Mutated plans — the corruptions a buggy rewriter or a stale plan
    /// cache could produce — are rejected with typed `PlanVerify` errors by
    /// the verifier and by both executors' strict gates: dangling children,
    /// cycles, unknown columns, wrong aggregate arity, mismatched join-key
    /// types and corrupted cardinality estimates all surface as errors,
    /// never as panics.
    #[test]
    fn mutated_plans_rejected_with_typed_errors(seed in 0u64..2_000) {
        use graceful::plan::{PlanOpKind, Pred};
        use graceful::udf::ast::CmpOp;
        let mut db = generate(&schema("movielens"), 0.02, 14);
        let qgen = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = qgen.generate(&db, seed, &mut rng).unwrap();
        if let Some(u) = &spec.udf {
            graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        }
        let placement = graceful::plan::valid_placements(&spec)[0];
        let plan = build_plan(&spec, placement).unwrap();
        graceful::plan::analysis::verify(&plan, &db).expect("baseline plan verifies");
        let root = plan.root;

        // Dangling child index, far out of the arena.
        if !plan.ops[root].children.is_empty() {
            let mut bad = plan.clone();
            bad.ops[root].children[0] = bad.ops.len() + 40;
            assert_plan_rejected(&db, &bad, seed, "a dangling child");

            // Self-loop: the root consumes itself.
            let mut bad = plan.clone();
            bad.ops[root].children[0] = root;
            assert_plan_rejected(&db, &bad, seed, "a cycle");

            // Wrong arity: a second child on a unary operator.
            let mut bad = plan.clone();
            bad.ops[root].children.push(0);
            assert_plan_rejected(&db, &bad, seed, "wrong arity");
        }

        // Unknown column in a filter predicate.
        let filter = plan.ops.iter().position(|op| matches!(op.kind, PlanOpKind::Filter { .. }));
        if let Some(i) = filter {
            let mut bad = plan.clone();
            if let PlanOpKind::Filter { preds } = &mut bad.ops[i].kind {
                let t = preds[0].col.table.clone();
                preds[0] = Pred::new(&t, "no_such_column", CmpOp::Lt, Value::Int(0));
            }
            assert_plan_rejected(&db, &bad, seed, "an unknown column");
        }

        // Join keys of mismatched types (when the right table has a column
        // of a different type to retarget the key at).
        let join = plan.ops.iter().position(|op| matches!(op.kind, PlanOpKind::Join { .. }));
        if let Some(i) = join {
            let mut bad = plan.clone();
            let mut mutated = false;
            if let PlanOpKind::Join { left_col, right_col } = &mut bad.ops[i].kind {
                let lt = db.table(&left_col.table).unwrap()
                    .column_type(&left_col.column).unwrap();
                let rt = db.table(&right_col.table).unwrap();
                if let Some(alt) = rt.columns().iter().find(|c| c.data_type() != lt) {
                    right_col.column = alt.name.clone();
                    mutated = true;
                }
            }
            if mutated {
                assert_plan_rejected(&db, &bad, seed, "mismatched join-key types");
            }
        }

        // Corrupted cardinality annotations.
        for est in [f64::NAN, f64::INFINITY, -5.0] {
            let mut bad = plan.clone();
            bad.ops[root].est_out_rows = est;
            assert_plan_rejected(&db, &bad, seed, "a corrupt est_out_rows");
        }
    }
}

/// Neutralising a definedness guard (`CheckDef` → plain `Cost(Stmt)`) on a
/// branch-only assignment turns a guarded read into a use-before-def, and the
/// verifier must say so — with the variable named in the diagnostic.
#[test]
fn verifier_names_the_variable_in_use_before_def_mutations() {
    use graceful::udf::bytecode::{CostKind, Instr};
    use graceful_common::GracefulError;
    let u = parse_udf("def f(x0):\n    if x0 < 0:\n        z = 1\n    return z\n").unwrap();
    let prog = compile(&u).unwrap();
    let pc = prog
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::CheckDef { .. }))
        .expect("branch-only assignment compiles a CheckDef guard");
    let mut bad = prog.clone();
    bad.instrs[pc] = Instr::Cost(CostKind::Stmt);
    match graceful::udf::analysis::verify(&bad) {
        Err(GracefulError::Verify(msg)) => {
            assert!(msg.contains("read before it is written"), "got: {msg}");
            assert!(msg.contains("`z`"), "diagnostic names the slot: {msg}");
        }
        other => panic!("expected Verify error, got {other:?}"),
    }
}

/// A pathological `while True` UDF must be cut off by the typed
/// [`GracefulError::IterationLimit`] — and both backends must report the
/// exact same error.
#[test]
fn iteration_limit_reported_identically_by_both_backends() {
    use graceful_common::GracefulError;
    let udf =
        parse_udf("def f(x0):\n    z = 0\n    while x0 < 1:\n        z = z + 1\n    return z\n")
            .unwrap();
    let args = [Value::Int(0)];
    let tree_err = Interpreter::default().eval(&udf, &args).unwrap_err();
    let prog = compile(&udf).unwrap();
    let vm_err = Vm::default().eval(&prog, &args).unwrap_err();
    assert_eq!(tree_err, GracefulError::IterationLimit { limit: graceful::udf::MAX_WHILE_ITERS });
    assert_eq!(tree_err, vm_err);
    assert_eq!(tree_err.to_string(), vm_err.to_string());
}
