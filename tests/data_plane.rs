//! Data-plane properties: encoded columns and zone-map pruning are
//! execution shortcuts, never semantics changes.
//!
//! Two invariants guard the compressed, parallel data plane:
//!
//! * **Encoding transparency** — dictionary/RLE-encoded columns answer
//!   every query bit-identically to their plain decodings, through all
//!   three UDF backends and both executor modes (the SIMD gather decodes
//!   straight from codes, so this is a real differential, not a no-op).
//! * **Pruning soundness** — with zone-map pruning disabled, every
//!   contracted `QueryRun` field matches the pruned run bit for bit, on
//!   generated corpus queries and on hand-built adversarial zones (NaN
//!   runs, `i64::MIN`/`i64::MAX` keys, all-NULL morsels, NULL/text/NaN
//!   literals).

use graceful::exec::QueryRun;
use graceful::plan::{AggFunc, Plan, PlanOp, PlanOpKind, Pred};
use graceful::prelude::*;
use graceful::storage::{Column, ColumnData, Table, ZONE_ROWS};
use graceful::udf::ast::CmpOp;
use graceful::udf::generator::apply_adaptations;
use proptest::prelude::*;

fn assert_runs_bit_identical(a: &QueryRun, b: &QueryRun, what: &str) {
    assert_eq!(
        a.runtime_ns.to_bits(),
        b.runtime_ns.to_bits(),
        "{what}: runtimes differ: {} vs {}",
        a.runtime_ns,
        b.runtime_ns
    );
    assert_eq!(a.agg_value.to_bits(), b.agg_value.to_bits(), "{what}: answers differ");
    assert_eq!(a.out_rows, b.out_rows, "{what}: cardinalities differ");
    assert_eq!(a.udf_input_rows, b.udf_input_rows, "{what}: UDF input rows differ");
    assert_eq!(a.op_work.len(), b.op_work.len());
    for (x, y) in a.op_work.iter().zip(b.op_work.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: op_work differs: {x} vs {y}");
    }
}

fn session(backend: UdfBackend, mode: ExecMode, threads: usize, pruning: bool) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .udf_batch_size(37)
        .threads(threads)
        .morsel_rows(64)
        .mode(mode)
        .pruning(pruning)
        .build()
        .expect("valid options")
}

/// A copy of `db` with every column decoded to its plain representation
/// (zones and statistics recomputed from the identical values).
fn decoded(db: &Database) -> Database {
    let mut plain = db.clone();
    let names: Vec<String> = db.tables().iter().map(|t| t.name.clone()).collect();
    for name in names {
        plain
            .update_table(&name, |t| {
                for c in t.columns_mut() {
                    c.data = c.data.to_plain();
                }
                Ok(())
            })
            .expect("table exists");
    }
    plain
}

/// `generate()` really produces encoded columns, and the encodings really
/// shrink the footprint — otherwise the differentials below are vacuous.
#[test]
fn generated_databases_actually_encode() {
    for name in ["tpc_h", "imdb", "airline"] {
        let db = generate(&schema(name), 0.3, 7);
        let mut encoded_cols = 0usize;
        let mut heap = 0usize;
        let mut plain = 0usize;
        for t in db.tables() {
            for c in t.columns() {
                heap += c.data.heap_bytes();
                plain += c.data.plain_bytes();
                if !matches!(
                    c.data,
                    ColumnData::Int(_) | ColumnData::Float(_) | ColumnData::Text(_)
                ) {
                    encoded_cols += 1;
                }
            }
        }
        assert!(encoded_cols > 0, "{name}: no column picked an encoding");
        assert!(heap < plain, "{name}: encodings must shrink the heap ({heap} vs {plain})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Dict/RLE-encoded columns are invisible to execution: generated
    /// queries answer bit-identically on the encoded database and on its
    /// plain decoding, through all three UDF backends and both executor
    /// modes.
    #[test]
    fn encoded_columns_run_bit_identical_to_plain(seed in 0u64..5_000) {
        let mut db = generate(&schema("tpc_h"), 0.05, 11);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = match g.generate(&db, seed, &mut rng) {
            Ok(s) => s,
            Err(_) => return Ok(()), // rejected draw
        };
        if let Some(u) = &spec.udf {
            prop_assume!(apply_adaptations(&mut db, &u.adaptations).is_ok());
        }
        let plain_db = decoded(&db);
        for placement in graceful::plan::valid_placements(&spec) {
            let plan = match build_plan(&spec, placement) {
                Ok(p) => p,
                Err(_) => continue,
            };
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                    let s = session(backend, mode, 2, true);
                    let enc = match s.run(&db, &plan, seed) {
                        Ok(r) => r,
                        Err(_) => continue, // cap trips identically on both
                    };
                    let pln = s.run(&plain_db, &plan, seed).expect("plain run succeeds");
                    assert_runs_bit_identical(
                        &enc,
                        &pln,
                        &format!("encoded vs plain: {backend:?} x {mode:?}"),
                    );
                }
            }
        }
    }
}

/// Scan → single-predicate filter → COUNT(*) over `table`.
fn filter_count_plan(table: &str, pred: Pred) -> Plan {
    Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: table.into() }, vec![]),
            PlanOp::new(PlanOpKind::Filter { preds: vec![pred] }, vec![0]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![1]),
        ],
        root: 2,
    }
}

/// Pruning on vs off is bit-identical on generated corpus queries, and the
/// `scan.pruned_morsels` counter actually fires on range scans over the
/// generated data's sorted keys.
#[test]
fn pruning_is_invisible_and_fires_on_generated_corpus() {
    let before = graceful::obs::registry::snapshot().counter("scan.pruned_morsels");
    let mut db = generate(&schema("tpc_h"), 0.3, 3);
    let g = QueryGenerator::default();
    let mut compared = 0usize;
    for seed in 0..20u64 {
        let mut rng = Rng::seed(seed);
        let Ok(spec) = g.generate(&db, seed, &mut rng) else { continue };
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                continue;
            }
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let Ok(plan) = build_plan(&spec, placement) else { continue };
            for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                let on = session(UdfBackend::Simd, mode, 2, true).run(&db, &plan, seed);
                let off = session(UdfBackend::Simd, mode, 2, false).run(&db, &plan, seed);
                match (on, off) {
                    (Ok(on), Ok(off)) => {
                        assert_runs_bit_identical(
                            &on,
                            &off,
                            &format!("pruning on vs off: seed {seed} x {mode:?}"),
                        );
                        compared += 1;
                    }
                    (Err(_), Err(_)) => {} // caps trip identically
                    (on, off) => panic!("pruning changed the outcome: {on:?} vs {off:?}"),
                }
            }
        }
    }
    assert!(compared >= 20, "only {compared} corpus differentials ran");

    // Range scans over the sorted serial key: whole zones reject, so the
    // pruned-morsel counter must move — and the answer must not.
    let orders = db.table("orders_t").expect("tpc_h table");
    assert!(orders.num_rows() > 2 * ZONE_ROWS, "need multiple zones to prune");
    for (op, v) in [(CmpOp::Lt, 64), (CmpOp::Ge, orders.num_rows() as i64 - 64), (CmpOp::Eq, 5)] {
        let pred = Pred::new("orders_t", "id", op, Value::Int(v));
        let expected = (0..orders.num_rows()).filter(|&r| pred.matches(orders, r)).count();
        let plan = filter_count_plan("orders_t", pred);
        for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
            let on = session(UdfBackend::Vm, mode, 2, true).run(&db, &plan, 1).unwrap();
            let off = session(UdfBackend::Vm, mode, 2, false).run(&db, &plan, 1).unwrap();
            assert_runs_bit_identical(&on, &off, &format!("range scan {op:?} {v} x {mode:?}"));
            assert_eq!(on.agg_value, expected as f64, "{op:?} {v} x {mode:?}");
        }
    }
    let after = graceful::obs::registry::snapshot().counter("scan.pruned_morsels");
    assert!(after > before, "zone pruning never fired on the generated corpus");
}

/// Hand-built adversarial zones: NaN runs, `i64::MIN`/`i64::MAX` keys,
/// all-NULL stretches, constant runs — probed with every comparison
/// operator and with NaN / extreme / NULL / text literals. Pruning on vs
/// off stays bit-identical and COUNT(*) matches a row-by-row reference.
#[test]
fn pruning_handles_adversarial_zone_edges() {
    let n = 4 * ZONE_ROWS;
    // Float column: zone 1 is all NaN, zone 2 all NULL; extremes elsewhere.
    let x: Vec<f64> = (0..n)
        .map(|r| match r / ZONE_ROWS {
            1 => f64::NAN,
            _ if r % 997 == 0 => 1e300,
            _ if r % 991 == 0 => -1e300,
            _ => (r % 100) as f64,
        })
        .collect();
    let x_nulls: Vec<bool> = (0..n).map(|r| r / ZONE_ROWS == 2).collect();
    // Int column: i64 extremes inside zone 0, a constant run in zone 3.
    let k: Vec<i64> = (0..n)
        .map(|r| match r {
            10 => i64::MIN,
            20 => i64::MAX,
            _ if r / ZONE_ROWS == 3 => 7,
            _ => (r % 50) as i64 - 25,
        })
        .collect();
    // Fully NULL column (every zone all-NULL).
    let nul: Vec<f64> = vec![0.0; n];
    let mut cols = vec![
        Column::with_nulls("x", ColumnData::Float(x), x_nulls),
        Column::new("k", ColumnData::Int(k)),
        Column::with_nulls("n", ColumnData::Float(nul), vec![true; n]),
    ];
    for c in &mut cols {
        c.encode();
        c.compute_zones();
    }
    let table = Table::new("adv", cols).expect("valid table");
    let db = Database::new("advdb", vec![table]);
    let adv = db.table("adv").unwrap();

    let before = graceful::obs::registry::snapshot().counter("scan.pruned_morsels");
    let lits = [
        Value::Float(f64::NAN),
        Value::Float(1e300),
        Value::Float(-1e301),
        Value::Int(i64::MIN),
        Value::Int(i64::MAX),
        Value::Int(7),
        Value::Null,
        Value::Text("zzz".into()),
    ];
    for col in ["x", "k", "n"] {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            for lit in &lits {
                let pred = Pred::new("adv", col, op, lit.clone());
                let expected = (0..n).filter(|&r| pred.matches(adv, r)).count();
                let plan = filter_count_plan("adv", pred);
                for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                    for threads in [1usize, 2] {
                        let on = session(UdfBackend::Vm, mode, threads, true).run(&db, &plan, 1);
                        let off = session(UdfBackend::Vm, mode, threads, false).run(&db, &plan, 1);
                        let what = format!("{col} {op:?} {lit:?} x {mode:?} x {threads}");
                        match (on, off) {
                            (Ok(on), Ok(off)) => {
                                assert_runs_bit_identical(&on, &off, &what);
                                assert_eq!(on.agg_value, expected as f64, "{what}: wrong count");
                            }
                            // The plan verifier rejects never-comparable
                            // literals (NULL, text vs numeric) up front —
                            // identically with pruning on or off.
                            (Err(a), Err(b)) => {
                                assert_eq!(a.to_string(), b.to_string(), "{what}: errors differ")
                            }
                            (on, off) => {
                                panic!("{what}: pruning changed the outcome: {on:?} vs {off:?}")
                            }
                        }
                    }
                }
            }
        }
    }
    let after = graceful::obs::registry::snapshot().counter("scan.pruned_morsels");
    assert!(after > before, "adversarial preds never pruned a morsel");
}
