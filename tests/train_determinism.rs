//! Training-stack determinism and batched/reference differential coverage
//! over *real* featurized corpora (the `graceful-nn` unit suite covers
//! synthetic property-generated graphs; this suite covers the full
//! `GracefulModel::train` pipeline end to end).
//!
//! Pinned guarantees:
//!
//! * the batched level-synchronous trainer produces **bit-identical** loss
//!   curves, parameters and predictions to the node-at-a-time reference at
//!   every batch size, and
//! * training is bit-identical for any featurization thread count
//!   (`GRACEFUL_THREADS` ∈ {1, 2, 4} via `TrainOptions::threads`).

use graceful::prelude::*;

fn tiny_corpus(name: &str, seed: u64) -> DatasetCorpus {
    let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 12, ..ScaleConfig::default() };
    build_corpus(name, &cfg, seed).expect("corpus builds")
}

fn train_with(
    corpora: &[&DatasetCorpus],
    exec: GnnExecMode,
    threads: usize,
    batch: usize,
) -> (Vec<f32>, GracefulModel) {
    let mut model = GracefulModel::new(Featurizer::full(), 12, 7).expect("valid architecture");
    let cfg = TrainOptions::new()
        .epochs(4)
        .batch_size(batch)
        .exec(exec)
        .threads(threads)
        .seed(99)
        .build()
        .expect("valid options");
    let losses = model.train(corpora, &cfg).expect("training succeeds");
    (losses, model)
}

#[test]
fn batched_training_bit_identical_to_reference_on_real_corpora() {
    let a = tiny_corpus("tpc_h", 31);
    let b = tiny_corpus("imdb", 32);
    let corpora = [&a, &b];
    for batch in [1usize, 8, 16] {
        let (ref_losses, ref_model) = train_with(&corpora, GnnExecMode::NodeAtATime, 1, batch);
        let (bat_losses, bat_model) = train_with(&corpora, GnnExecMode::Batched, 1, batch);
        assert_eq!(
            ref_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            bat_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "loss curves diverged at batch size {batch}"
        );
        assert_eq!(
            ref_model.param_checksum(),
            bat_model.param_checksum(),
            "final parameters diverged at batch size {batch}"
        );
        // Predictions agree bit-for-bit on held-out queries, through both
        // the per-graph and the batched prediction paths.
        let est = ActualCard::new(&a.db);
        let graphs: Vec<_> = a
            .queries
            .iter()
            .take(6)
            .map(|q| {
                let mut plan = q.plan.clone();
                est.annotate(&mut plan).unwrap();
                ref_model.graph_for(&a.db, &q.spec, &plan, &est).unwrap()
            })
            .collect();
        let refs: Vec<&graceful::nn::TypedGraph> = graphs.iter().collect();
        let single: Vec<f64> = refs.iter().map(|g| ref_model.predict_graph(g).unwrap()).collect();
        let packed = bat_model.predict_graphs(&refs).unwrap();
        for (x, y) in single.iter().zip(&packed) {
            assert_eq!(x.to_bits(), y.to_bits(), "prediction diverged");
        }
    }
}

#[test]
fn training_is_thread_count_independent() {
    let a = tiny_corpus("ssb", 41);
    let b = tiny_corpus("airline", 42);
    let corpora = [&a, &b];
    let (ref_losses, ref_model) = train_with(&corpora, GnnExecMode::Batched, 1, 16);
    for threads in [2usize, 4] {
        let (losses, model) = train_with(&corpora, GnnExecMode::Batched, threads, 16);
        assert_eq!(
            ref_losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            losses.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
            "loss curves diverged at {threads} threads"
        );
        assert_eq!(
            ref_model.param_checksum(),
            model.param_checksum(),
            "final parameters diverged at {threads} threads"
        );
    }
}

#[test]
fn train_config_validation_reaches_train() {
    let c = tiny_corpus("movielens", 43);
    let mut model = GracefulModel::new(Featurizer::full(), 8, 1).expect("valid architecture");
    // A hand-rolled zero-epoch config is rejected by train itself.
    let bad = TrainConfig { epochs: 0, ..TrainConfig::default() };
    assert!(matches!(model.train(&[&c], &bad), Err(graceful::common::GracefulError::Config(_))));
}
