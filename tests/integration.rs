//! Cross-crate integration tests: the full pipeline at miniature scale.

use graceful::prelude::*;

fn tiny_cfg() -> ScaleConfig {
    ScaleConfig {
        data_scale: 0.02,
        queries_per_db: 14,
        epochs: 8,
        hidden: 12,
        folds: 2,
        ..ScaleConfig::default()
    }
}

#[test]
fn end_to_end_corpus_train_predict() {
    let cfg = tiny_cfg();
    let train =
        vec![build_corpus("tpc_h", &cfg, 1).unwrap(), build_corpus("ssb", &cfg, 2).unwrap()];
    let test = build_corpus("imdb", &cfg, 3).unwrap();
    let model = train_graceful(&train, &cfg, Featurizer::full());
    let recs = evaluate_model(&model, &test, EstimatorKind::Actual, 1);
    assert!(!recs.is_empty());
    let s = summarize(&recs, |_| true);
    assert!(s.median >= 1.0 && s.median.is_finite());
    // Sanity ceiling: even a tiny model must not be orders of magnitude off
    // in the median (the target normalization alone guarantees the scale).
    assert!(s.median < 100.0, "median Q-error {} absurd", s.median);
}

#[test]
fn pullup_and_pushdown_always_agree_on_answers() {
    // The correctness invariant behind the whole optimization: UDF-filter
    // placement never changes results, only runtimes.
    let cfg = tiny_cfg();
    let corpus = build_corpus("movielens", &cfg, 9).unwrap();
    let exec = Session::from_env().unwrap().executor(&corpus.db);
    let mut checked = 0;
    for q in &corpus.queries {
        if !(q.has_udf() && q.spec.udf_usage == UdfUsage::Filter && !q.spec.joins.is_empty()) {
            continue;
        }
        let pd = build_plan(&q.spec, UdfPlacement::PushDown).unwrap();
        let pu = build_plan(&q.spec, UdfPlacement::PullUp).unwrap();
        let a = exec.run(&pd, q.spec.id).unwrap().agg_value;
        let b = exec.run(&pu, q.spec.id).unwrap().agg_value;
        let rel = (a - b).abs() / a.abs().max(1e-9);
        assert!(rel < 1e-9, "placement changed the answer: {a} vs {b}");
        checked += 1;
    }
    assert!(checked > 0, "no movable UDF queries in corpus");
}

#[test]
fn estimator_ladder_orders_card_errors() {
    // Median top-node cardinality error: Actual <= DataDriven and
    // Actual <= Naive (the strict full ladder needs larger scale).
    let cfg = tiny_cfg();
    let train = build_corpus("tpc_h", &cfg, 21).unwrap();
    let test = build_corpus("airline", &cfg, 22).unwrap();
    let model = train_graceful(std::slice::from_ref(&train), &cfg, Featurizer::full());
    let med = |kind: EstimatorKind| {
        let recs = evaluate_model(&model, &test, kind, 5);
        let qs: Vec<f64> = recs.iter().map(|r| r.card_q_top).collect();
        graceful::common::metrics::median(&qs)
    };
    let actual = med(EstimatorKind::Actual);
    let datadriven = med(EstimatorKind::DataDriven);
    let naive = med(EstimatorKind::Naive);
    assert!(actual <= datadriven + 1e-9, "actual {actual} > datadriven {datadriven}");
    assert!(actual <= naive + 1e-9, "actual {actual} > naive {naive}");
    assert!((actual - 1.0).abs() < 1e-6, "oracle must be exact, got {actual}");
}

#[test]
fn advisor_cost_strategy_tracks_ground_truth() {
    let cfg = ScaleConfig { queries_per_db: 24, ..tiny_cfg() };
    let corpus = build_corpus("imdb", &cfg, 31).unwrap();
    let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
    let outcomes = graceful::core_model::experiments::run_advisor(
        &model,
        &corpus,
        EstimatorKind::Actual,
        Strategy::Cost,
        1,
        10,
    );
    if outcomes.is_empty() {
        return; // tiny corpora occasionally lack advisable queries
    }
    let s = graceful::core_model::experiments::summarize_advisor(&outcomes);
    // The chosen plan set can never beat the optimum and shouldn't be much
    // worse than always-push-down in aggregate.
    assert!(s.total_optimal_ns <= s.total_chosen_ns + 1e-6);
    assert!(s.total_speedup > 0.75, "speedup {}", s.total_speedup);
}

#[test]
fn ablation_level1_loses_to_full_model_on_udf_heavy_workload() {
    // Figure 7's qualitative claim at miniature scale: knowing the UDF's
    // structure helps. We only assert the full model is not *worse* by a
    // large factor (tiny-scale training is noisy).
    let cfg = ScaleConfig { queries_per_db: 30, epochs: 10, ..tiny_cfg() };
    let train = vec![
        build_corpus("tpc_h", &cfg, 41).unwrap(),
        build_corpus("financial", &cfg, 42).unwrap(),
    ];
    let test = build_corpus("genome", &cfg, 43).unwrap();
    let full = {
        let m = train_graceful(&train, &cfg, Featurizer::full());
        summarize(&evaluate_model(&m, &test, EstimatorKind::Actual, 1), |r| r.has_udf).median
    };
    let black_box = {
        let m = train_graceful(&train, &cfg, Featurizer::level(1));
        summarize(&evaluate_model(&m, &test, EstimatorKind::Actual, 1), |r| r.has_udf).median
    };
    assert!(
        full < black_box * 2.0,
        "full model ({full:.2}) should not be far worse than RET-only ({black_box:.2})"
    );
}

#[test]
fn model_persistence_round_trip() {
    let cfg = tiny_cfg();
    let corpus = build_corpus("ssb", &cfg, 51).unwrap();
    let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
    let json = model.to_json();
    let loaded = GracefulModel::from_json(&json).unwrap();
    let est = ActualCard::new(&corpus.db);
    let q = &corpus.queries[0];
    let mut plan = q.plan.clone();
    est.annotate(&mut plan).unwrap();
    let a = model.predict(&corpus.db, &q.spec, &plan, &est).unwrap();
    let b = loaded.predict(&corpus.db, &q.spec, &plan, &est).unwrap();
    assert!((a - b).abs() / a < 1e-6);
}
