//! Executor API contract tests: pinned aggregate-over-empty-input
//! semantics, the `max_intermediate_rows` safety valve, and the `Session`
//! construction path — each across UDF backends × executor modes × thread
//! counts.

use graceful::common::GracefulError;
use graceful::prelude::*;
use graceful_plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind, Pred};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::sync::Arc;

fn session(backend: UdfBackend, mode: ExecMode, threads: usize) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .threads(threads)
        .morsel_rows(64)
        .udf_batch_size(17)
        .mode(mode)
        .build()
        .expect("valid options")
}

/// Scan → impossible filter → (optional UdfProject) → Agg.
fn empty_input_plan(agg: AggFunc, over_udf: bool) -> Plan {
    let mut ops = vec![
        PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
        PlanOp::new(
            PlanOpKind::Filter {
                preds: vec![Pred::new("orders_t", "totalprice", CmpOp::Lt, Value::Float(-1e18))],
            },
            vec![0],
        ),
    ];
    let column = if over_udf {
        let def = parse_udf("def f(x0):\n    return x0 * 2.0\n").unwrap();
        ops.push(PlanOp::new(
            PlanOpKind::UdfProject {
                udf: Arc::new(GeneratedUdf {
                    source: print_udf(&def),
                    def,
                    table: "orders_t".into(),
                    input_columns: vec!["totalprice".into()],
                    adaptations: vec![],
                }),
            },
            vec![1],
        ));
        None
    } else {
        Some(ColRef::new("orders_t", "totalprice"))
    };
    let child = ops.len() - 1;
    ops.push(PlanOp::new(PlanOpKind::Agg { func: agg, column }, vec![child]));
    let root = ops.len() - 1;
    Plan { ops, root }
}

/// The pinned empty-input semantics: COUNT(*) = 0 and SUM/AVG/MIN/MAX = 0.0
/// over zero rows — identical across all three UDF backends, both executor
/// modes, for both column aggregates and UDF-projected aggregates.
#[test]
fn aggregates_over_empty_input_are_pinned_across_backends_and_modes() {
    let db = generate(&schema("tpc_h"), 0.02, 2);
    for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
        for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
            let s = session(backend, mode, 2);
            for over_udf in [false, true] {
                for agg in AggFunc::ALL {
                    // COUNT(*) never aggregates a projected column.
                    if agg == AggFunc::CountStar && over_udf {
                        continue;
                    }
                    let plan = empty_input_plan(agg, over_udf);
                    let run = s.run(&db, &plan, 1).unwrap();
                    assert_eq!(
                        run.agg_value, 0.0,
                        "{agg:?} over empty input ({backend:?}, {mode:?}, over_udf={over_udf})"
                    );
                    assert_eq!(run.out_rows[1], 0, "filter must eliminate everything");
                    assert_eq!(run.out_rows[plan.root], 1, "aggregate still emits one row");
                    assert!(run.runtime_ns > 0.0, "scan work is still accounted");
                }
            }
        }
    }
}

/// Non-empty sanity for the new MIN/MAX aggregates: both modes and all
/// backends agree with a hand-computed fold over the column.
#[test]
fn min_max_agree_across_modes_on_real_rows() {
    let db = generate(&schema("tpc_h"), 0.02, 5);
    let plan = |func| Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Agg { func, column: Some(ColRef::new("lineitem_t", "quantity")) },
                vec![0],
            ),
        ],
        root: 1,
    };
    let t = db.table("lineitem_t").unwrap();
    let c = t.column("quantity").unwrap();
    let vals: Vec<f64> = (0..t.num_rows()).filter_map(|r| c.get_f64(r)).collect();
    let tmin = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let tmax = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
        let s = session(UdfBackend::TreeWalk, mode, 4);
        assert_eq!(s.run(&db, &plan(AggFunc::Min), 1).unwrap().agg_value, tmin, "{mode:?}");
        assert_eq!(s.run(&db, &plan(AggFunc::Max), 1).unwrap().agg_value, tmax, "{mode:?}");
    }
}

/// A join whose output blows past `max_intermediate_rows` must return a
/// typed `GracefulError::InvalidPlan` — not OOM, not a panic — through both
/// the materializing path and the pipeline, at 1 and 4 threads.
#[test]
fn join_over_cap_returns_typed_error_in_both_modes() {
    let db = generate(&schema("tpc_h"), 0.05, 3);
    // orders ⋈ customer on cust_id=id: |join| == |orders|, far above cap 10.
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ],
        root: 3,
    };
    let n_customers = db.table("customer_t").unwrap().num_rows();
    let cap = n_customers + 10; // scans fit; the join output cannot
    assert!(db.table("orders_t").unwrap().num_rows() > cap);
    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
        for threads in [1usize, 4] {
            let s = ExecOptions::new()
                .threads(threads)
                .max_intermediate_rows(cap)
                .mode(mode)
                .build()
                .unwrap();
            match s.run(&db, &plan, 1) {
                Err(GracefulError::InvalidPlan(m)) => {
                    assert!(m.contains("cap"), "error names the cap: {m}")
                }
                other => panic!("{mode:?} x {threads} threads returned {other:?}"),
            }
        }
    }
}

/// The valve also trips on non-join operators (a scan bigger than the cap),
/// in both modes.
#[test]
fn scan_over_cap_returns_typed_error_in_both_modes() {
    let db = generate(&schema("tpc_h"), 0.05, 3);
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![0]),
        ],
        root: 1,
    };
    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
        let s = ExecOptions::new().max_intermediate_rows(5).mode(mode).build().unwrap();
        assert!(
            matches!(s.run(&db, &plan, 1), Err(GracefulError::InvalidPlan(_))),
            "{mode:?} must trip the valve on the scan"
        );
    }
}

/// A hand-built plan with UDF filters on *both* sides of a join: the
/// `udf_input_rows` channel must follow the materializing engine's
/// plan-index-order semantics (highest-index UDF operator wins), not the
/// pipeline's execution order — regression test for a mode divergence.
#[test]
fn udf_input_rows_agree_across_modes_with_two_udf_operators() {
    let db = generate(&schema("tpc_h"), 0.05, 3);
    let mk_udf = |table: &str, column: &str| {
        let def = parse_udf("def f(x0):\n    return x0 + 1.0\n").unwrap();
        Arc::new(GeneratedUdf {
            source: print_udf(&def),
            def,
            table: table.into(),
            input_columns: vec![column.into()],
            adaptations: vec![],
        })
    };
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::UdfFilter {
                    udf: mk_udf("orders_t", "totalprice"),
                    op: CmpOp::Ge,
                    literal: 0.0,
                },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::UdfFilter {
                    udf: mk_udf("customer_t", "acctbal"),
                    op: CmpOp::Ge,
                    literal: -1e18,
                },
                vec![2],
            ),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![1, 3],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![4]),
        ],
        root: 5,
    };
    let run_in =
        |mode| session(UdfBackend::TreeWalk, mode, 2).run(&db, &plan, 1).expect("plan executes");
    let pipe = run_in(ExecMode::Pipeline);
    let mat = run_in(ExecMode::Materialize);
    assert_eq!(pipe.udf_input_rows, mat.udf_input_rows, "udf_input_rows diverged across modes");
    assert_eq!(
        mat.udf_input_rows,
        db.table("customer_t").unwrap().num_rows(),
        "highest-index UDF operator (customer side) owns the channel"
    );
    assert_eq!(pipe.agg_value.to_bits(), mat.agg_value.to_bits());
    assert_eq!(pipe.runtime_ns.to_bits(), mat.runtime_ns.to_bits());
}

/// Below the cap, both modes still agree bit-for-bit — the valve changes
/// nothing for passing queries.
#[test]
fn runs_below_cap_are_unaffected_by_the_valve() {
    let db = generate(&schema("tpc_h"), 0.02, 3);
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "nation_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![0]),
        ],
        root: 1,
    };
    let loose = ExecOptions::new().mode(ExecMode::Pipeline).build().unwrap();
    let tight = ExecOptions::new()
        .max_intermediate_rows(1_000_000)
        .mode(ExecMode::Pipeline)
        .build()
        .unwrap();
    let a = loose.run(&db, &plan, 7).unwrap();
    let b = tight.run(&db, &plan, 7).unwrap();
    assert_eq!(a.runtime_ns.to_bits(), b.runtime_ns.to_bits());
    assert_eq!(a.agg_value, b.agg_value);
}
