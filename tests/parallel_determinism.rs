//! Determinism of the morsel-driven parallel runtime and the executor modes.
//!
//! The acceptance bar for `graceful-runtime` and the pipeline executor: for
//! a fixed seed, everything the experiments consume — `QueryRun` outputs,
//! accounted cost totals, corpus labels — is **bit-identical for any thread
//! count**, under all three UDF backends (tree-walker, batch VM, columnar
//! SIMD) *and* both executor modes (streaming physical-operator pipeline,
//! materializing reference). Thread counts are pinned programmatically
//! through the `ExecOptions` builder rather than `GRACEFUL_THREADS`, because
//! mutating the environment would race the rest of the multi-threaded test
//! suite.

use graceful::exec::QueryRun;
use graceful::prelude::*;
use graceful::udf::generator::apply_adaptations;
use proptest::prelude::*;

/// Small morsels and an awkward VM batch size so even the test-scale tables
/// split into many morsels with ragged boundaries.
fn session(backend: UdfBackend, threads: usize, mode: ExecMode) -> Session {
    session_profiled(backend, threads, mode, false)
}

fn session_profiled(backend: UdfBackend, threads: usize, mode: ExecMode, profile: bool) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .udf_batch_size(37)
        .threads(threads)
        .morsel_rows(64)
        .mode(mode)
        .profile(profile)
        .build()
        .expect("valid options")
}

fn session_rewrites(
    backend: UdfBackend,
    threads: usize,
    mode: ExecMode,
    rewrites: bool,
) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .udf_batch_size(37)
        .threads(threads)
        .morsel_rows(64)
        .mode(mode)
        .rewrites(rewrites)
        .build()
        .expect("valid options")
}

fn assert_runs_bit_identical(a: &QueryRun, b: &QueryRun, what: &str) {
    assert_eq!(
        a.runtime_ns.to_bits(),
        b.runtime_ns.to_bits(),
        "{what}: runtimes differ: {} vs {}",
        a.runtime_ns,
        b.runtime_ns
    );
    assert_eq!(a.agg_value.to_bits(), b.agg_value.to_bits(), "{what}: answers differ");
    assert_eq!(a.out_rows, b.out_rows, "{what}: cardinalities differ");
    assert_eq!(a.udf_input_rows, b.udf_input_rows, "{what}: UDF input rows differ");
    assert_eq!(a.op_work.len(), b.op_work.len());
    for (x, y) in a.op_work.iter().zip(b.op_work.iter()) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: op_work differs: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// `QueryRun` is bit-identical across thread counts {1, 2, 4}, all
    /// three UDF backends and both executor modes, over generated queries in
    /// every valid UDF placement.
    #[test]
    fn query_runs_bit_identical_across_threads_backends_and_modes(seed in 0u64..5_000) {
        let mut db = generate(&schema("tpc_h"), 0.02, 3);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = match g.generate(&db, seed, &mut rng) {
            Ok(s) => s,
            Err(_) => return Ok(()), // rejected draw; not a determinism case
        };
        if let Some(u) = &spec.udf {
            prop_assume!(apply_adaptations(&mut db, &u.adaptations).is_ok());
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let plan = match build_plan(&spec, placement) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let mut references = Vec::new();
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                // Reference: 1 thread, pipeline mode.
                let reference = session(backend, 1, ExecMode::Pipeline)
                    .run(&db, &plan, seed)
                    .expect("single-thread run succeeds");
                for threads in [1usize, 2, 4] {
                    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                        let run = session(backend, threads, mode)
                            .run(&db, &plan, seed)
                            .expect("run succeeds");
                        assert_runs_bit_identical(
                            &run,
                            &reference,
                            &format!("{backend:?} x {threads} threads x {mode:?}"),
                        );
                    }
                }
                references.push(reference);
            }
            // Cross-backend: the SIMD fast path merges the same per-row
            // costs in the same order as the batch VM, so their QueryRuns
            // are bit-identical (the tree-walker differs only in float
            // summation grouping and is compared elsewhere).
            assert_runs_bit_identical(&references[1], &references[2], "vm vs simd");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The verified rewrites (dead-column pruning, constant-predicate
    /// folding) are invisible in results: with rewrites disabled, every
    /// contracted `QueryRun` field is bit-identical to the default
    /// (rewrites on) run — over generated queries in every valid UDF
    /// placement, all three UDF backends, both executor modes and threads
    /// {1, 2, 4}.
    #[test]
    fn rewrites_change_no_contracted_bit(seed in 0u64..5_000) {
        let mut db = generate(&schema("imdb"), 0.02, 7);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = match g.generate(&db, seed, &mut rng) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        if let Some(u) = &spec.udf {
            prop_assume!(apply_adaptations(&mut db, &u.adaptations).is_ok());
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let plan = match build_plan(&spec, placement) {
                Ok(p) => p,
                Err(_) => continue,
            };
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                for threads in [1usize, 2, 4] {
                    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                        let on = session_rewrites(backend, threads, mode, true)
                            .run(&db, &plan, seed)
                            .expect("rewritten run succeeds");
                        let off = session_rewrites(backend, threads, mode, false)
                            .run(&db, &plan, seed)
                            .expect("unrewritten run succeeds");
                        assert_runs_bit_identical(
                            &on,
                            &off,
                            &format!("rewrites on vs off: {backend:?} x {threads} x {mode:?}"),
                        );
                    }
                }
            }
        }
    }
}

/// Targeted rewrite triggers over a hand-built plan: predicates that fold
/// both ways (`AlwaysTrue` and `AlwaysFalse`), a UDF that reads only one of
/// its three parameters (the two dead `Int` lanes are pruned from the
/// gather), and a join whose payload lanes liveness proves dead above the
/// aggregate. Each trigger is asserted to actually fire in the
/// [`RewriteSet`](graceful::plan::RewriteSet), and rewritten vs unrewritten
/// runs stay bit-identical across all backends, modes and thread counts.
#[test]
fn fold_and_dead_param_rewrites_fire_and_stay_bit_identical() {
    use graceful::plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind, Pred, PredFold, RewriteSet};
    use graceful::udf::ast::CmpOp;
    use std::sync::Arc;

    let db = generate(&schema("tpc_h"), 0.03, 5);
    let def = parse_udf("def f(x0, x1, x2):\n    return x2 * 2\n").unwrap();
    let udf = Arc::new(graceful::udf::GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "orders_t".into(),
        input_columns: vec!["id".into(), "cust_id".into(), "totalprice".into()],
        adaptations: vec![],
    });

    // customer_t.id is a null-free serial Int column, so predicates far
    // outside its range fold statically; mktsegment stays data-dependent.
    let plan_with = |extra_pred: Pred| Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Filter {
                    preds: vec![
                        Pred::new("customer_t", "id", CmpOp::Ge, Value::Int(-1_000_000)),
                        Pred::new("customer_t", "mktsegment", CmpOp::Ge, Value::Int(2)),
                        extra_pred,
                    ],
                },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![2, 1],
            ),
            PlanOp::new(PlanOpKind::UdfProject { udf: udf.clone() }, vec![3]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::Sum, column: None }, vec![4]),
        ],
        root: 5,
    };
    let live = plan_with(Pred::new("customer_t", "id", CmpOp::Lt, Value::Int(1_000_000_000)));
    let empty = plan_with(Pred::new("customer_t", "id", CmpOp::Lt, Value::Int(-1_000_000)));

    // The triggers must actually fire, or this test proves nothing.
    let rw = RewriteSet::analyze(&live, &db);
    assert_eq!(rw.fold_for(1, 0), PredFold::AlwaysTrue, "id >= -1M folds true");
    assert_eq!(rw.fold_for(1, 2), PredFold::AlwaysTrue, "id < 1B folds true");
    assert_eq!(rw.dead_params[4], vec![true, true, false], "x0/x1 are dead Int params");
    assert!(
        !rw.live_above[3].contains("customer_t"),
        "customer_t is dead above the join, so its payload lane prunes"
    );
    let rw = RewriteSet::analyze(&empty, &db);
    assert_eq!(rw.fold_for(1, 2), PredFold::AlwaysFalse, "id < -1M folds false");

    for (what, plan) in [("always-true", &live), ("always-false", &empty)] {
        let mut agg_values = Vec::new();
        for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
            for threads in [1usize, 2, 4] {
                for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                    let on = session_rewrites(backend, threads, mode, true)
                        .run(&db, plan, 42)
                        .expect("rewritten run succeeds");
                    let off = session_rewrites(backend, threads, mode, false)
                        .run(&db, plan, 42)
                        .expect("unrewritten run succeeds");
                    assert_runs_bit_identical(
                        &on,
                        &off,
                        &format!("{what}: {backend:?} x {threads} x {mode:?}"),
                    );
                    agg_values.push(on.agg_value);
                }
            }
        }
        assert!(
            agg_values.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()),
            "{what}: all combinations agree on the answer"
        );
    }
    // The statically-empty filter really empties the query.
    let run = Session::new().run(&db, &empty, 42).unwrap();
    assert_eq!(run.out_rows[1], 0, "always-false filter emits nothing");
    assert_eq!(run.agg_value, 0.0);
}

/// The partitioned hash join and parallel aggregation are bit-identical
/// (values AND `op_work`) across threads {1, 2, 4} × all three UDF backends
/// × both executor modes × data scale {1, 50}. A custom mini star schema
/// keeps scale 50 at ≈ 50k fact rows, so the `GRACEFUL_SCALE`-style
/// multiplier is exercised for real (multi-zone tables, thousands of
/// morsels, all 16 join partitions populated) without stretching the
/// debug-mode suite.
#[test]
fn partitioned_join_and_parallel_agg_bit_identical_across_scales() {
    use graceful::plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind, Pred};
    use graceful::storage::datagen::{ColGen, ColumnSpec, SchemaSpec, TableSpec};
    use graceful::udf::ast::CmpOp;
    use std::sync::Arc;

    let col = ColumnSpec::new;
    let spec = SchemaSpec {
        name: "mini_star".into(),
        tables: vec![
            TableSpec {
                name: "dim".into(),
                base_rows: 60,
                columns: vec![
                    col("id", ColGen::Serial),
                    col("grp", ColGen::IntZipf { domain: 8, skew: 0.7 }),
                ],
            },
            TableSpec {
                name: "fact".into(),
                base_rows: 1000,
                columns: vec![
                    col("id", ColGen::Serial),
                    col("dim_id", ColGen::Fk { table: "dim".into(), skew: 0.8 }).nulls(0.05),
                    col("amount", ColGen::FloatUniform { lo: -50.0, hi: 950.0 }).nulls(0.02),
                    col("qty", ColGen::IntUniform { lo: 1, hi: 40 }),
                ],
            },
        ],
    };
    let def = parse_udf("def f(x0):\n    return x0 * 0.5 + 1.0\n").unwrap();
    let udf = Arc::new(graceful::udf::GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "fact".into(),
        input_columns: vec!["amount".into()],
        adaptations: vec![],
    });
    // Filtered fact ⋈ dim, UDF-projected, summed: every parallel operator
    // class in one chain (pruned scan, partitioned join, parallel agg).
    let join_udf_sum = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "fact".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Filter {
                    preds: vec![Pred::new("fact", "qty", CmpOp::Lt, Value::Int(30))],
                },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::Scan { table: "dim".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("fact", "dim_id"),
                    right_col: ColRef::new("dim", "id"),
                },
                vec![1, 2],
            ),
            PlanOp::new(PlanOpKind::UdfProject { udf }, vec![3]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::Sum, column: None }, vec![4]),
        ],
        root: 5,
    };
    // Column-path MIN over the raw join: the merge order of per-morsel
    // partial states is what is under test.
    let join_min = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "fact".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "dim".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("fact", "dim_id"),
                    right_col: ColRef::new("dim", "id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(
                PlanOpKind::Agg { func: AggFunc::Min, column: Some(ColRef::new("fact", "amount")) },
                vec![2],
            ),
        ],
        root: 3,
    };

    for scale in [1.0f64, 50.0] {
        let db = generate(&spec, scale, 21);
        for (what, plan) in [("join+udf+sum", &join_udf_sum), ("join+min", &join_min)] {
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                let reference = session(backend, 1, ExecMode::Pipeline)
                    .run(&db, plan, 21)
                    .expect("single-thread run succeeds");
                let join_idx =
                    plan.ops.iter().position(|o| matches!(o.kind, PlanOpKind::Join { .. }));
                assert!(
                    reference.out_rows[join_idx.unwrap()] > 0,
                    "{what}: join must produce rows"
                );
                for threads in [1usize, 2, 4] {
                    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                        let run = session(backend, threads, mode)
                            .run(&db, plan, 21)
                            .expect("run succeeds");
                        assert_runs_bit_identical(
                            &run,
                            &reference,
                            &format!("{what} x {backend:?} x {threads} x {mode:?} x scale {scale}"),
                        );
                    }
                }
            }
        }
    }
}

/// Observability is outside the bit-identity contract and must stay there:
/// with per-operator profiling, span tracing *and* the flight recorder
/// enabled, every contracted `QueryRun` field is bit-identical to the
/// unobserved run — across thread counts {1, 2, 4}, all three UDF backends
/// and both executor modes. The profile itself must exist and cover every
/// plan operator, and every observed run must land one flight record.
#[test]
fn profiling_tracing_and_flight_recording_change_no_contracted_bit() {
    use graceful::obs::flight;
    graceful::obs::trace::enable();
    let mut db = generate(&schema("tpc_h"), 0.02, 3);
    let g = QueryGenerator::default();
    let mut recorded_runs = 0u64;
    for seed in [11u64, 42, 1234] {
        let mut rng = Rng::seed(seed);
        let Ok(spec) = g.generate(&db, seed, &mut rng) else { continue };
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                continue;
            }
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let Ok(plan) = build_plan(&spec, placement) else { continue };
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                for threads in [1usize, 2, 4] {
                    for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                        // Plain run: no profile, no flight recording.
                        flight::disable();
                        let plain = session_profiled(backend, threads, mode, false)
                            .run(&db, &plan, seed)
                            .expect("unprofiled run succeeds");
                        // Observed run: profiled and flight-recorded.
                        let records_before = flight::record_count();
                        flight::enable();
                        let observed = session_profiled(backend, threads, mode, true)
                            .run(&db, &plan, seed)
                            .expect("observed run succeeds");
                        flight::disable();
                        assert_runs_bit_identical(
                            &observed,
                            &plain,
                            &format!("observed vs plain: {backend:?} x {threads} x {mode:?}"),
                        );
                        assert!(plain.profile.is_none(), "profile must be opt-in");
                        assert!(
                            flight::record_count() > records_before,
                            "flight recorder missed the run"
                        );
                        recorded_runs += 1;
                        let prof = observed.profile.expect("profile attached when enabled");
                        assert_eq!(prof.ops.len(), plan.ops.len(), "one OpProfile per plan op");
                        assert_eq!(prof.mode, mode);
                        assert_eq!(prof.backend, backend);
                    }
                }
            }
        }
    }
    graceful::obs::trace::disable();
    assert!(graceful::obs::trace::event_count() > 0, "tracing recorded spans");
    assert!(recorded_runs > 0, "no combination was exercised");
}

/// Corpus labels — the paper's 142-hour bottleneck, and the training data of
/// every experiment — are bit-identical whether the 20 datasets are labelled
/// on one worker or four.
#[test]
fn corpus_labels_bit_identical_across_pool_sizes() {
    let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 5, ..ScaleConfig::default() };
    let single = build_all_corpora_on(&Pool::new(1), &cfg);
    let parallel = build_all_corpora_on(&Pool::new(4), &cfg);
    assert_eq!(single.len(), parallel.len());
    for (a, b) in single.iter().zip(parallel.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.queries.len(), b.queries.len(), "{}: query counts differ", a.name);
        for (x, y) in a.queries.iter().zip(b.queries.iter()) {
            assert_eq!(x.runtime_ns.to_bits(), y.runtime_ns.to_bits(), "{}: labels differ", a.name);
            assert_eq!(x.udf_work_ns.to_bits(), y.udf_work_ns.to_bits());
            assert_eq!(x.udf_input_rows, y.udf_input_rows);
            assert_eq!(x.placement, y.placement);
            assert_eq!(x.plan.ops.len(), y.plan.ops.len());
            for (p, q) in x.plan.ops.iter().zip(y.plan.ops.iter()) {
                assert_eq!(p.actual_out_rows.to_bits(), q.actual_out_rows.to_bits());
            }
        }
    }
}

/// Corpus labels are also bit-identical across executor modes: retiring the
/// materializing engine from the hot path must not move a single label.
#[test]
fn corpus_labels_bit_identical_across_exec_modes() {
    let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 6, ..ScaleConfig::default() };
    let mk = |mode| ExecOptions::new().threads(2).mode(mode).build().expect("valid options");
    let pipe = build_corpus_in(&mk(ExecMode::Pipeline), "tpc_h", &cfg, 9).unwrap();
    let mat = build_corpus_in(&mk(ExecMode::Materialize), "tpc_h", &cfg, 9).unwrap();
    assert_eq!(pipe.queries.len(), mat.queries.len());
    for (x, y) in pipe.queries.iter().zip(mat.queries.iter()) {
        assert_eq!(x.runtime_ns.to_bits(), y.runtime_ns.to_bits(), "labels differ");
        assert_eq!(x.udf_work_ns.to_bits(), y.udf_work_ns.to_bits());
        assert_eq!(x.udf_input_rows, y.udf_input_rows);
    }
}
