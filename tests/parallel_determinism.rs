//! Determinism of the morsel-driven parallel runtime.
//!
//! The acceptance bar for `graceful-runtime`: for a fixed seed, everything
//! the experiments consume — `QueryRun` outputs, accounted cost totals,
//! corpus labels — is **bit-identical for any thread count**, under all
//! three UDF backends (tree-walker, batch VM, columnar SIMD). Thread counts
//! are pinned programmatically (`ExecConfig.threads`
//! / `Pool::new`) rather than through `GRACEFUL_THREADS`, because mutating
//! the environment would race the rest of the multi-threaded test suite.

use graceful::common::config::UdfBackend;
use graceful::exec::{ExecConfig, Executor};
use graceful::prelude::*;
use graceful::udf::generator::apply_adaptations;
use proptest::prelude::*;

/// Small morsels and an awkward VM batch size so even the test-scale tables
/// split into many morsels with ragged boundaries.
fn exec_cfg(backend: UdfBackend, threads: usize) -> ExecConfig {
    ExecConfig {
        udf_backend: backend,
        udf_batch_size: 37,
        threads,
        morsel_rows: 64,
        ..ExecConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// `QueryRun` is bit-identical across thread counts {1, 2, 4} for both
    /// UDF backends, over generated queries in every valid UDF placement.
    #[test]
    fn query_runs_bit_identical_across_thread_counts(seed in 0u64..5_000) {
        let mut db = generate(&schema("tpc_h"), 0.02, 3);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(seed);
        let spec = match g.generate(&db, seed, &mut rng) {
            Ok(s) => s,
            Err(_) => return Ok(()), // rejected draw; not a determinism case
        };
        if let Some(u) = &spec.udf {
            prop_assume!(apply_adaptations(&mut db, &u.adaptations).is_ok());
        }
        for placement in graceful::plan::valid_placements(&spec) {
            let plan = match build_plan(&spec, placement) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let mut single_thread_runs = Vec::new();
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                let exec = Executor::with_config(&db, exec_cfg(backend, 1));
                let reference = exec.run(&plan, seed).expect("single-thread run succeeds");
                for threads in [2usize, 4] {
                    let exec = Executor::with_config(&db, exec_cfg(backend, threads));
                    let run = exec.run(&plan, seed).expect("parallel run succeeds");
                    prop_assert_eq!(
                        run.runtime_ns.to_bits(),
                        reference.runtime_ns.to_bits(),
                        "runtime differs at {} threads ({:?}): {} vs {}",
                        threads, backend, run.runtime_ns, reference.runtime_ns
                    );
                    prop_assert_eq!(run.agg_value.to_bits(), reference.agg_value.to_bits());
                    prop_assert_eq!(&run.out_rows, &reference.out_rows);
                    prop_assert_eq!(run.udf_input_rows, reference.udf_input_rows);
                    prop_assert_eq!(run.op_work.len(), reference.op_work.len());
                    for (a, b) in run.op_work.iter().zip(reference.op_work.iter()) {
                        prop_assert_eq!(a.to_bits(), b.to_bits(), "op_work differs: {} vs {}", a, b);
                    }
                }
                single_thread_runs.push((backend, reference));
            }
            // Cross-backend: the SIMD fast path merges the same per-row
            // costs in the same order as the batch VM, so their QueryRuns
            // are bit-identical (the tree-walker differs only in float
            // summation grouping and is compared elsewhere).
            let vm = &single_thread_runs[1].1;
            let simd = &single_thread_runs[2].1;
            prop_assert_eq!(
                vm.runtime_ns.to_bits(), simd.runtime_ns.to_bits(),
                "vm vs simd runtimes differ: {} vs {}", vm.runtime_ns, simd.runtime_ns
            );
            prop_assert_eq!(vm.agg_value.to_bits(), simd.agg_value.to_bits());
            prop_assert_eq!(&vm.out_rows, &simd.out_rows);
            for (a, b) in vm.op_work.iter().zip(simd.op_work.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "vm vs simd op_work: {} vs {}", a, b);
            }
        }
    }
}

/// Corpus labels — the paper's 142-hour bottleneck, and the training data of
/// every experiment — are bit-identical whether the 20 datasets are labelled
/// on one worker or four.
#[test]
fn corpus_labels_bit_identical_across_pool_sizes() {
    let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 5, ..ScaleConfig::default() };
    let single = build_all_corpora_on(&Pool::new(1), &cfg);
    let parallel = build_all_corpora_on(&Pool::new(4), &cfg);
    assert_eq!(single.len(), parallel.len());
    for (a, b) in single.iter().zip(parallel.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.queries.len(), b.queries.len(), "{}: query counts differ", a.name);
        for (x, y) in a.queries.iter().zip(b.queries.iter()) {
            assert_eq!(x.runtime_ns.to_bits(), y.runtime_ns.to_bits(), "{}: labels differ", a.name);
            assert_eq!(x.udf_work_ns.to_bits(), y.udf_work_ns.to_bits());
            assert_eq!(x.udf_input_rows, y.udf_input_rows);
            assert_eq!(x.placement, y.placement);
            assert_eq!(x.plan.ops.len(), y.plan.ops.len());
            for (p, q) in x.plan.ops.iter().zip(y.plan.ops.iter()) {
                assert_eq!(p.actual_out_rows.to_bits(), q.actual_out_rows.to_bits());
            }
        }
    }
}
