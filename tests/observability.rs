//! Integration tests for the observability subsystem: per-operator query
//! profiles ([`ExecProfile`]), Chrome-trace-event JSON export, and the
//! unified metrics registry.
//!
//! The bit-identity side (profiled runs identical to unobserved runs) lives
//! in `tests/parallel_determinism.rs`; here we check the *content* of the
//! observations: every plan in a generated suite yields a profile covering
//! every operator, the trace export parses as a valid event array, the
//! registry's snapshot/diff surfaces the engine counters, and the flight
//! recorder's JSONL round-trips the estimator-quality telemetry bit for bit.

use graceful::obs::{flight, registry, trace};
use graceful::plan::{Plan, PlanOpKind};
use graceful::prelude::*;
use graceful::udf::generator::apply_adaptations;
use serde::Deserialize;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// The span tracer and the flight recorder are process-global; tests that
/// enable either serialize on this lock so buffer contents stay
/// attributable to one test at a time.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Generated plans (with every valid UDF placement) over one small database.
fn suite_plans() -> (Database, Vec<(u64, Plan)>) {
    let mut db = generate(&schema("tpc_h"), 0.02, 3);
    let g = QueryGenerator::default();
    let mut plans = Vec::new();
    for seed in [7u64, 11, 42, 99, 1234] {
        let mut rng = Rng::seed(seed);
        let Ok(spec) = g.generate(&db, seed, &mut rng) else { continue };
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                continue;
            }
        }
        for placement in graceful::plan::valid_placements(&spec) {
            if let Ok(plan) = build_plan(&spec, placement) {
                plans.push((seed, plan));
            }
        }
    }
    assert!(plans.len() >= 3, "query suite too small: {} plans", plans.len());
    (db, plans)
}

fn profiled(backend: UdfBackend, mode: ExecMode) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .udf_batch_size(37)
        .threads(2)
        .morsel_rows(64)
        .mode(mode)
        .profile(true)
        .build()
        .expect("valid options")
}

/// Every plan in the suite, under every backend and both executor modes,
/// yields an [`ExecProfile`] whose per-operator rows/work agree exactly with
/// the contracted `QueryRun` fields, whose UDF counters appear exactly on
/// the UDF operators, and whose explain rendering names every operator.
#[test]
fn profiles_cover_every_plan_in_the_suite() {
    let (db, plans) = suite_plans();
    let mut udf_plans = 0usize;
    for (seed, plan) in &plans {
        for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
            for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                let run =
                    profiled(backend, mode).run(&db, plan, *seed).expect("profiled run succeeds");
                let what = format!("{backend:?} x {mode:?} seed {seed}");
                let prof = run.profile.as_ref().unwrap_or_else(|| panic!("{what}: no profile"));
                assert_eq!(prof.ops.len(), plan.ops.len(), "{what}: op coverage");
                assert_eq!(prof.mode, mode);
                assert_eq!(prof.backend, backend);
                assert_eq!(prof.threads, 2);
                assert!(prof.total_wall_ns > 0, "{what}: zero total wall time");
                let wall_sum: u64 = prof.ops.iter().map(|o| o.wall_ns).sum();
                assert!(
                    wall_sum <= prof.total_wall_ns,
                    "{what}: self-times {wall_sum} exceed total {}",
                    prof.total_wall_ns
                );
                for (i, (op, p)) in plan.ops.iter().zip(prof.ops.iter()).enumerate() {
                    assert!(!p.name.is_empty(), "{what}: op {i} unnamed");
                    assert_eq!(p.rows_out, run.out_rows[i], "{what}: op {i} rows");
                    assert_eq!(
                        p.work.to_bits(),
                        run.op_work[i].to_bits(),
                        "{what}: op {i} work diverges from the accounted value"
                    );
                    if mode == ExecMode::Materialize {
                        assert_eq!(p.batches, 1, "{what}: materialize runs one pass per op");
                    }
                    let is_udf = matches!(
                        op.kind,
                        PlanOpKind::UdfFilter { .. } | PlanOpKind::UdfProject { .. }
                    );
                    assert_eq!(p.udf.is_some(), is_udf, "{what}: op {i} UDF counter presence");
                    if let Some(u) = &p.udf {
                        assert_eq!(u.backend, backend);
                        if u.rows > 0 {
                            assert!(u.batches > 0, "{what}: rows without batches");
                        }
                        if backend == UdfBackend::TreeWalk {
                            assert_eq!(u.batches, u.rows, "tree-walker batches per row");
                            assert_eq!(u.simd_fast_rows + u.simd_bail_rows, 0);
                        }
                        if backend == UdfBackend::Simd {
                            // The typed fast path classifies every row it
                            // sees as fast or bailed; an ineligible shape
                            // falls back to the VM and records neither.
                            let classified = u.simd_fast_rows + u.simd_bail_rows;
                            assert!(
                                classified == u.rows || classified == 0,
                                "{what}: {classified} classified of {} rows",
                                u.rows
                            );
                            assert!(u.bail_rate() >= 0.0 && u.bail_rate() <= 1.0);
                        }
                    }
                }
                // One UDF per query spec, so the per-op totals must add up
                // to the contracted input-row count.
                let udf_rows: u64 = prof.ops.iter().filter_map(|o| o.udf).map(|u| u.rows).sum();
                assert_eq!(udf_rows as usize, run.udf_input_rows, "{what}: UDF row total");
                if run.udf_input_rows > 0 {
                    udf_plans += 1;
                }
                let text = prof.explain();
                assert!(text.contains("QUERY PROFILE"), "{what}: explain header");
                for p in &prof.ops {
                    assert!(text.contains(&p.name), "{what}: explain omits {}", p.name);
                }
            }
        }
    }
    assert!(udf_plans > 0, "suite exercised no UDF operators");
}

/// Profiles are strictly opt-in: a default session attaches none.
#[test]
fn profile_is_opt_in() {
    let (db, plans) = suite_plans();
    let (seed, plan) = &plans[0];
    let run = Session::new().run(&db, plan, *seed).expect("run succeeds");
    assert!(run.profile.is_none());
}

/// The subset of a Chrome trace event the export contract guarantees.
/// Unknown keys (like `args`) are ignored by deserialization.
#[derive(Debug, Deserialize)]
struct Ev {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
}

/// The trace export is a valid Chrome-trace-event JSON array of complete
/// events, both in memory and round-tripped through a file.
#[test]
fn chrome_trace_export_is_a_valid_event_array() {
    let _g = obs_lock();
    // Empty (or near-empty) traces still parse as an array.
    let events: Vec<Ev> = serde_json::from_str(&trace::export_json()).expect("empty trace parses");
    drop(events);

    trace::enable();
    let (db, plans) = suite_plans();
    for (seed, plan) in plans.iter().take(2) {
        profiled(UdfBackend::Simd, ExecMode::Pipeline)
            .run(&db, plan, *seed)
            .expect("traced run succeeds");
    }
    trace::disable();

    let json = trace::export_json();
    let events: Vec<Ev> = serde_json::from_str(&json).expect("trace JSON parses");
    assert!(!events.is_empty(), "no events recorded");
    for e in &events {
        assert_eq!(e.ph, "X", "only complete events are emitted");
        assert!(e.ts >= 0.0 && e.dur >= 0.0, "negative time in {e:?}");
        assert!(e.pid >= 1);
        assert!(!e.name.is_empty() && !e.cat.is_empty());
    }
    assert!(events.iter().any(|e| e.cat == "exec" && e.name == "query"), "missing exec/query span");
    assert!(
        events.iter().any(|e| e.cat == "udf" && e.name == "eval_morsel"),
        "missing udf/eval_morsel span"
    );
    // Worker spans carry distinct synthetic thread ids.
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(!tids.is_empty());

    // File round-trip (the `GRACEFUL_TRACE=path` flush target).
    let path = std::env::temp_dir().join("graceful-observability-trace.json");
    let path = path.to_str().expect("utf-8 temp path");
    trace::write_to(path).expect("trace file written");
    let reread: Vec<Ev> =
        serde_json::from_str(&std::fs::read_to_string(path).expect("trace file read"))
            .expect("trace file parses");
    assert!(reread.len() >= events.len());
    let _ = std::fs::remove_file(path);
}

/// The registry's snapshot/diff view surfaces the engine's work counters:
/// executed queries, UDF evaluation volume, and the query wall-time
/// histogram.
#[test]
fn registry_snapshot_diff_tracks_engine_counters() {
    let (db, plans) = suite_plans();
    let before = registry::snapshot();
    let mut ran = 0u64;
    let mut udf_rows = 0u64;
    for (seed, plan) in &plans {
        let run = profiled(UdfBackend::Vm, ExecMode::Pipeline)
            .run(&db, plan, *seed)
            .expect("run succeeds");
        ran += 1;
        udf_rows += run.udf_input_rows as u64;
    }
    let delta = registry::snapshot().diff(&before);
    // Other tests run concurrently in this binary and only ever add, so the
    // deltas are lower bounds.
    assert!(delta.counter("exec.queries") >= ran, "exec.queries under-counts");
    assert!(delta.counter("udf.rows") >= udf_rows, "udf.rows under-counts");
    assert!(delta.counter("udf.batches") >= 1);
    let after = registry::snapshot();
    let wall = after.histograms.get("exec.query_wall_ns").expect("wall histogram registered");
    assert!(wall.count >= ran);
    assert!(wall.p50 > 0.0 && wall.p99 >= wall.p50);
    let rendered = after.render();
    assert!(rendered.contains("exec.queries") && rendered.contains("exec.query_wall_ns"));
}

/// The acceptance bar of the estimator-quality telemetry: q-errors
/// recomputed *offline* from the parsed flight JSONL — with the same shared
/// `q_error` function — match the stored per-op values, the registry's
/// `est.*` histogram summaries, and the `explain analyze` rendering **bit
/// for bit**.
#[test]
fn flight_qerrors_recompute_offline_bit_for_bit() {
    let _g = obs_lock();
    let (db, plans) = suite_plans();
    // Annotate with the naive estimator: deterministic, and wrong enough to
    // produce q-errors worth histogramming.
    let estimator = NaiveCard::new(&db);
    let mut annotated = plans.clone();
    for (_, plan) in &mut annotated {
        estimator.annotate(plan).expect("naive estimator annotates");
    }

    flight::clear();
    flight::enable();
    let mut live = Vec::new();
    for (seed, plan) in &annotated {
        for backend in [UdfBackend::TreeWalk, UdfBackend::Vm] {
            let (_, record) = profiled(backend, ExecMode::Pipeline)
                .run_analyzed(&db, plan, *seed)
                .expect("analyzed run succeeds");
            live.push(record);
        }
    }
    flight::disable();

    let parsed = flight::parse_jsonl(&flight::export_jsonl()).expect("flight JSONL parses");
    // Concurrent tests in this binary never annotate plans, so the
    // annotated records in the buffer are exactly this test's runs.
    let ours: Vec<&FlightRecord> =
        parsed.iter().filter(|r| r.ops.iter().any(|o| o.card_q.is_some())).collect();
    assert_eq!(ours.len(), live.len(), "one record per analyzed run");

    // (1) Per-op q-errors recompute bit-for-bit from the serialized
    // predicted/actual pairs; collect them per registry key as we go.
    let mut card: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut cost: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for rec in &ours {
        let backend = rec.backend.to_ascii_lowercase();
        for op in &rec.ops {
            let cq = q_error(op.est_rows, op.rows as f64);
            assert_eq!(cq.to_bits(), op.card_q.expect("annotated").to_bits(), "card q-error");
            let wq = q_error(op.est_work, op.work);
            assert_eq!(wq.to_bits(), op.cost_q.expect("annotated").to_bits(), "cost q-error");
            let key = if op.kind.starts_with("UDF") {
                format!("{}.{backend}", op.kind.to_ascii_lowercase())
            } else {
                op.kind.to_ascii_lowercase()
            };
            card.entry(key.clone()).or_default().push(cq);
            cost.entry(key).or_default().push(wq);
        }
    }
    assert!(card.keys().any(|k| k.contains('.')), "no backend-keyed UDF operator exercised");

    // (2) The registry's est.* histograms aggregate exactly these samples:
    // counts match, and min/max/percentiles are bit-identical to the same
    // statistics over the offline multiset (this test is the binary's sole
    // writer of annotated+profiled runs).
    let snap = registry::snapshot();
    for (by_key, prefix) in [(&card, "est.card.qerror"), (&cost, "est.cost.qerror")] {
        for (key, samples) in by_key {
            let name = format!("{prefix}.{key}");
            let h = snap.histograms.get(&name).unwrap_or_else(|| panic!("{name} not registered"));
            assert_eq!(h.count, samples.len() as u64, "{name}: sample count");
            let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
            let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(h.min.to_bits(), min.to_bits(), "{name}: min");
            assert_eq!(h.max.to_bits(), max.to_bits(), "{name}: max");
            for (q, got) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                assert_eq!(
                    registry::percentile(samples, q).to_bits(),
                    got.to_bits(),
                    "{name}: p{}",
                    (q * 100.0) as u32
                );
            }
        }
    }

    // (3) explain analyze renders bit-for-bit from the parsed copy.
    for rec in &live {
        let twin = ours
            .iter()
            .find(|r| ***r == *rec)
            .unwrap_or_else(|| panic!("no parsed twin for seed {}", rec.seed));
        let report = twin.render_analyze();
        assert_eq!(report, rec.render_analyze(), "explain analyze drifted through JSONL");
        assert!(report.contains("EXPLAIN ANALYZE") && report.contains("q(card)"));
        assert!(report.contains("<- worst estimate"), "worst-estimate marker missing");
    }
}

/// Flushing is explicit and idempotent for both sinks: the buffers are
/// retained, so flushing twice (with recording off in between) writes the
/// same bytes, and the flight flush parses back into complete records.
#[test]
fn trace_and_flight_flush_are_idempotent() {
    let _g = obs_lock();
    let (db, plans) = suite_plans();
    let (seed, plan) = &plans[0];

    trace::enable();
    profiled(UdfBackend::Vm, ExecMode::Pipeline).run(&db, plan, *seed).expect("traced run");
    trace::disable();
    let tpath = std::env::temp_dir().join("graceful-obs-flush-trace.json");
    let tpath = tpath.to_str().expect("utf-8 temp path");
    trace::write_to(tpath).expect("first trace flush");
    let first = std::fs::read(tpath).expect("trace file read");
    trace::write_to(tpath).expect("second trace flush");
    assert_eq!(
        first,
        std::fs::read(tpath).expect("trace file reread"),
        "trace flush not idempotent"
    );
    let _ = std::fs::remove_file(tpath);

    let fpath = std::env::temp_dir().join("graceful-obs-flush-flight.jsonl");
    let fpath = fpath.to_str().expect("utf-8 temp path");
    flight::clear();
    flight::configure(fpath);
    assert_eq!(flight::configured_path().as_deref(), Some(fpath));
    flight::enable();
    profiled(UdfBackend::Vm, ExecMode::Pipeline).run(&db, plan, *seed).expect("recorded run");
    flight::disable();
    assert!(flight::flush().expect("first flight flush"), "configured flush writes a file");
    let first = std::fs::read_to_string(fpath).expect("flight file read");
    assert!(flight::flush().expect("second flight flush"));
    let second = std::fs::read_to_string(fpath).expect("flight file reread");
    assert_eq!(first, second, "flight flush not idempotent");
    let records = flight::parse_jsonl(&second).expect("flushed JSONL parses");
    assert!(!records.is_empty(), "flush lost the recorded run");
    let _ = std::fs::remove_file(fpath);
}

/// Two sessions recording concurrently interleave whole records, never
/// fragments: every record either thread produced parses back from the
/// shared buffer complete and field-for-field equal to the locally rebuilt
/// one.
#[test]
fn concurrent_sessions_write_complete_flight_records() {
    let _g = obs_lock();
    let (db, plans) = suite_plans();
    flight::clear();
    flight::enable();
    trace::enable();
    let expected: Vec<FlightRecord> = std::thread::scope(|s| {
        let handles: Vec<_> =
            [(UdfBackend::Vm, ExecMode::Pipeline), (UdfBackend::Simd, ExecMode::Materialize)]
                .into_iter()
                .map(|(backend, mode)| {
                    let (db, plans) = (&db, &plans);
                    s.spawn(move || {
                        let session = profiled(backend, mode);
                        plans
                            .iter()
                            .map(|(seed, plan)| {
                                let run = session.run(db, plan, *seed).expect("concurrent run");
                                graceful::exec::flight_record(
                                    plan,
                                    session.config(),
                                    &run,
                                    *seed,
                                    None,
                                )
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker thread")).collect()
    });
    trace::disable();
    flight::disable();

    let parsed = flight::parse_jsonl(&flight::export_jsonl()).expect("every line is one record");
    assert!(parsed.len() >= expected.len(), "records went missing");
    for rec in &expected {
        assert!(
            parsed.contains(rec),
            "record for seed {} ({} / {}) is missing or torn",
            rec.seed,
            rec.backend,
            rec.mode
        );
    }
}
