//! Integration tests for the observability subsystem: per-operator query
//! profiles ([`ExecProfile`]), Chrome-trace-event JSON export, and the
//! unified metrics registry.
//!
//! The bit-identity side (profiled runs identical to unobserved runs) lives
//! in `tests/parallel_determinism.rs`; here we check the *content* of the
//! observations: every plan in a generated suite yields a profile covering
//! every operator, the trace export parses as a valid event array, and the
//! registry's snapshot/diff surfaces the engine counters.

use graceful::obs::{registry, trace};
use graceful::plan::{Plan, PlanOpKind};
use graceful::prelude::*;
use graceful::udf::generator::apply_adaptations;
use serde::Deserialize;

/// Generated plans (with every valid UDF placement) over one small database.
fn suite_plans() -> (Database, Vec<(u64, Plan)>) {
    let mut db = generate(&schema("tpc_h"), 0.02, 3);
    let g = QueryGenerator::default();
    let mut plans = Vec::new();
    for seed in [7u64, 11, 42, 99, 1234] {
        let mut rng = Rng::seed(seed);
        let Ok(spec) = g.generate(&db, seed, &mut rng) else { continue };
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                continue;
            }
        }
        for placement in graceful::plan::valid_placements(&spec) {
            if let Ok(plan) = build_plan(&spec, placement) {
                plans.push((seed, plan));
            }
        }
    }
    assert!(plans.len() >= 3, "query suite too small: {} plans", plans.len());
    (db, plans)
}

fn profiled(backend: UdfBackend, mode: ExecMode) -> Session {
    ExecOptions::new()
        .udf_backend(backend)
        .udf_batch_size(37)
        .threads(2)
        .morsel_rows(64)
        .mode(mode)
        .profile(true)
        .build()
        .expect("valid options")
}

/// Every plan in the suite, under every backend and both executor modes,
/// yields an [`ExecProfile`] whose per-operator rows/work agree exactly with
/// the contracted `QueryRun` fields, whose UDF counters appear exactly on
/// the UDF operators, and whose explain rendering names every operator.
#[test]
fn profiles_cover_every_plan_in_the_suite() {
    let (db, plans) = suite_plans();
    let mut udf_plans = 0usize;
    for (seed, plan) in &plans {
        for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
            for mode in [ExecMode::Pipeline, ExecMode::Materialize] {
                let run =
                    profiled(backend, mode).run(&db, plan, *seed).expect("profiled run succeeds");
                let what = format!("{backend:?} x {mode:?} seed {seed}");
                let prof = run.profile.as_ref().unwrap_or_else(|| panic!("{what}: no profile"));
                assert_eq!(prof.ops.len(), plan.ops.len(), "{what}: op coverage");
                assert_eq!(prof.mode, mode);
                assert_eq!(prof.backend, backend);
                assert_eq!(prof.threads, 2);
                assert!(prof.total_wall_ns > 0, "{what}: zero total wall time");
                let wall_sum: u64 = prof.ops.iter().map(|o| o.wall_ns).sum();
                assert!(
                    wall_sum <= prof.total_wall_ns,
                    "{what}: self-times {wall_sum} exceed total {}",
                    prof.total_wall_ns
                );
                for (i, (op, p)) in plan.ops.iter().zip(prof.ops.iter()).enumerate() {
                    assert!(!p.name.is_empty(), "{what}: op {i} unnamed");
                    assert_eq!(p.rows_out, run.out_rows[i], "{what}: op {i} rows");
                    assert_eq!(
                        p.work.to_bits(),
                        run.op_work[i].to_bits(),
                        "{what}: op {i} work diverges from the accounted value"
                    );
                    if mode == ExecMode::Materialize {
                        assert_eq!(p.batches, 1, "{what}: materialize runs one pass per op");
                    }
                    let is_udf = matches!(
                        op.kind,
                        PlanOpKind::UdfFilter { .. } | PlanOpKind::UdfProject { .. }
                    );
                    assert_eq!(p.udf.is_some(), is_udf, "{what}: op {i} UDF counter presence");
                    if let Some(u) = &p.udf {
                        assert_eq!(u.backend, backend);
                        if u.rows > 0 {
                            assert!(u.batches > 0, "{what}: rows without batches");
                        }
                        if backend == UdfBackend::TreeWalk {
                            assert_eq!(u.batches, u.rows, "tree-walker batches per row");
                            assert_eq!(u.simd_fast_rows + u.simd_bail_rows, 0);
                        }
                        if backend == UdfBackend::Simd {
                            // The typed fast path classifies every row it
                            // sees as fast or bailed; an ineligible shape
                            // falls back to the VM and records neither.
                            let classified = u.simd_fast_rows + u.simd_bail_rows;
                            assert!(
                                classified == u.rows || classified == 0,
                                "{what}: {classified} classified of {} rows",
                                u.rows
                            );
                            assert!(u.bail_rate() >= 0.0 && u.bail_rate() <= 1.0);
                        }
                    }
                }
                // One UDF per query spec, so the per-op totals must add up
                // to the contracted input-row count.
                let udf_rows: u64 = prof.ops.iter().filter_map(|o| o.udf).map(|u| u.rows).sum();
                assert_eq!(udf_rows as usize, run.udf_input_rows, "{what}: UDF row total");
                if run.udf_input_rows > 0 {
                    udf_plans += 1;
                }
                let text = prof.explain();
                assert!(text.contains("QUERY PROFILE"), "{what}: explain header");
                for p in &prof.ops {
                    assert!(text.contains(&p.name), "{what}: explain omits {}", p.name);
                }
            }
        }
    }
    assert!(udf_plans > 0, "suite exercised no UDF operators");
}

/// Profiles are strictly opt-in: a default session attaches none.
#[test]
fn profile_is_opt_in() {
    let (db, plans) = suite_plans();
    let (seed, plan) = &plans[0];
    let run = Session::new().run(&db, plan, *seed).expect("run succeeds");
    assert!(run.profile.is_none());
}

/// The subset of a Chrome trace event the export contract guarantees.
/// Unknown keys (like `args`) are ignored by deserialization.
#[derive(Debug, Deserialize)]
struct Ev {
    name: String,
    cat: String,
    ph: String,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
}

/// The trace export is a valid Chrome-trace-event JSON array of complete
/// events, both in memory and round-tripped through a file.
#[test]
fn chrome_trace_export_is_a_valid_event_array() {
    // Empty (or near-empty) traces still parse as an array.
    let events: Vec<Ev> = serde_json::from_str(&trace::export_json()).expect("empty trace parses");
    drop(events);

    trace::enable();
    let (db, plans) = suite_plans();
    for (seed, plan) in plans.iter().take(2) {
        profiled(UdfBackend::Simd, ExecMode::Pipeline)
            .run(&db, plan, *seed)
            .expect("traced run succeeds");
    }
    trace::disable();

    let json = trace::export_json();
    let events: Vec<Ev> = serde_json::from_str(&json).expect("trace JSON parses");
    assert!(!events.is_empty(), "no events recorded");
    for e in &events {
        assert_eq!(e.ph, "X", "only complete events are emitted");
        assert!(e.ts >= 0.0 && e.dur >= 0.0, "negative time in {e:?}");
        assert!(e.pid >= 1);
        assert!(!e.name.is_empty() && !e.cat.is_empty());
    }
    assert!(events.iter().any(|e| e.cat == "exec" && e.name == "query"), "missing exec/query span");
    assert!(
        events.iter().any(|e| e.cat == "udf" && e.name == "eval_morsel"),
        "missing udf/eval_morsel span"
    );
    // Worker spans carry distinct synthetic thread ids.
    let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert!(!tids.is_empty());

    // File round-trip (the `GRACEFUL_TRACE=path` flush target).
    let path = std::env::temp_dir().join("graceful-observability-trace.json");
    let path = path.to_str().expect("utf-8 temp path");
    trace::write_to(path).expect("trace file written");
    let reread: Vec<Ev> =
        serde_json::from_str(&std::fs::read_to_string(path).expect("trace file read"))
            .expect("trace file parses");
    assert!(reread.len() >= events.len());
    let _ = std::fs::remove_file(path);
}

/// The registry's snapshot/diff view surfaces the engine's work counters:
/// executed queries, UDF evaluation volume, and the query wall-time
/// histogram.
#[test]
fn registry_snapshot_diff_tracks_engine_counters() {
    let (db, plans) = suite_plans();
    let before = registry::snapshot();
    let mut ran = 0u64;
    let mut udf_rows = 0u64;
    for (seed, plan) in &plans {
        let run = profiled(UdfBackend::Vm, ExecMode::Pipeline)
            .run(&db, plan, *seed)
            .expect("run succeeds");
        ran += 1;
        udf_rows += run.udf_input_rows as u64;
    }
    let delta = registry::snapshot().diff(&before);
    // Other tests run concurrently in this binary and only ever add, so the
    // deltas are lower bounds.
    assert!(delta.counter("exec.queries") >= ran, "exec.queries under-counts");
    assert!(delta.counter("udf.rows") >= udf_rows, "udf.rows under-counts");
    assert!(delta.counter("udf.batches") >= 1);
    let after = registry::snapshot();
    let wall = after.histograms.get("exec.query_wall_ns").expect("wall histogram registered");
    assert!(wall.count >= ran);
    assert!(wall.p50 > 0.0 && wall.p99 >= wall.p50);
    let rendered = after.render();
    assert!(rendered.contains("exec.queries") && rendered.contains("exec.query_wall_ns"));
}
