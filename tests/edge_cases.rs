//! Edge-case integration tests: empty intermediates, degenerate
//! selectivities, projection UDFs, and whole-catalog generation.

use graceful::prelude::*;
use graceful_plan::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind, Pred};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::sync::Arc;

#[test]
fn all_twenty_datasets_generate_with_stats() {
    for name in DATASET_NAMES {
        let db = generate(&schema(name), 0.02, 1);
        assert!(db.total_rows() > 0, "{name} generated empty");
        for t in db.tables() {
            let st = db.stats(&t.name).unwrap();
            assert_eq!(st.num_rows, t.num_rows());
            for c in t.columns() {
                // Stats exist and are internally consistent for every column.
                let cs = st.column(&c.name).unwrap();
                assert!(cs.ndv <= st.num_rows.max(1), "{name}.{}.{}", t.name, c.name);
                assert!((0.0..=1.0).contains(&cs.null_fraction));
            }
        }
    }
}

#[test]
fn udf_filter_over_empty_input_is_free_and_correct() {
    let db = generate(&schema("tpc_h"), 0.02, 2);
    let def = parse_udf("def f(x0):\n    return x0 * 2\n").unwrap();
    let udf = Arc::new(GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "orders_t".into(),
        input_columns: vec!["totalprice".into()],
        adaptations: vec![],
    });
    // A filter that eliminates everything, below the UDF.
    let plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Filter {
                    preds: vec![Pred::new(
                        "orders_t",
                        "totalprice",
                        CmpOp::Lt,
                        Value::Float(-1e18),
                    )],
                },
                vec![0],
            ),
            PlanOp::new(PlanOpKind::UdfFilter { udf, op: CmpOp::Ge, literal: 0.0 }, vec![1]),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ],
        root: 3,
    };
    let run = Session::from_env().unwrap().run(&db, &plan, 1).unwrap();
    assert_eq!(run.agg_value, 0.0);
    assert_eq!(run.udf_input_rows, 0);
    assert_eq!(run.out_rows[1], 0);
    assert!(run.runtime_ns > 0.0, "scan work is still accounted");
}

#[test]
fn scale_above_udf_extremes() {
    use graceful::card::scale_above_udf;
    let _db = generate(&schema("tpc_h"), 0.02, 3);
    let def = parse_udf("def f(x0):\n    return x0\n").unwrap();
    let udf = Arc::new(GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "orders_t".into(),
        input_columns: vec!["totalprice".into()],
        adaptations: vec![],
    });
    let mut plan = Plan {
        ops: vec![
            PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
            PlanOp::new(PlanOpKind::UdfFilter { udf, op: CmpOp::Le, literal: 0.0 }, vec![0]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("orders_t", "cust_id"),
                    right_col: ColRef::new("customer_t", "id"),
                },
                vec![1, 1],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ],
        root: 3,
    };
    plan.ops[0].est_out_rows = 1000.0;
    plan.ops[1].est_out_rows = 500.0;
    plan.ops[2].est_out_rows = 2000.0;
    plan.ops[3].est_out_rows = 1.0;
    scale_above_udf(&mut plan, 0.0);
    assert_eq!(plan.ops[1].est_out_rows, 0.0);
    assert_eq!(plan.ops[2].est_out_rows, 0.0);
    assert_eq!(plan.ops[3].est_out_rows, 1.0, "agg output stays 1");
    scale_above_udf(&mut plan, 1.0);
    assert_eq!(plan.ops[1].est_out_rows, 1000.0);
}

#[test]
fn projection_udf_queries_execute_and_featurize() {
    let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 30, ..ScaleConfig::default() };
    let corpus = build_corpus("consumer", &cfg, 11).unwrap();
    let proj =
        corpus.queries.iter().find(|q| q.has_udf() && q.spec.udf_usage == UdfUsage::Projection);
    let Some(q) = proj else { return };
    // UDF_PROJECT op exists, aggregate consumed its output.
    assert!(q.plan.ops.iter().any(|o| matches!(o.kind, PlanOpKind::UdfProject { .. })));
    let est = ActualCard::new(&corpus.db);
    let mut plan = q.plan.clone();
    est.annotate(&mut plan).unwrap();
    let g = Featurizer::full().featurize(&corpus.db, &q.spec, &plan, &est).unwrap();
    assert!(g.len() > plan.ops.len());
}

#[test]
fn interpreter_string_edge_cases() {
    let mut interp = Interpreter::default();
    // find() miss returns -1 like Python.
    let udf = parse_udf("def f(s):\n    return s.find('zzz')\n").unwrap();
    let out = interp.eval(&udf, &[Value::Text("abc".into())]).unwrap();
    assert_eq!(out.value, Value::Int(-1));
    // Repetition is clamped, replace with empty needle is identity.
    let udf2 = parse_udf("def f(s):\n    return s.replace('', 'x')\n").unwrap();
    let out2 = interp.eval(&udf2, &[Value::Text("ab".into())]).unwrap();
    assert_eq!(out2.value, Value::Text("ab".into()));
    // String method on NULL yields NULL, not an error.
    let out3 = interp.eval(&udf2, &[Value::Null]).unwrap();
    assert_eq!(out3.value, Value::Null);
}

#[test]
fn hit_ratio_with_contradictory_prefilter_is_zero_ish() {
    let db = generate(&schema("tpc_h"), 0.05, 5);
    let def = parse_udf("def f(x0):\n    if x0 > 40:\n        return 1\n    return 0\n").unwrap();
    let udf = GeneratedUdf {
        source: print_udf(&def),
        def,
        table: "lineitem_t".into(),
        input_columns: vec!["quantity".into()],
        adaptations: vec![],
    };
    let actual = ActualCard::new(&db);
    let hr = HitRatioEstimator::new(&actual);
    // Pre-filter keeps only quantity <= 10, branch needs > 40: impossible.
    let pre = vec![Pred::new("lineitem_t", "quantity", CmpOp::Le, Value::Int(10))];
    let cond = graceful::cfg::BranchCondInfo { param: "x0".into(), op: CmpOp::Gt, literal: 40.0 };
    let p = hr.path_probability(&udf, &pre, &[(Some(cond), true)]);
    assert!(p < 1e-6, "impossible path got probability {p}");
}

#[test]
fn q_error_summary_average_matches_manual() {
    use graceful::common::metrics::QErrorSummary;
    let a = QErrorSummary { median: 1.2, p95: 3.0, p99: 9.0, count: 5 };
    let b = QErrorSummary { median: 1.8, p95: 5.0, p99: 11.0, count: 7 };
    let avg = QErrorSummary::average(&[a, b]);
    assert!((avg.median - 1.5).abs() < 1e-12);
    assert_eq!(avg.count, 12);
}

#[test]
fn type_inference_agrees_with_interpreter_on_generated_udfs() {
    use graceful::udf::infer_return_type;
    let mut db = generate(&schema("movielens"), 0.02, 9);
    let gen = UdfGenerator::default();
    let mut rng = Rng::seed(77);
    let mut interp = Interpreter::default();
    let mut checked = 0;
    for _ in 0..25 {
        let u = gen.generate(&db, &mut rng).unwrap();
        graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
        let table = db.table(&u.table).unwrap();
        let types: Vec<DataType> =
            u.input_columns.iter().map(|c| table.column_type(c).unwrap()).collect();
        let inferred = infer_return_type(&u.def, &types);
        let cols: Vec<_> = u.input_columns.iter().map(|c| table.column(c).unwrap()).collect();
        for row in 0..table.num_rows().min(5) {
            let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
            let out = interp.eval(&u.def, &args).unwrap();
            match out.value.data_type() {
                // Int is allowed to widen to Float in the static result.
                Some(DataType::Int) => {
                    assert!(matches!(inferred, DataType::Int | DataType::Float))
                }
                Some(dt) => assert_eq!(dt, inferred, "udf:\n{}", u.source),
                None => {} // NULL carries no type evidence
            }
            checked += 1;
        }
    }
    assert!(checked > 50);
}

/// Float→int cast edges (`math.floor` / `math.ceil` / `int(..)` on NaN, ±inf
/// and floats beyond the i64 range) follow Rust's saturating cast — NaN → 0,
/// out-of-range clamps to i64::MIN/MAX — and all three execution paths
/// (tree-walker, batch VM, columnar SIMD) pin the identical results.
#[test]
fn float_to_int_cast_edges_are_identical_across_all_three_paths() {
    use graceful::udf::{simd, CostCounter};

    let udf =
        parse_udf("def f(x0):\n    return int(x0) + math.floor(x0) + math.ceil(x0)\n").unwrap();
    let prog = compile(&udf).unwrap();
    let shape = prog.simd_shape();

    let edges = [
        (f64::NAN, 0i64),
        (f64::INFINITY, i64::MAX), // saturates: 3 * MAX wraps below
        (f64::NEG_INFINITY, i64::MIN),
        (1e19, i64::MAX),                 // > i64::MAX
        (-1e19, i64::MIN),                // < i64::MIN
        (9.223372036854776e18, i64::MAX), // just past i64::MAX
    ];
    let xs: Vec<Value> = edges.iter().map(|&(x, _)| Value::Float(x)).collect();

    // Reference: the tree-walker, row by row.
    let mut interp = Interpreter::default();
    let mut tw_vals = Vec::new();
    let mut tw_cost = CostCounter::new();
    for x in &xs {
        let o = interp.eval(&udf, std::slice::from_ref(x)).unwrap();
        tw_vals.push(o.value);
        tw_cost.merge(&o.cost);
    }
    // Each single cast saturates to the documented pin (the UDF sums three
    // casts, so check the raw single-cast pin explicitly through int()).
    let single = parse_udf("def f(x0):\n    return int(x0)\n").unwrap();
    for &(x, pinned) in &edges {
        let o = Interpreter::default().eval(&single, &[Value::Float(x)]).unwrap();
        assert_eq!(o.value, Value::Int(pinned), "int({x}) pin");
    }

    // Batch VM.
    let slices: Vec<&[Value]> = vec![&xs];
    let mut vm = Vm::default();
    let mut vm_vals = Vec::new();
    let mut vm_cost = CostCounter::new();
    vm.eval_batch(&prog, &slices, &mut vm_vals, &mut vm_cost).unwrap();
    assert_eq!(vm_vals, tw_vals);
    assert_eq!(vm_cost, tw_cost);

    // Columnar SIMD path.
    assert!(shape.has_fast_path, "all-numeric straight line must vectorize");
    let mut simd_vm = Vm::default();
    let mut simd_vals = Vec::new();
    let mut simd_cost = CostCounter::new();
    simd::eval_batch_values(&mut simd_vm, &prog, &shape, &slices, &mut simd_vals, &mut simd_cost)
        .unwrap();
    assert_eq!(simd_vals, tw_vals);
    assert_eq!(simd_cost, tw_cost);
    assert_eq!(simd_cost.total.to_bits(), tw_cost.total.to_bits());
}

/// The two kernel-semantics pins of this PR, end to end through UDF source:
/// `np.sign(0)` is 0 (not ±1), and `abs()` of `i64::MIN` saturates instead
/// of panicking — identically on every execution path.
#[test]
fn sign_and_abs_kernel_pins_hold_on_every_path() {
    use graceful::udf::{simd, CostCounter};

    let udf = parse_udf("def f(x0, x1):\n    return np.sign(x0) + abs(x1)\n").unwrap();
    let prog = compile(&udf).unwrap();
    let shape = prog.simd_shape();
    let xs = vec![Value::Float(0.0), Value::Float(-0.0), Value::Float(-3.5), Value::Int(2)];
    let ys = vec![Value::Int(i64::MIN), Value::Int(-5), Value::Int(i64::MIN), Value::Int(7)];

    let mut interp = Interpreter::default();
    let expected: Vec<Value> = (0..xs.len())
        .map(|r| interp.eval(&udf, &[xs[r].clone(), ys[r].clone()]).unwrap().value)
        .collect();
    // np.sign(0.0) == 0.0 and abs(i64::MIN) == i64::MAX ⇒ 0.0 + MAX as f64.
    assert_eq!(expected[0], Value::Float(0.0 + i64::MAX as f64));
    assert_eq!(expected[1], Value::Float(0.0 + 5.0));

    let slices: Vec<&[Value]> = vec![&xs, &ys];
    let mut vm_vals = Vec::new();
    Vm::default().eval_batch(&prog, &slices, &mut vm_vals, &mut CostCounter::new()).unwrap();
    assert_eq!(vm_vals, expected);

    let mut simd_vals = Vec::new();
    simd::eval_batch_values(
        &mut Vm::default(),
        &prog,
        &shape,
        &slices,
        &mut simd_vals,
        &mut CostCounter::new(),
    )
    .unwrap();
    assert_eq!(simd_vals, expected);
}
