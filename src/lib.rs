//! # GRACEFUL — A Learned Cost Estimator for UDFs (reproduction)
//!
//! This workspace reproduces *GRACEFUL: A Learned Cost Estimator For UDFs*
//! (Wehrstein, Bang, Heinrich, Binnig — ICDE 2025) end to end in Rust,
//! including every substrate the paper depends on: a columnar storage engine
//! with statistics, a Python-like scalar UDF language and interpreter, the
//! transformed control-flow-graph representation, a cardinality-estimator
//! ladder, a from-scratch GNN stack, gradient-boosted trees, the benchmark
//! generator, the learned cost model, and the pull-up/push-down advisor.
//!
//! This crate is the facade: it re-exports the workspace crates under short
//! module names and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! The engine is configured programmatically through [`Session`] /
//! [`ExecOptions`] (re-exported in the [`prelude`]); `GRACEFUL_*`
//! environment variables are only documented defaults, applied by
//! [`Session::from_env`]:
//!
//! ```
//! use graceful::prelude::*;
//!
//! // An env-free, fully programmatic engine session.
//! let session = ExecOptions::new()
//!     .udf_backend(UdfBackend::Vm)
//!     .udf_batch_size(512)
//!     .threads(2)
//!     .build()
//!     .expect("valid options");
//! let db = generate(&schema("tpc_h"), 0.02, 7);
//! let spec = QueryGenerator::default()
//!     .generate(&db, 1, &mut Rng::seed(1))
//!     .expect("query generated");
//! # let mut db = db;
//! # if let Some(u) = &spec.udf {
//! #     graceful::udf::generator::apply_adaptations(&mut db, &u.adaptations).unwrap();
//! # }
//! let plan = build_plan(&spec, UdfPlacement::PushDown).expect("plan built");
//! let run = session.run(&db, &plan, spec.id).expect("plan executes");
//! assert!(run.runtime_ns > 0.0);
//! ```
//!
//! ```no_run
//! use graceful::prelude::*;
//!
//! // Generate a database, build a workload, train and apply the estimator.
//! let cfg = ScaleConfig { queries_per_db: 40, ..ScaleConfig::default() };
//! let corpus = build_corpus("imdb", &cfg, 42).unwrap();
//! let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
//! println!("{}", evaluate_actual(&model, &corpus));
//! ```

pub use graceful_card as card;
pub use graceful_cfg as cfg;
pub use graceful_common as common;
pub use graceful_core as core_model;
pub use graceful_exec as exec;
pub use graceful_gbdt as gbdt;
pub use graceful_nn as nn;
pub use graceful_obs as obs;
pub use graceful_plan as plan;
pub use graceful_runtime as runtime;
pub use graceful_storage as storage;
pub use graceful_udf as udf;

pub use graceful_exec::{ExecMode, ExecOptions, Session};

/// Everything a downstream user typically needs.
pub mod prelude {
    pub use graceful_card::{
        ActualCard, CardEstimator, DataDrivenCard, HitRatioEstimator, NaiveCard, SamplingCard,
    };
    pub use graceful_cfg::{build_dag, DagConfig, UdfDag, UdfNodeKind};
    pub use graceful_common::config::{ScaleConfig, UdfBackend};
    pub use graceful_common::metrics::{q_error, QErrorSummary};
    pub use graceful_common::rng::Rng;
    pub use graceful_core::advisor::{PullUpAdvisor, Strategy};
    pub use graceful_core::corpus::{
        build_all_corpora, build_all_corpora_in, build_all_corpora_on, build_corpus,
        build_corpus_in, DatasetCorpus,
    };
    pub use graceful_core::experiments::{
        cross_validate, evaluate_actual, evaluate_model, summarize, train_graceful, EstimatorKind,
    };
    pub use graceful_core::featurize::Featurizer;
    pub use graceful_core::model::{GracefulModel, TrainConfig, TrainOptions};
    pub use graceful_core::telemetry::{labels_from_flight, run_with_model, ModelRun};
    pub use graceful_exec::{ExecMode, ExecOptions, ExecProfile, Executor, Session};
    pub use graceful_nn::GnnExecMode;
    pub use graceful_obs::flight::{FlightOp, FlightRecord};
    pub use graceful_plan::{build_plan, QueryGenerator, QuerySpec, UdfPlacement, UdfUsage};
    pub use graceful_runtime::Pool;
    pub use graceful_storage::datagen::{generate, schema, DATASET_NAMES};
    pub use graceful_storage::{DataType, Database, Value};
    pub use graceful_udf::{compile, parse_udf, print_udf, Interpreter, UdfGenerator, Vm};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let mut rng = Rng::seed(1);
        assert!(rng.unit() < 1.0);
        assert_eq!(DATASET_NAMES.len(), 20);
        assert!(q_error(2.0, 1.0) >= 1.0);
    }
}
