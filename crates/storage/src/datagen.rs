//! Seeded generators for the paper's 20 benchmark databases.
//!
//! The paper evaluates on 20 real-world databases (18 relational datasets
//! plus SSB, TPC-H and IMDB). Those datasets are not redistributable here, so
//! we synthesise 20 databases carrying the same names and — more importantly —
//! the *properties the experiments depend on*:
//!
//! * PK/FK schemas with 3–7 tables so the query generator can build 1–5 join
//!   SPJA queries (Table II),
//! * skewed foreign-key fan-outs and intra-table column correlations so the
//!   naive (independence-assuming) cardinality estimator degrades visibly
//!   while sampling / data-driven estimators stay accurate (Table III's
//!   estimator ladder),
//! * diverse value ranges and distributions per dataset so zero-shot transfer
//!   across databases is non-trivial (Figure 5),
//! * deliberately *stronger* correlations in `airline` and `baseball`, the
//!   two datasets the paper singles out as hard for learned estimators.
//!
//! Everything is a pure function of `(schema, scale, seed)`.

use crate::column::{Column, ColumnData};
use crate::database::Database;
use crate::table::Table;
use crate::types::DataType;
use graceful_common::rng::{sample_cdf, zipf_cdf, Rng};

/// How a column's values are generated.
#[derive(Debug, Clone, PartialEq)]
pub enum ColGen {
    /// Dense primary key `0..n`.
    Serial,
    /// Foreign key into `table`'s serial PK, fan-out skewed by `skew`
    /// (0 = uniform).
    Fk { table: String, skew: f64 },
    /// Uniform integer in `[lo, hi]`.
    IntUniform { lo: i64, hi: i64 },
    /// Zipf-distributed integer over `0..domain` with skew `s`.
    IntZipf { domain: usize, skew: f64 },
    /// Uniform float in `[lo, hi)`.
    FloatUniform { lo: f64, hi: f64 },
    /// Normal float (clamped to ±6σ).
    FloatNormal { mean: f64, std: f64 },
    /// Text drawn from a pool of `domain` distinct strings, zipf-skewed,
    /// with lengths roughly in `[min_len, max_len]`.
    Text { domain: usize, skew: f64, min_len: usize, max_len: usize },
    /// Bernoulli boolean.
    Bool { p: f64 },
    /// Correlated with an earlier column in the same table:
    /// `value = factor * source + N(0, noise * |range(source)|)`.
    /// This is what breaks attribute-independence assumptions.
    Correlated { source: String, factor: f64, noise: f64 },
}

/// Column specification: generator plus a NULL fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub gen: ColGen,
    pub null_fraction: f64,
}

impl ColumnSpec {
    pub fn new(name: &str, gen: ColGen) -> Self {
        ColumnSpec { name: name.to_string(), gen, null_fraction: 0.0 }
    }

    /// Builder: inject NULLs with the given probability.
    pub fn nulls(mut self, fraction: f64) -> Self {
        self.null_fraction = fraction.clamp(0.0, 0.9);
        self
    }
}

/// Table specification.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSpec {
    pub name: String,
    /// Base row count before `scale` is applied.
    pub base_rows: usize,
    pub columns: Vec<ColumnSpec>,
}

/// A whole database schema.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSpec {
    pub name: String,
    pub tables: Vec<TableSpec>,
}

// --- spec construction helpers (keep the 20 schema definitions terse) ---

fn serial(name: &str) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::Serial)
}
fn fk(name: &str, table: &str, skew: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::Fk { table: table.to_string(), skew })
}
fn int_u(name: &str, lo: i64, hi: i64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::IntUniform { lo, hi })
}
fn int_z(name: &str, domain: usize, skew: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::IntZipf { domain, skew })
}
fn float_u(name: &str, lo: f64, hi: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::FloatUniform { lo, hi })
}
fn float_n(name: &str, mean: f64, std: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::FloatNormal { mean, std })
}
fn text(name: &str, domain: usize, skew: f64, min_len: usize, max_len: usize) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::Text { domain, skew, min_len, max_len })
}
fn boolean(name: &str, p: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::Bool { p })
}
fn corr(name: &str, source: &str, factor: f64, noise: f64) -> ColumnSpec {
    ColumnSpec::new(name, ColGen::Correlated { source: source.to_string(), factor, noise })
}
fn tbl(name: &str, base_rows: usize, columns: Vec<ColumnSpec>) -> TableSpec {
    TableSpec { name: name.to_string(), base_rows, columns }
}

/// The names of the 20 benchmark databases (Figure 5's x-axis).
pub const DATASET_NAMES: [&str; 20] = [
    "accidents",
    "airline",
    "baseball",
    "basketball",
    "carc",
    "consumer",
    "credit",
    "employee",
    "fhnk",
    "financial",
    "geneea",
    "genome",
    "hepatitis",
    "imdb",
    "movielens",
    "seznam",
    "ssb",
    "tournament",
    "tpc_h",
    "walmart",
];

/// Build the schema for one named dataset.
///
/// Each schema is a star/snowflake of 3–7 tables. Dimension tables come
/// first; fact tables reference them. `airline` and `baseball` carry the
/// strongest correlations and fan-out skew (see module docs).
pub fn schema(name: &str) -> SchemaSpec {
    let tables = match name {
        "accidents" => vec![
            tbl(
                "region",
                220,
                vec![serial("id"), text("name", 220, 0.3, 4, 12), float_u("area", 1.0, 500.0)],
            ),
            tbl(
                "vehicle",
                900,
                vec![
                    serial("id"),
                    text("model", 300, 0.9, 4, 14),
                    int_u("year", 1980, 2020),
                    float_u("weight", 600.0, 3500.0),
                ],
            ),
            tbl(
                "accident",
                9000,
                vec![
                    serial("id"),
                    fk("region_id", "region", 1.1),
                    fk("vehicle_id", "vehicle", 0.7),
                    int_u("severity", 0, 4),
                    float_n("damage", 4200.0, 1600.0),
                    corr("claims", "severity", 900.0, 0.08),
                    boolean("fatal", 0.06),
                ],
            ),
            tbl(
                "casualty",
                12000,
                vec![
                    serial("id"),
                    fk("accident_id", "accident", 0.9),
                    int_u("age", 1, 95),
                    text("injury", 40, 1.0, 3, 10),
                ],
            ),
        ],
        // Strong cross-column correlation + heavy fan-out skew: the paper's
        // problem child for learned cardinality estimation.
        "airline" => vec![
            tbl(
                "carrier",
                140,
                vec![serial("id"), text("code", 140, 0.2, 2, 3), float_u("rating", 1.0, 5.0)],
            ),
            tbl(
                "airport",
                400,
                vec![
                    serial("id"),
                    text("iata", 400, 0.2, 3, 3),
                    float_u("lat", -60.0, 70.0),
                    float_u("lon", -180.0, 180.0),
                ],
            ),
            tbl(
                "flight",
                14000,
                vec![
                    serial("id"),
                    fk("carrier_id", "carrier", 1.6),
                    fk("origin_id", "airport", 1.4),
                    fk("dest_id", "airport", 1.4),
                    int_u("dep_delay", -10, 180),
                    corr("arr_delay", "dep_delay", 1.0, 0.02),
                    corr("taxi_time", "dep_delay", 0.3, 0.03),
                    float_u("distance", 80.0, 5200.0),
                ],
            ),
            tbl(
                "booking",
                20000,
                vec![
                    serial("id"),
                    fk("flight_id", "flight", 1.3),
                    int_z("fare_class", 6, 1.2),
                    float_n("price", 320.0, 140.0).nulls(0.04),
                ],
            ),
        ],
        // Correlated performance statistics; noted as hard in Figure 8.
        "baseball" => vec![
            tbl(
                "team",
                120,
                vec![serial("id"), text("name", 120, 0.2, 5, 14), int_u("founded", 1880, 1995)],
            ),
            tbl(
                "player",
                2600,
                vec![
                    serial("id"),
                    fk("team_id", "team", 1.5),
                    int_u("birth_year", 1950, 2002),
                    float_u("height", 160.0, 205.0),
                    corr("weight", "height", 0.55, 0.04),
                ],
            ),
            tbl(
                "batting",
                16000,
                vec![
                    serial("id"),
                    fk("player_id", "player", 1.4),
                    int_u("at_bats", 0, 650),
                    corr("hits", "at_bats", 0.27, 0.03),
                    corr("runs", "at_bats", 0.14, 0.04),
                    int_z("hr", 60, 1.5),
                ],
            ),
            tbl(
                "pitching",
                9000,
                vec![
                    serial("id"),
                    fk("player_id", "player", 1.8),
                    float_u("era", 0.9, 9.8),
                    corr("whip", "era", 0.14, 0.05),
                    int_u("strikeouts", 0, 380),
                ],
            ),
        ],
        "basketball" => vec![
            tbl("franchise", 90, vec![serial("id"), text("city", 90, 0.3, 4, 12)]),
            tbl(
                "athlete",
                1800,
                vec![
                    serial("id"),
                    fk("franchise_id", "franchise", 0.8),
                    float_u("height", 170.0, 225.0),
                    int_u("draft_year", 1970, 2022),
                ],
            ),
            tbl(
                "game_stat",
                14000,
                vec![
                    serial("id"),
                    fk("athlete_id", "athlete", 1.0),
                    int_u("points", 0, 60),
                    corr("minutes", "points", 0.55, 0.12),
                    int_u("rebounds", 0, 25),
                    int_u("assists", 0, 20),
                ],
            ),
        ],
        "carc" => vec![
            tbl(
                "compound",
                500,
                vec![
                    serial("id"),
                    text("formula", 500, 0.4, 5, 16),
                    float_u("mol_weight", 20.0, 900.0),
                ],
            ),
            tbl(
                "atom",
                7000,
                vec![
                    serial("id"),
                    fk("compound_id", "compound", 0.6),
                    text("element", 12, 1.1, 1, 2),
                    float_u("charge", -2.0, 2.0),
                ],
            ),
            tbl(
                "bond",
                10000,
                vec![
                    serial("id"),
                    fk("atom_id", "atom", 0.7),
                    int_u("bond_type", 1, 3),
                    boolean("aromatic", 0.3),
                ],
            ),
        ],
        "consumer" => vec![
            tbl(
                "household",
                1600,
                vec![serial("id"), int_u("size", 1, 8), float_n("income", 58000.0, 21000.0)],
            ),
            tbl(
                "product",
                800,
                vec![
                    serial("id"),
                    text("category", 60, 1.0, 4, 12),
                    float_u("unit_price", 0.5, 240.0),
                ],
            ),
            tbl(
                "purchase",
                15000,
                vec![
                    serial("id"),
                    fk("household_id", "household", 0.9),
                    fk("product_id", "product", 1.2),
                    int_u("quantity", 1, 12),
                    corr("total", "quantity", 18.0, 0.15),
                ],
            ),
        ],
        "credit" => vec![
            tbl(
                "customer",
                2400,
                vec![
                    serial("id"),
                    int_u("age", 18, 90),
                    float_n("income", 52000.0, 18000.0),
                    corr("limit", "income", 0.35, 0.06),
                ],
            ),
            tbl(
                "card",
                4200,
                vec![
                    serial("id"),
                    fk("customer_id", "customer", 0.8),
                    int_u("open_year", 2000, 2024),
                    boolean("gold", 0.2),
                ],
            ),
            tbl(
                "txn",
                18000,
                vec![
                    serial("id"),
                    fk("card_id", "card", 1.2),
                    float_n("amount", 84.0, 60.0),
                    int_z("merchant_cat", 40, 1.1),
                    boolean("disputed", 0.02),
                ],
            ),
        ],
        "employee" => vec![
            tbl("dept", 60, vec![serial("id"), text("name", 60, 0.2, 4, 14)]),
            tbl(
                "emp",
                4000,
                vec![
                    serial("id"),
                    fk("dept_id", "dept", 1.0),
                    int_u("hire_year", 1985, 2024),
                    float_n("salary", 61000.0, 17000.0),
                    corr("bonus", "salary", 0.08, 0.1).nulls(0.08),
                ],
            ),
            tbl(
                "assignment",
                9000,
                vec![
                    serial("id"),
                    fk("emp_id", "emp", 0.9),
                    int_u("hours", 1, 40),
                    text("role", 30, 0.9, 3, 10),
                ],
            ),
        ],
        "fhnk" => vec![
            tbl("hospital", 90, vec![serial("id"), text("name", 90, 0.2, 6, 16)]),
            tbl(
                "patient",
                3200,
                vec![
                    serial("id"),
                    fk("hospital_id", "hospital", 1.2),
                    int_u("age", 0, 99),
                    boolean("chronic", 0.22),
                ],
            ),
            tbl(
                "stay",
                11000,
                vec![
                    serial("id"),
                    fk("patient_id", "patient", 1.0),
                    int_u("days", 1, 60),
                    corr("cost", "days", 740.0, 0.1),
                    int_z("ward", 14, 0.8),
                ],
            ),
            tbl(
                "procedure_rec",
                14000,
                vec![
                    serial("id"),
                    fk("stay_id", "stay", 0.8),
                    int_z("proc_code", 160, 1.3),
                    float_u("duration", 0.2, 8.0),
                ],
            ),
        ],
        "financial" => vec![
            tbl("branch", 80, vec![serial("id"), text("district", 80, 0.3, 4, 12)]),
            tbl(
                "account",
                3000,
                vec![
                    serial("id"),
                    fk("branch_id", "branch", 0.9),
                    int_u("open_year", 1993, 2024),
                    float_n("balance", 9400.0, 5200.0),
                ],
            ),
            tbl(
                "loan",
                2600,
                vec![
                    serial("id"),
                    fk("account_id", "account", 0.4),
                    float_u("amount", 500.0, 90000.0),
                    corr("payments", "amount", 0.021, 0.04),
                    int_u("months", 6, 120),
                ],
            ),
            tbl(
                "trans",
                17000,
                vec![
                    serial("id"),
                    fk("account_id", "account", 1.3),
                    float_n("amount", 410.0, 380.0),
                    int_z("k_symbol", 9, 0.9),
                ],
            ),
        ],
        "geneea" => vec![
            tbl(
                "politician",
                700,
                vec![serial("id"), text("party", 24, 1.0, 3, 9), int_u("born", 1940, 1992)],
            ),
            tbl(
                "session",
                260,
                vec![serial("id"), int_u("year", 2013, 2024), int_u("length_min", 30, 600)],
            ),
            tbl(
                "vote",
                16000,
                vec![
                    serial("id"),
                    fk("politician_id", "politician", 0.9),
                    fk("session_id", "session", 0.9),
                    int_u("choice", 0, 3),
                    boolean("present", 0.88),
                ],
            ),
        ],
        // Held-out dataset of the ablation study (Figure 7).
        "genome" => vec![
            tbl("chromosome", 48, vec![serial("id"), int_u("length_mb", 40, 250)]),
            tbl(
                "gene",
                5200,
                vec![
                    serial("id"),
                    fk("chromosome_id", "chromosome", 0.8),
                    int_u("start_pos", 0, 240_000),
                    corr("end_pos", "start_pos", 1.0, 0.001),
                    float_u("gc_content", 0.3, 0.7),
                ],
            ),
            tbl(
                "expression",
                15000,
                vec![
                    serial("id"),
                    fk("gene_id", "gene", 1.1),
                    float_n("level", 4.2, 2.1),
                    int_z("tissue", 30, 1.0),
                ],
            ),
            tbl(
                "variant",
                12000,
                vec![
                    serial("id"),
                    fk("gene_id", "gene", 1.5),
                    int_u("position", 0, 240_000),
                    text("allele", 4, 0.4, 1, 1),
                ],
            ),
        ],
        "hepatitis" => vec![
            tbl("patient_h", 1200, vec![serial("id"), int_u("age", 10, 85), boolean("sex", 0.5)]),
            tbl(
                "biopsy",
                2600,
                vec![
                    serial("id"),
                    fk("patient_id", "patient_h", 0.6),
                    int_u("fibros", 0, 4),
                    corr("activity", "fibros", 0.8, 0.2),
                ],
            ),
            tbl(
                "lab",
                14000,
                vec![
                    serial("id"),
                    fk("patient_id", "patient_h", 1.0),
                    float_u("got", 10.0, 400.0),
                    corr("gpt", "got", 1.1, 0.08),
                    float_u("alb", 2.0, 5.5).nulls(0.05),
                ],
            ),
        ],
        // The running example of Figure 1 uses IMDB's movie_keyword / title /
        // movie_info_idx tables; keep those names so the motivating example
        // reads like the paper.
        "imdb" => vec![
            tbl(
                "title",
                8000,
                vec![
                    serial("id"),
                    text("name", 8000, 0.9, 6, 24),
                    int_u("production_year", 1930, 2024),
                    int_z("kind_id", 7, 0.8),
                    text("series_years", 70, 1.1, 4, 9),
                ],
            ),
            tbl(
                "movie_keyword",
                26000,
                vec![serial("id"), fk("movie_id", "title", 1.3), int_z("keyword_id", 3000, 1.2)],
            ),
            tbl(
                "movie_info_idx",
                10000,
                vec![
                    serial("id"),
                    fk("movie_id", "title", 1.0),
                    int_z("info_type_id", 24, 0.9),
                    float_u("info", 1.0, 10.0),
                ],
            ),
            tbl(
                "cast_info",
                30000,
                vec![
                    serial("id"),
                    fk("movie_id", "title", 1.5),
                    int_z("role_id", 11, 1.0),
                    int_u("nr_order", 0, 60),
                ],
            ),
        ],
        "movielens" => vec![
            tbl(
                "movie",
                3600,
                vec![serial("id"), int_u("year", 1930, 2024), int_z("genre", 18, 0.9)],
            ),
            tbl(
                "user_ml",
                2400,
                vec![serial("id"), int_u("age", 14, 80), int_z("occupation", 20, 0.8)],
            ),
            tbl(
                "rating",
                24000,
                vec![
                    serial("id"),
                    fk("movie_id", "movie", 1.5),
                    fk("user_id", "user_ml", 1.1),
                    int_u("stars", 1, 5),
                    int_u("ts", 0, 1_000_000),
                ],
            ),
            tbl(
                "tag",
                9000,
                vec![serial("id"), fk("movie_id", "movie", 1.7), text("label", 400, 1.2, 3, 12)],
            ),
        ],
        "seznam" => vec![
            tbl("client", 2200, vec![serial("id"), int_z("region", 14, 0.7)]),
            tbl(
                "campaign",
                5200,
                vec![
                    serial("id"),
                    fk("client_id", "client", 1.2),
                    float_u("budget", 100.0, 60000.0),
                ],
            ),
            tbl(
                "impression",
                22000,
                vec![
                    serial("id"),
                    fk("campaign_id", "campaign", 1.4),
                    int_u("clicks", 0, 900),
                    corr("cost", "clicks", 2.4, 0.1),
                ],
            ),
        ],
        "ssb" => vec![
            tbl(
                "supplier_s",
                400,
                vec![serial("id"), text("region", 5, 0.3, 4, 10), text("nation", 25, 0.5, 4, 12)],
            ),
            tbl(
                "customer_s",
                1200,
                vec![serial("id"), text("region", 5, 0.3, 4, 10), int_z("segment", 5, 0.4)],
            ),
            tbl(
                "part_s",
                1600,
                vec![serial("id"), text("brand", 50, 0.6, 5, 9), int_u("size", 1, 50)],
            ),
            tbl(
                "lineorder",
                26000,
                vec![
                    serial("id"),
                    fk("cust_id", "customer_s", 0.8),
                    fk("part_id", "part_s", 0.9),
                    fk("supp_id", "supplier_s", 0.7),
                    int_u("quantity", 1, 50),
                    float_u("extendedprice", 90.0, 10_000.0),
                    corr("revenue", "extendedprice", 0.95, 0.02),
                    int_u("discount", 0, 10),
                ],
            ),
        ],
        "tournament" => vec![
            tbl("club", 150, vec![serial("id"), text("country", 40, 0.8, 4, 12)]),
            tbl(
                "match_t",
                8000,
                vec![
                    serial("id"),
                    fk("home_id", "club", 1.0),
                    fk("away_id", "club", 1.0),
                    int_u("home_goals", 0, 8),
                    int_u("away_goals", 0, 8),
                ],
            ),
            tbl(
                "event_t",
                16000,
                vec![
                    serial("id"),
                    fk("match_id", "match_t", 1.1),
                    int_u("minute", 0, 95),
                    int_z("kind", 9, 1.0),
                ],
            ),
        ],
        "tpc_h" => vec![
            tbl("nation_t", 25, vec![serial("id"), text("name", 25, 0.2, 4, 12)]),
            tbl(
                "supplier_t",
                500,
                vec![
                    serial("id"),
                    fk("nation_id", "nation_t", 0.4),
                    float_u("acctbal", -900.0, 9900.0),
                ],
            ),
            tbl(
                "customer_t",
                2000,
                vec![
                    serial("id"),
                    fk("nation_id", "nation_t", 0.5),
                    float_u("acctbal", -900.0, 9900.0),
                    int_z("mktsegment", 5, 0.3),
                ],
            ),
            tbl(
                "orders_t",
                10000,
                vec![
                    serial("id"),
                    fk("cust_id", "customer_t", 1.0),
                    float_u("totalprice", 900.0, 350_000.0),
                    int_u("orderyear", 1992, 1998),
                    int_z("priority", 5, 0.5),
                ],
            ),
            tbl(
                "lineitem_t",
                30000,
                vec![
                    serial("id"),
                    fk("order_id", "orders_t", 0.9),
                    fk("supp_id", "supplier_t", 0.8),
                    int_u("quantity", 1, 50),
                    float_u("price", 900.0, 95_000.0),
                    corr("disc_price", "price", 0.95, 0.02),
                    int_u("shipdelay", 1, 120),
                ],
            ),
        ],
        "walmart" => vec![
            tbl(
                "store",
                180,
                vec![serial("id"), int_z("store_type", 3, 0.4), int_u("sqft", 30_000, 220_000)],
            ),
            tbl("dept_w", 420, vec![serial("id"), text("name", 90, 0.7, 4, 14)]),
            tbl(
                "sales",
                24000,
                vec![
                    serial("id"),
                    fk("store_id", "store", 0.9),
                    fk("dept_id", "dept_w", 1.1),
                    float_n("weekly_sales", 16_000.0, 9000.0),
                    boolean("holiday", 0.07),
                    corr("markdown", "weekly_sales", 0.05, 0.2).nulls(0.1),
                ],
            ),
        ],
        other => panic!("unknown dataset name: {other}"),
    };
    SchemaSpec { name: name.to_string(), tables }
}

/// All 20 schemas in Figure 5 order.
pub fn all_schemas() -> Vec<SchemaSpec> {
    DATASET_NAMES.iter().map(|n| schema(n)).collect()
}

/// Generate a database from a schema at the given scale.
///
/// `scale` multiplies every table's `base_rows`; `seed` makes the result
/// fully deterministic. Tables are generated in spec order, so FK parents
/// must appear before children (all built-in schemas satisfy this).
pub fn generate(spec: &SchemaSpec, scale: f64, seed: u64) -> Database {
    let mut rng = Rng::seed(seed ^ 0x6772_6163); // "grac"
    let word_pool = WordPool::new(&mut rng.fork(0xF00D));
    let mut tables: Vec<Table> = Vec::with_capacity(spec.tables.len());
    for tspec in &spec.tables {
        let rows = ((tspec.base_rows as f64 * scale) as usize).max(16);
        let mut trng = rng.fork(fxhash(&tspec.name));
        let table = generate_table(tspec, rows, &tables, &word_pool, &mut trng);
        tables.push(table);
    }
    Database::new(spec.name.clone(), tables)
}

fn generate_table(
    spec: &TableSpec,
    rows: usize,
    parents: &[Table],
    words: &WordPool,
    rng: &mut Rng,
) -> Table {
    let mut columns: Vec<Column> = Vec::with_capacity(spec.columns.len());
    for cspec in &spec.columns {
        let mut crng = rng.fork(fxhash(&cspec.name));
        let data = match &cspec.gen {
            ColGen::Serial => ColumnData::Int((0..rows as i64).collect()),
            ColGen::Fk { table, skew } => {
                let parent = parents
                    .iter()
                    .find(|t| &t.name == table)
                    .unwrap_or_else(|| panic!("FK parent {table} must be generated first"));
                let n = parent.num_rows().max(1);
                let cdf = zipf_cdf(n, *skew);
                // Shuffle rank->pk mapping so the skew does not always favour
                // low PKs (which would correlate with other serial columns).
                let mut perm: Vec<i64> = (0..n as i64).collect();
                crng.shuffle(&mut perm);
                ColumnData::Int((0..rows).map(|_| perm[sample_cdf(&mut crng, &cdf)]).collect())
            }
            ColGen::IntUniform { lo, hi } => {
                ColumnData::Int((0..rows).map(|_| crng.range(*lo..=*hi)).collect())
            }
            ColGen::IntZipf { domain, skew } => {
                let cdf = zipf_cdf((*domain).max(1), *skew);
                ColumnData::Int((0..rows).map(|_| sample_cdf(&mut crng, &cdf) as i64).collect())
            }
            ColGen::FloatUniform { lo, hi } => {
                ColumnData::Float((0..rows).map(|_| crng.range(*lo..*hi)).collect())
            }
            ColGen::FloatNormal { mean, std } => ColumnData::Float(
                (0..rows)
                    .map(|_| crng.normal(*mean, *std).clamp(mean - 6.0 * std, mean + 6.0 * std))
                    .collect(),
            ),
            ColGen::Text { domain, skew, min_len, max_len } => {
                let pool = words.strings(*domain, *min_len, *max_len, &mut crng.fork(7));
                let cdf = zipf_cdf(pool.len(), *skew);
                ColumnData::Text(
                    (0..rows).map(|_| pool[sample_cdf(&mut crng, &cdf)].clone()).collect(),
                )
            }
            ColGen::Bool { p } => ColumnData::Bool((0..rows).map(|_| crng.chance(*p)).collect()),
            ColGen::Correlated { source, factor, noise } => {
                let src = columns
                    .iter()
                    .find(|c| c.name == *source)
                    .unwrap_or_else(|| panic!("correlated source {source} must come first"));
                let (lo, hi) = numeric_range(src);
                let spread = (hi - lo).abs().max(1.0) * noise;
                let src_ty = src.data_type();
                let vals: Vec<f64> = (0..rows)
                    .map(|r| {
                        let base = src.get_f64(r).unwrap_or(0.0);
                        factor * base + crng.normal(0.0, spread)
                    })
                    .collect();
                if src_ty == DataType::Int {
                    ColumnData::Int(vals.into_iter().map(|v| v.round() as i64).collect())
                } else {
                    ColumnData::Float(vals)
                }
            }
        };
        let nulls: Vec<bool> = if cspec.null_fraction > 0.0 {
            (0..rows).map(|_| crng.chance(cspec.null_fraction)).collect()
        } else {
            vec![false; rows]
        };
        columns.push(Column::with_nulls(cspec.name.clone(), data, nulls));
    }
    // Physical layout pass: compress what compresses (dictionary for
    // low-cardinality, RLE for clustered runs — values stay bit-exact, see
    // `ColumnData::encoded`) and attach zone maps for scan pruning. Done
    // after generation so correlated columns read their plain sources.
    for col in &mut columns {
        col.encode();
        col.compute_zones();
    }
    let mut table =
        Table::new(spec.name.clone(), columns).expect("generated columns are ragged-free");
    // First Serial column is the primary key; FKs registered from spec.
    for cspec in &spec.columns {
        match &cspec.gen {
            ColGen::Serial if table.primary_key.is_none() => {
                table.set_primary_key(&cspec.name).expect("pk exists");
            }
            ColGen::Fk { table: parent, .. } => {
                table.add_foreign_key(&cspec.name, parent, "id");
            }
            _ => {}
        }
    }
    table
}

fn numeric_range(col: &Column) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in 0..col.len() {
        if let Some(v) = col.get_f64(r) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, 1.0)
    }
}

/// Deterministic string hashing for salts (FxHash-style multiply-xor).
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// A pool of word-like tokens used to synthesise text columns.
struct WordPool {
    words: Vec<String>,
}

impl WordPool {
    fn new(rng: &mut Rng) -> Self {
        const SYLLABLES: [&str; 24] = [
            "ka", "ro", "mi", "ta", "ve", "lo", "si", "na", "du", "pe", "ri", "so", "ba", "ne",
            "gu", "la", "ti", "mo", "za", "fe", "hu", "ce", "wa", "dy",
        ];
        let mut words = Vec::with_capacity(600);
        for _ in 0..600 {
            let syls = rng.range(2..=4usize);
            let mut w = String::new();
            for _ in 0..syls {
                w.push_str(SYLLABLES[rng.range(0..SYLLABLES.len())]);
            }
            words.push(w);
        }
        WordPool { words }
    }

    /// Produce `domain` distinct strings with lengths in `[min_len, max_len]`.
    fn strings(&self, domain: usize, min_len: usize, max_len: usize, rng: &mut Rng) -> Vec<String> {
        let mut out = Vec::with_capacity(domain.max(1));
        for i in 0..domain.max(1) {
            let mut s = self.words[rng.range(0..self.words.len())].clone();
            while s.len() < min_len {
                s.push_str(&self.words[rng.range(0..self.words.len())]);
            }
            if s.len() > max_len.max(min_len) {
                s.truncate(max_len.max(min_len).max(1));
            }
            // Guarantee distinctness with a numeric suffix when needed.
            if i >= self.words.len() || domain > 200 {
                s.push_str(&format!("{i}"));
            }
            out.push(s);
        }
        out.sort();
        out.dedup();
        // Top up if dedup removed entries.
        let mut i = 0;
        while out.len() < domain {
            out.push(format!("tok{i}_{domain}"));
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_20_schemas_build() {
        let schemas = all_schemas();
        assert_eq!(schemas.len(), 20);
        for s in &schemas {
            assert!(s.tables.len() >= 3, "{} too small", s.name);
            // FK parents precede children.
            for (i, t) in s.tables.iter().enumerate() {
                for c in &t.columns {
                    if let ColGen::Fk { table, .. } = &c.gen {
                        let pos = s.tables.iter().position(|p| &p.name == table);
                        assert!(pos.is_some() && pos.unwrap() < i, "{}.{}", s.name, t.name);
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = schema("imdb");
        let a = generate(&spec, 0.05, 7);
        let b = generate(&spec, 0.05, 7);
        assert_eq!(a.total_rows(), b.total_rows());
        let ta = a.table("title").unwrap();
        let tb = b.table("title").unwrap();
        for r in 0..ta.num_rows().min(50) {
            assert_eq!(ta.column("name").unwrap().value(r), tb.column("name").unwrap().value(r));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = schema("imdb");
        let a = generate(&spec, 0.05, 7);
        let b = generate(&spec, 0.05, 8);
        let ca = a.table("title").unwrap().column("production_year").unwrap().value(0);
        let cb = b.table("title").unwrap().column("production_year").unwrap().value(0);
        // Extremely unlikely to collide on every early row.
        let mut any_diff = ca != cb;
        for r in 1..20 {
            any_diff |= a.table("title").unwrap().column("production_year").unwrap().value(r)
                != b.table("title").unwrap().column("production_year").unwrap().value(r);
        }
        assert!(any_diff);
    }

    #[test]
    fn fk_values_are_valid_parent_pks() {
        let db = generate(&schema("airline"), 0.05, 3);
        let flight = db.table("flight").unwrap();
        let carriers = db.table("carrier").unwrap().num_rows() as i64;
        let col = flight.column("carrier_id").unwrap();
        for r in 0..flight.num_rows() {
            let v = col.get_i64(r).unwrap();
            assert!(v >= 0 && v < carriers);
        }
    }

    #[test]
    fn correlated_columns_correlate() {
        let db = generate(&schema("airline"), 0.2, 5);
        let flight = db.table("flight").unwrap();
        let dep = flight.column("dep_delay").unwrap();
        let arr = flight.column("arr_delay").unwrap();
        let n = flight.num_rows();
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for r in 0..n {
            let x = dep.get_f64(r).unwrap();
            let y = arr.get_f64(r).unwrap();
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let nf = n as f64;
        let corr =
            (nf * sxy - sx * sy) / ((nf * sxx - sx * sx).sqrt() * (nf * syy - sy * sy).sqrt());
        assert!(corr > 0.9, "corr={corr}");
    }

    #[test]
    fn nulls_injected_at_requested_rate() {
        let db = generate(&schema("walmart"), 0.5, 9);
        let sales = db.table("sales").unwrap();
        let frac = sales.column("markdown").unwrap().null_fraction();
        assert!((frac - 0.1).abs() < 0.03, "frac={frac}");
    }

    #[test]
    fn zipf_fk_fanout_is_skewed() {
        let db = generate(&schema("airline"), 0.2, 4);
        let flight = db.table("flight").unwrap();
        let col = flight.column("carrier_id").unwrap();
        let mut counts = std::collections::HashMap::new();
        for r in 0..flight.num_rows() {
            *counts.entry(col.get_i64(r).unwrap()).or_insert(0usize) += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Heaviest carrier should have far more flights than the median one.
        let median = sorted[sorted.len() / 2];
        assert!(sorted[0] > median * 3, "max={} median={}", sorted[0], median);
    }

    #[test]
    fn stats_available_for_generated_db() {
        let db = generate(&schema("tpc_h"), 0.05, 2);
        let st = db.stats("lineitem_t").unwrap();
        let q = st.column("quantity").unwrap();
        assert!(q.histogram.is_some());
        assert!(q.min >= 1.0 && q.max <= 50.0);
    }
}
