//! The database catalog: a named set of tables plus computed statistics.

use crate::stats::TableStats;
use crate::table::Table;
use graceful_common::{GracefulError, Result};

/// An in-memory database with lazily computed statistics.
#[derive(Debug, Clone)]
pub struct Database {
    pub name: String,
    tables: Vec<Table>,
    stats: Vec<TableStats>,
}

impl Database {
    /// Build a database and compute statistics for every table.
    ///
    /// Statistics are computed eagerly at load time — the same moment a real
    /// system would run `ANALYZE` — so the cardinality estimators in
    /// `graceful-card` can treat them as always available.
    pub fn new(name: impl Into<String>, tables: Vec<Table>) -> Self {
        let stats = tables.iter().map(TableStats::compute).collect();
        Database { name: name.into(), tables, stats }
    }

    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| GracefulError::Unresolved(format!("table {name}")))
    }

    pub fn table_index(&self, name: &str) -> Option<usize> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Statistics for a table (same order as [`Database::tables`]).
    pub fn stats(&self, table: &str) -> Result<&TableStats> {
        let idx = self
            .table_index(table)
            .ok_or_else(|| GracefulError::Unresolved(format!("table {table}")))?;
        Ok(&self.stats[idx])
    }

    /// Mutate a table in place and recompute its statistics afterwards.
    ///
    /// Used by the benchmark's data-adaptation step (Section V): after a UDF
    /// is generated, its input columns may get NULLs replaced or ranges
    /// clamped; statistics must stay consistent with the data. Zone maps are
    /// derived state in the same sense, so any column that carried them gets
    /// them recomputed here too — stale zones would make scan pruning
    /// unsound.
    pub fn update_table<F>(&mut self, name: &str, f: F) -> Result<()>
    where
        F: FnOnce(&mut Table) -> Result<()>,
    {
        let idx = self
            .table_index(name)
            .ok_or_else(|| GracefulError::Unresolved(format!("table {name}")))?;
        f(&mut self.tables[idx])?;
        for col in self.tables[idx].columns_mut() {
            if col.zones().is_some() {
                col.compute_zones();
            }
        }
        self.stats[idx] = TableStats::compute(&self.tables[idx]);
        Ok(())
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.num_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, ColumnData};
    use crate::types::Value;

    fn db() -> Database {
        let t = Table::new("a", vec![Column::new("x", ColumnData::Int(vec![1, 2, 3]))]).unwrap();
        Database::new("testdb", vec![t])
    }

    #[test]
    fn lookup_and_stats() {
        let d = db();
        assert_eq!(d.table("a").unwrap().num_rows(), 3);
        assert!(d.table("b").is_err());
        let st = d.stats("a").unwrap();
        assert_eq!(st.num_rows, 3);
        assert_eq!(d.total_rows(), 3);
    }

    #[test]
    fn update_recomputes_stats() {
        let mut d = db();
        let before = d.stats("a").unwrap().column("x").unwrap().max;
        d.update_table("a", |t| {
            if let ColumnData::Int(v) = &mut t.column_mut("x")?.data {
                v[0] = 1000;
            }
            Ok(())
        })
        .unwrap();
        let after = d.stats("a").unwrap().column("x").unwrap().max;
        assert!(after > before);
        // The data itself changed too.
        assert_eq!(d.table("a").unwrap().column("x").unwrap().value(0), Value::Int(1000));
    }
}
