//! Tables: named collections of equal-length columns plus key metadata.

use crate::column::Column;
use crate::types::DataType;
use graceful_common::{GracefulError, Result};

/// Foreign-key edge used by the query generator and the join-order logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (the parent's primary key).
    pub ref_column: String,
}

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    columns: Vec<Column>,
    /// Index of the primary-key column, if any.
    pub primary_key: Option<usize>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl Table {
    /// Build a table, validating that all columns share one length.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let name = name.into();
        if let Some(first) = columns.first() {
            let n = first.len();
            if let Some(bad) = columns.iter().find(|c| c.len() != n) {
                return Err(GracefulError::InvalidPlan(format!(
                    "table {name}: column {} has {} rows, expected {n}",
                    bad.name,
                    bad.len()
                )));
            }
        }
        Ok(Table { name, columns, primary_key: None, foreign_keys: Vec::new() })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| GracefulError::Unresolved(format!("column {}.{name}", self.name)))
    }

    /// Mutable column by name.
    pub fn column_mut(&mut self, name: &str) -> Result<&mut Column> {
        let table = self.name.clone();
        self.columns
            .iter_mut()
            .find(|c| c.name == name)
            .ok_or_else(|| GracefulError::Unresolved(format!("column {table}.{name}")))
    }

    /// Column by position.
    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Data type of a named column.
    pub fn column_type(&self, name: &str) -> Result<DataType> {
        Ok(self.column(name)?.data_type())
    }

    /// Typed view of a named column: the dense data storage plus the null
    /// bitmap. The engine's columnar UDF path uses this to check type
    /// eligibility and gather unboxed batches without materializing `Value`s.
    pub fn column_typed(&self, name: &str) -> Result<(&crate::column::ColumnData, &[bool])> {
        let c = self.column(name)?;
        Ok((&c.data, &c.nulls))
    }

    /// Mark the primary key column (must exist).
    pub fn set_primary_key(&mut self, column: &str) -> Result<()> {
        let idx = self
            .column_index(column)
            .ok_or_else(|| GracefulError::Unresolved(format!("pk column {column}")))?;
        self.primary_key = Some(idx);
        Ok(())
    }

    /// Register a foreign key (referential integrity is the generator's job).
    pub fn add_foreign_key(&mut self, column: &str, ref_table: &str, ref_column: &str) {
        self.foreign_keys.push(ForeignKey {
            column: column.to_string(),
            ref_table: ref_table.to_string(),
            ref_column: ref_column.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            vec![
                Column::new("id", ColumnData::Int(vec![0, 1, 2])),
                Column::new("v", ColumnData::Float(vec![0.5, 1.5, 2.5])),
            ],
        )
        .unwrap();
        t.set_primary_key("id").unwrap();
        t
    }

    #[test]
    fn basic_lookup() {
        let t = table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 2);
        assert_eq!(t.column_index("v"), Some(1));
        assert_eq!(t.column_type("v").unwrap(), DataType::Float);
        assert_eq!(t.primary_key, Some(0));
    }

    #[test]
    fn ragged_columns_rejected() {
        let err = Table::new(
            "bad",
            vec![
                Column::new("a", ColumnData::Int(vec![1, 2])),
                Column::new("b", ColumnData::Int(vec![1])),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn missing_column_error() {
        let t = table();
        assert!(t.column("nope").is_err());
        let mut t2 = table();
        assert!(t2.set_primary_key("nope").is_err());
        assert!(t2.column_mut("nope").is_err());
    }

    #[test]
    fn foreign_keys_registered() {
        let mut t = table();
        t.add_foreign_key("id", "parent", "pid");
        assert_eq!(
            t.foreign_keys[0],
            ForeignKey {
                column: "id".into(),
                ref_table: "parent".into(),
                ref_column: "pid".into()
            }
        );
    }
}
