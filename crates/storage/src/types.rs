//! The value/type system shared by the storage engine and the UDF language.
//!
//! The paper's scope is scalar Python UDFs over relational data, so the type
//! lattice is deliberately small: 64-bit integers, 64-bit floats, UTF-8
//! strings and booleans, plus SQL `NULL`. The UDF interpreter reuses
//! [`Value`] directly, which keeps invocation/return conversion costs
//! explicit and measurable (they are featurized via the `INV`/`RET` nodes).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column / UDF argument data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl DataType {
    /// Stable index used for one-hot featurization (Table I `in_dts`).
    pub fn index(self) -> usize {
        match self {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
        }
    }

    /// Number of distinct data types (one-hot width).
    pub const COUNT: usize = 4;

    /// True for `Int` and `Float`.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single scalar value, including SQL `NULL`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    /// The value's data type, or `None` for `NULL`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for NULL/Text.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view; floats truncate.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view for `Text` values only.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness following Python semantics (used by UDF branch conditions):
    /// `NULL`/0/empty-string are false, everything else true.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Text(s) => !s.is_empty(),
            Value::Bool(b) => *b,
        }
    }

    /// SQL-style three-valued comparison; `None` when either side is NULL or
    /// the types are incomparable.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn data_type_index_is_dense() {
        let all = [DataType::Int, DataType::Float, DataType::Text, DataType::Bool];
        let mut seen = [false; DataType::COUNT];
        for dt in all {
            seen[dt.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn value_casts() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), Some(2));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(
            Value::Text("abc".into()).compare(&Value::Text("abd".into())),
            Some(Ordering::Less)
        );
        // Text vs numeric is incomparable.
        assert_eq!(Value::Text("1".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn truthiness_follows_python() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Text(String::new()).truthy());
        assert!(Value::Float(0.1).truthy());
        assert!(Value::Text("x".into()).truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("hi".into()).to_string(), "'hi'");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }
}
