//! Null-aware typed columns with optional compressed encodings.
//!
//! Columns store their data in dense typed vectors plus a separate null
//! bitmap (a `Vec<bool>`; simplicity over bit-packing at this scale). The
//! executor and the UDF interpreter access values through the cheap typed
//! accessors (`get_f64`, `get_str`, ...) so the hot row-by-row UDF loop never
//! allocates.
//!
//! # Encodings
//!
//! Two compressed representations live behind the same accessors:
//!
//! * **Dictionary** ([`ColumnData::DictInt`]/[`ColumnData::DictText`]) for
//!   low-cardinality columns: per-row `u32` codes into a distinct-value
//!   dictionary ordered by first occurrence, so a 3-million-row
//!   `mktsegment` column stores 4 bytes per row instead of a `String`.
//! * **Run-length** ([`ColumnData::RleInt`]) for sorted/clustered integer
//!   runs: `(start_row, value)` pairs with binary-searched random access.
//!
//! [`ColumnData::encoded`] picks the smallest representation (with a safety
//! margin — it never encodes unless the footprint drops below 75% of plain)
//! and [`ColumnData::to_plain`] decodes back; the round trip is bit-exact,
//! including values stored under NULL positions. Encoding is a *physical*
//! choice: `value()`, `get_f64`, `get_i64`, `get_str` and `DataType` behave
//! identically on every representation, so predicates, join keys and the
//! tree-walking/VM UDF backends never notice. The columnar SIMD gather path
//! decodes straight into its unboxed morsel lanes
//! (`graceful_udf::TypedCol::fill_from_column`) without `Value` boxing.
//!
//! # Zone maps
//!
//! [`Column::compute_zones`] attaches per-block min/max summaries
//! ([`Zone`], [`ZONE_ROWS`] rows per block) that the executor uses to skip
//! whole morsels whose rows provably cannot satisfy a predicate. Zone
//! min/max are widened to `f64` exactly as `Value::compare` widens both
//! sides, and are computed over *matchable* rows only (non-NULL, non-NaN —
//! rows that can never satisfy a comparison are irrelevant to pruning), so
//! a prune decision is conservative by construction. Mutation invalidates
//! derived state: [`Column::replace_nulls`] recomputes zones itself and
//! `Database::update_table` recomputes them after arbitrary edits.

use crate::types::{DataType, Value};

/// Rows per zone-map block. A storage property, deliberately independent of
/// the executor's configurable morsel size: a morsel is prunable when every
/// zone overlapping it is.
pub const ZONE_ROWS: usize = 1024;

/// Largest dictionary [`ColumnData::encoded`] will build; columns with more
/// distinct values stay plain (or RLE).
pub const MAX_DICT: usize = 1 << 16;

/// Per-block min/max summary used for scan pruning.
///
/// `min`/`max` cover the block's *matchable* rows — non-NULL and non-NaN —
/// widened to `f64` with the same conversion `Value::compare` applies to
/// both comparison sides (`i64 as f64` is monotone, so the min/max of the
/// widened values are the widened min/max). NULL and NaN rows never satisfy
/// any predicate, so they cannot make pruning unsound; they only matter
/// through `any_matchable`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zone {
    /// Minimum over matchable rows (meaningless when `!any_matchable`).
    pub min: f64,
    /// Maximum over matchable rows (meaningless when `!any_matchable`).
    pub max: f64,
    /// Whether any row in the block is NULL.
    pub null_any: bool,
    /// Whether the block holds at least one non-NULL, non-NaN row. When
    /// `false` the whole block is unmatchable for every predicate.
    pub any_matchable: bool,
}

/// Typed backing storage of a column: a plain dense vector per type, plus
/// the compressed representations (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
    Bool(Vec<bool>),
    /// Dictionary-encoded integers: row `r` holds `dict[codes[r]]`.
    DictInt {
        codes: Vec<u32>,
        dict: Vec<i64>,
    },
    /// Dictionary-encoded strings: row `r` holds `dict[codes[r]]`.
    DictText {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
    /// Run-length-encoded integers: run `i` covers rows
    /// `starts[i]..starts[i+1]` (the last run ends at `len`) and every row
    /// in it holds `values[i]`. `starts` is strictly increasing and begins
    /// at 0; random access is a binary search.
    RleInt {
        starts: Vec<u32>,
        values: Vec<i64>,
        len: usize,
    },
}

/// Index of the RLE run containing `row`.
#[inline]
fn rle_run(starts: &[u32], row: usize) -> usize {
    starts.partition_point(|&s| s as usize <= row) - 1
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::DictInt { codes, .. } => codes.len(),
            ColumnData::DictText { codes, .. } => codes.len(),
            ColumnData::RleInt { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) | ColumnData::DictInt { .. } | ColumnData::RleInt { .. } => {
                DataType::Int
            }
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text(_) | ColumnData::DictText { .. } => DataType::Text,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// True for the compressed representations.
    pub fn is_encoded(&self) -> bool {
        matches!(
            self,
            ColumnData::DictInt { .. } | ColumnData::DictText { .. } | ColumnData::RleInt { .. }
        )
    }

    /// `i64` at `row` for integer-typed representations (plain, dict, RLE);
    /// `None` for other types. Ignores nulls — callers check the bitmap.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            ColumnData::Int(v) => Some(v[row]),
            ColumnData::DictInt { codes, dict } => Some(dict[codes[row] as usize]),
            ColumnData::RleInt { starts, values, .. } => Some(values[rle_run(starts, row)]),
            _ => None,
        }
    }

    /// `&str` at `row` for text-typed representations; `None` otherwise.
    /// Ignores nulls — callers check the bitmap.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            ColumnData::Text(v) => Some(&v[row]),
            ColumnData::DictText { codes, dict } => Some(&dict[codes[row] as usize]),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes of this representation (data
    /// vectors and string heads/bytes; excludes the null bitmap, which is
    /// identical across representations).
    pub fn heap_bytes(&self) -> usize {
        const STRING_HEAD: usize = std::mem::size_of::<String>();
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Bool(v) => v.len(),
            ColumnData::Text(v) => v.iter().map(|s| STRING_HEAD + s.len()).sum(),
            ColumnData::DictInt { codes, dict } => codes.len() * 4 + dict.len() * 8,
            ColumnData::DictText { codes, dict } => {
                codes.len() * 4 + dict.iter().map(|s| STRING_HEAD + s.len()).sum::<usize>()
            }
            ColumnData::RleInt { starts, values, .. } => starts.len() * 4 + values.len() * 8,
        }
    }

    /// Heap footprint the *plain* representation of the same values would
    /// take — the baseline `heap_bytes` is compared against.
    pub fn plain_bytes(&self) -> usize {
        const STRING_HEAD: usize = std::mem::size_of::<String>();
        match self {
            ColumnData::DictInt { codes, .. } => codes.len() * 8,
            ColumnData::DictText { codes, dict } => {
                codes.iter().map(|&c| STRING_HEAD + dict[c as usize].len()).sum()
            }
            ColumnData::RleInt { len, .. } => len * 8,
            plain => plain.heap_bytes(),
        }
    }

    /// Decode to the plain dense representation (identity for plain data).
    /// The round trip through [`ColumnData::encoded`] is bit-exact,
    /// including values stored under NULL positions.
    pub fn to_plain(&self) -> ColumnData {
        match self {
            ColumnData::DictInt { codes, dict } => {
                ColumnData::Int(codes.iter().map(|&c| dict[c as usize]).collect())
            }
            ColumnData::DictText { codes, dict } => {
                ColumnData::Text(codes.iter().map(|&c| dict[c as usize].clone()).collect())
            }
            ColumnData::RleInt { starts, values, len } => {
                let mut out = Vec::with_capacity(*len);
                for (i, &v) in values.iter().enumerate() {
                    let end = starts.get(i + 1).map(|&s| s as usize).unwrap_or(*len);
                    out.resize(end, v);
                }
                ColumnData::Int(out)
            }
            plain => plain.clone(),
        }
    }

    /// Pick the smallest representation for these values: RLE when the data
    /// is sorted/clustered into few runs, a dictionary when the distinct
    /// count is low (at most [`MAX_DICT`]), plain otherwise. Encoding only
    /// happens when it saves at least 25% of the plain footprint — a
    /// near-breakeven dictionary is not worth the indirection. Values are
    /// preserved bit-exactly (see [`ColumnData::to_plain`]).
    pub fn encoded(&self) -> ColumnData {
        match self {
            ColumnData::Int(v) => {
                if v.is_empty() {
                    return self.clone();
                }
                let plain = v.len() * 8;
                // One pass: run boundaries and (capped) distinct values in
                // first-occurrence order.
                let mut starts: Vec<u32> = vec![0];
                let mut run_values: Vec<i64> = vec![v[0]];
                for (i, w) in v.windows(2).enumerate() {
                    if w[1] != w[0] {
                        starts.push((i + 1) as u32);
                        run_values.push(w[1]);
                    }
                }
                let rle_bytes = starts.len() * 4 + run_values.len() * 8;
                let mut dict: Vec<i64> = Vec::new();
                let mut index = std::collections::HashMap::new();
                for &x in v {
                    if index.len() > MAX_DICT {
                        break;
                    }
                    index.entry(x).or_insert_with(|| {
                        dict.push(x);
                        (dict.len() - 1) as u32
                    });
                }
                let dict_bytes =
                    if dict.len() <= MAX_DICT { Some(v.len() * 4 + dict.len() * 8) } else { None };
                let budget = plain - plain / 4;
                let rle_wins =
                    rle_bytes <= budget && dict_bytes.map(|d| rle_bytes <= d).unwrap_or(true);
                if rle_wins {
                    ColumnData::RleInt { starts, values: run_values, len: v.len() }
                } else if dict_bytes.map(|d| d <= budget).unwrap_or(false) {
                    let codes = v.iter().map(|x| index[x]).collect();
                    ColumnData::DictInt { codes, dict }
                } else {
                    self.clone()
                }
            }
            ColumnData::Text(v) => {
                if v.is_empty() {
                    return self.clone();
                }
                const STRING_HEAD: usize = std::mem::size_of::<String>();
                let plain: usize = v.iter().map(|s| STRING_HEAD + s.len()).sum();
                let mut dict: Vec<String> = Vec::new();
                let mut index: std::collections::HashMap<&str, u32> =
                    std::collections::HashMap::new();
                for s in v {
                    if index.len() > MAX_DICT {
                        return self.clone();
                    }
                    index.entry(s.as_str()).or_insert_with(|| {
                        dict.push(s.clone());
                        (dict.len() - 1) as u32
                    });
                }
                let dict_bytes =
                    v.len() * 4 + dict.iter().map(|s| STRING_HEAD + s.len()).sum::<usize>();
                if dict_bytes <= plain - plain / 4 {
                    let codes = v.iter().map(|s| index[s.as_str()]).collect();
                    ColumnData::DictText { codes, dict }
                } else {
                    self.clone()
                }
            }
            // Floats and bools stay plain; already-encoded data keeps its
            // representation.
            other => other.clone(),
        }
    }
}

/// A named, nullable, typed column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data: ColumnData,
    /// `true` marks a NULL at that row. Always the same length as `data`.
    pub nulls: Vec<bool>,
    /// Per-block min/max summaries for scan pruning; `None` when not
    /// computed (or not computable — text columns have no zones). Derived
    /// state, excluded from equality; recomputed by the sanctioned mutation
    /// paths (`replace_nulls`, `Database::update_table`).
    zones: Option<Vec<Zone>>,
}

/// Equality over logical identity (name, representation, nulls) — the
/// derived zone maps are excluded so computing them never makes a column
/// "different".
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.data == other.data && self.nulls == other.nulls
    }
}

impl Column {
    /// Build a column without NULLs.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        let nulls = vec![false; data.len()];
        Column { name: name.into(), data, nulls, zones: None }
    }

    /// Build a column with an explicit null bitmap.
    ///
    /// # Panics
    /// Panics if the bitmap length differs from the data length.
    pub fn with_nulls(name: impl Into<String>, data: ColumnData, nulls: Vec<bool>) -> Self {
        assert_eq!(data.len(), nulls.len(), "null bitmap length mismatch");
        Column { name: name.into(), data, nulls, zones: None }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn is_null(&self, row: usize) -> bool {
        self.nulls[row]
    }

    /// Owned value at `row` (allocates for Text; prefer typed accessors in
    /// hot paths).
    pub fn value(&self, row: usize) -> Value {
        if self.nulls[row] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row]),
            data => match data.data_type() {
                DataType::Int => Value::Int(data.int_at(row).expect("int representation")),
                DataType::Text => {
                    Value::Text(data.str_at(row).expect("text representation").to_string())
                }
                _ => unreachable!("plain variants handled above"),
            },
        }
    }

    /// Numeric view of the value at `row`; `None` for NULL or Text.
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Bool(v) => Some(v[row] as u8 as f64),
            data => data.int_at(row).map(|x| x as f64),
        }
    }

    /// Integer view (used for join keys); `None` for NULL or non-int types.
    pub fn get_i64(&self, row: usize) -> Option<i64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Float(v) => Some(v[row] as i64),
            ColumnData::Bool(v) => Some(v[row] as i64),
            data => data.int_at(row),
        }
    }

    /// Borrowed string at `row` for Text columns; `None` otherwise.
    pub fn get_str(&self, row: usize) -> Option<&str> {
        if self.nulls[row] {
            return None;
        }
        self.data.str_at(row)
    }

    /// Dense `i64` data slice for *plain* Int columns, `None` otherwise
    /// (including the encoded int representations — the columnar gather
    /// path decodes those per row instead). Together with the
    /// [`Column::nulls`] bitmap this is the unboxed view the columnar UDF
    /// fast path gathers batches from — no per-row `Value` boxing.
    pub fn int_data(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Dense `f64` data slice for Float columns, `None` otherwise.
    pub fn float_data(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Dense `bool` data slice for Bool columns, `None` otherwise.
    pub fn bool_data(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Fraction of NULL rows.
    pub fn null_fraction(&self) -> f64 {
        if self.nulls.is_empty() {
            return 0.0;
        }
        self.nulls.iter().filter(|&&n| n).count() as f64 / self.nulls.len() as f64
    }

    /// The zone maps, when computed ([`ZONE_ROWS`] rows per block).
    pub fn zones(&self) -> Option<&[Zone]> {
        self.zones.as_deref()
    }

    /// Compute (or recompute) per-block zone maps. Numeric columns (Int,
    /// Float, Bool, and their encodings) get zones; Text columns get none —
    /// lexicographic predicates are never zone-pruned.
    pub fn compute_zones(&mut self) {
        if self.data_type() == DataType::Text || self.is_empty() {
            self.zones = None;
            return;
        }
        let n = self.len();
        let n_zones = n.div_ceil(ZONE_ROWS);
        let mut zones = Vec::with_capacity(n_zones);
        for z in 0..n_zones {
            let (start, end) = (z * ZONE_ROWS, ((z + 1) * ZONE_ROWS).min(n));
            let mut zone =
                Zone { min: f64::NAN, max: f64::NAN, null_any: false, any_matchable: false };
            for row in start..end {
                if self.nulls[row] {
                    zone.null_any = true;
                    continue;
                }
                // Same widening as `Value::compare` applies to both sides.
                let v = match &self.data {
                    ColumnData::Float(v) => v[row],
                    ColumnData::Bool(v) => v[row] as u8 as f64,
                    data => data.int_at(row).expect("numeric representation") as f64,
                };
                if v.is_nan() {
                    continue;
                }
                if zone.any_matchable {
                    zone.min = zone.min.min(v);
                    zone.max = zone.max.max(v);
                } else {
                    zone.min = v;
                    zone.max = v;
                    zone.any_matchable = true;
                }
            }
            zones.push(zone);
        }
        self.zones = Some(zones);
    }

    /// Drop the zone maps (e.g. before mutating data in place outside the
    /// sanctioned paths). A column without zones is simply never pruned.
    pub fn clear_zones(&mut self) {
        self.zones = None;
    }

    /// Re-encode this column's data into its smallest representation (see
    /// [`ColumnData::encoded`]). Values are preserved bit-exactly.
    pub fn encode(&mut self) {
        self.data = self.data.encoded();
    }

    /// Decode this column to the plain dense representation.
    pub fn decode(&mut self) {
        self.data = self.data.to_plain();
    }

    /// Replace every NULL with `default`, mutating in place. This is the
    /// "data adaptation" primitive from Section V of the paper (align data
    /// with generated UDFs instead of constraining the UDFs). Encoded
    /// columns are decoded first (point mutation defeats run/dictionary
    /// sharing); zone maps, when present, are recomputed afterwards.
    pub fn replace_nulls(&mut self, default: &Value) {
        if self.data.is_encoded() {
            self.data = self.data.to_plain();
        }
        for row in 0..self.len() {
            if !self.nulls[row] {
                continue;
            }
            let ok = match (&mut self.data, default) {
                (ColumnData::Int(v), Value::Int(d)) => {
                    v[row] = *d;
                    true
                }
                (ColumnData::Float(v), Value::Float(d)) => {
                    v[row] = *d;
                    true
                }
                (ColumnData::Float(v), Value::Int(d)) => {
                    v[row] = *d as f64;
                    true
                }
                (ColumnData::Text(v), Value::Text(d)) => {
                    v[row] = d.clone();
                    true
                }
                (ColumnData::Bool(v), Value::Bool(d)) => {
                    v[row] = *d;
                    true
                }
                _ => false,
            };
            if ok {
                self.nulls[row] = false;
            }
        }
        if self.zones.is_some() {
            self.compute_zones();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::with_nulls("x", ColumnData::Int(vec![1, 2, 3, 4]), vec![false, true, false, false])
    }

    #[test]
    fn accessors_respect_nulls() {
        let c = int_col();
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_i64(2), Some(3));
        assert!((c.null_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replace_nulls_clears_bitmap() {
        let mut c = int_col();
        c.replace_nulls(&Value::Int(99));
        assert_eq!(c.value(1), Value::Int(99));
        assert_eq!(c.null_fraction(), 0.0);
    }

    #[test]
    fn replace_nulls_type_mismatch_is_noop() {
        let mut c = int_col();
        c.replace_nulls(&Value::Text("nope".into()));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn text_access() {
        let c = Column::new("s", ColumnData::Text(vec!["ab".into(), "cd".into()]));
        assert_eq!(c.get_str(1), Some("cd"));
        assert_eq!(c.get_f64(0), None);
        assert_eq!(c.data_type(), DataType::Text);
    }

    #[test]
    #[should_panic(expected = "null bitmap length mismatch")]
    fn bitmap_length_checked() {
        Column::with_nulls("x", ColumnData::Int(vec![1]), vec![false, true]);
    }

    #[test]
    fn dict_int_round_trips_and_shrinks() {
        let v: Vec<i64> = (0..4096).map(|i| (i * 2654435761u64 as usize % 5) as i64).collect();
        let plain = ColumnData::Int(v.clone());
        let enc = plain.encoded();
        assert!(matches!(enc, ColumnData::DictInt { .. }), "low-NDV unsorted ints pick dict");
        assert!(enc.heap_bytes() < plain.heap_bytes());
        assert_eq!(enc.plain_bytes(), plain.heap_bytes());
        assert_eq!(enc.to_plain(), plain);
        assert_eq!(enc.data_type(), DataType::Int);
        assert_eq!(enc.len(), 4096);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(enc.int_at(i), Some(x));
        }
    }

    #[test]
    fn rle_round_trips_and_shrinks() {
        let mut v: Vec<i64> = Vec::new();
        for run in 0..40 {
            v.extend(std::iter::repeat_n(run * 7 - 3, 100));
        }
        let plain = ColumnData::Int(v.clone());
        let enc = plain.encoded();
        assert!(matches!(enc, ColumnData::RleInt { .. }), "clustered runs pick RLE");
        assert!(enc.heap_bytes() < plain.heap_bytes() / 10);
        assert_eq!(enc.to_plain(), plain);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(enc.int_at(i), Some(x), "row {i}");
        }
    }

    #[test]
    fn dict_text_round_trips_and_shrinks() {
        let words = ["alpha", "beta", "gamma"];
        let v: Vec<String> = (0..2048).map(|i| words[i % 3].to_string()).collect();
        let plain = ColumnData::Text(v.clone());
        let enc = plain.encoded();
        assert!(matches!(enc, ColumnData::DictText { .. }));
        assert!(enc.heap_bytes() < plain.heap_bytes());
        assert_eq!(enc.to_plain(), plain);
        assert_eq!(enc.str_at(4), Some("beta"));
    }

    #[test]
    fn high_cardinality_stays_plain() {
        let serial = ColumnData::Int((0..4096).collect());
        assert_eq!(serial.encoded(), serial, "serial PKs gain nothing from dict or RLE");
        let text = ColumnData::Text((0..64).map(|i| format!("unique-{i}")).collect());
        assert_eq!(text.encoded(), text);
        let floats = ColumnData::Float(vec![1.5; 100]);
        assert_eq!(floats.encoded(), floats, "floats always stay plain");
    }

    #[test]
    fn encoded_column_accessors_match_plain() {
        let data: Vec<i64> = (0..3000).map(|i| (i / 100) as i64).collect();
        let nulls: Vec<bool> = (0..3000).map(|i| i % 7 == 0).collect();
        let plain = Column::with_nulls("x", ColumnData::Int(data.clone()), nulls.clone());
        let mut enc = plain.clone();
        enc.encode();
        assert!(enc.data.is_encoded());
        assert!(enc.int_data().is_none(), "encoded data has no dense slice");
        for row in 0..3000 {
            assert_eq!(enc.value(row), plain.value(row));
            assert_eq!(enc.get_f64(row), plain.get_f64(row));
            assert_eq!(enc.get_i64(row), plain.get_i64(row));
        }
        assert_eq!(enc.data.to_plain(), plain.data, "decode round-trips bit-exactly");
    }

    #[test]
    fn zones_cover_blocks_with_null_and_nan_accounting() {
        let n = ZONE_ROWS * 2 + 100;
        let mut vals = vec![0.0f64; n];
        let mut nulls = vec![false; n];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = (i as f64).sin() * 100.0;
        }
        vals[3] = f64::NAN;
        nulls[ZONE_ROWS + 1] = true;
        // Last (ragged) block: all rows NULL.
        for flag in nulls.iter_mut().skip(ZONE_ROWS * 2) {
            *flag = true;
        }
        let mut c = Column::with_nulls("f", ColumnData::Float(vals.clone()), nulls.clone());
        assert!(c.zones().is_none());
        c.compute_zones();
        let zones = c.zones().unwrap();
        assert_eq!(zones.len(), 3);
        assert!(!zones[0].null_any && zones[0].any_matchable);
        assert!(zones[1].null_any && zones[1].any_matchable);
        assert!(zones[2].null_any && !zones[2].any_matchable, "all-null block is unmatchable");
        for (z, zone) in zones.iter().enumerate().take(2) {
            let (s, e) = (z * ZONE_ROWS, ((z + 1) * ZONE_ROWS).min(n));
            for row in s..e {
                if !nulls[row] && !vals[row].is_nan() {
                    assert!(zone.min <= vals[row] && vals[row] <= zone.max);
                }
            }
        }
    }

    #[test]
    fn text_columns_have_no_zones() {
        let mut c = Column::new("s", ColumnData::Text(vec!["a".into(), "b".into()]));
        c.compute_zones();
        assert!(c.zones().is_none());
    }

    #[test]
    fn zone_extremes_handle_i64_limits() {
        let mut c = Column::new("x", ColumnData::Int(vec![i64::MIN, 0, i64::MAX]));
        c.compute_zones();
        let z = c.zones().unwrap()[0];
        assert_eq!(z.min, i64::MIN as f64);
        assert_eq!(z.max, i64::MAX as f64);
    }

    #[test]
    fn replace_nulls_decodes_and_refreshes_zones() {
        let data: Vec<i64> = std::iter::repeat_n(5i64, 2000).collect();
        let nulls: Vec<bool> = (0..2000).map(|i| i == 1999).collect();
        let mut c = Column::with_nulls("x", ColumnData::Int(data), nulls);
        c.encode();
        c.compute_zones();
        assert!(c.data.is_encoded());
        c.replace_nulls(&Value::Int(-100));
        assert!(!c.data.is_encoded(), "point mutation decodes first");
        assert_eq!(c.value(1999), Value::Int(-100));
        let zones = c.zones().unwrap();
        assert_eq!(zones[1].min, -100.0, "zones recomputed after mutation");
        assert!(!zones[1].null_any);
    }
}
