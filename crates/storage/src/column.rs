//! Null-aware typed columns.
//!
//! Columns store their data in dense typed vectors plus a separate null
//! bitmap (a `Vec<bool>`; simplicity over bit-packing at this scale). The
//! executor and the UDF interpreter access values through the cheap typed
//! accessors (`get_f64`, `get_str`, ...) so the hot row-by-row UDF loop never
//! allocates.

use crate::types::{DataType, Value};

/// Typed backing storage of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Text(Vec<String>),
    Bool(Vec<bool>),
}

impl ColumnData {
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Text(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text(_) => DataType::Text,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }
}

/// A named, nullable, typed column.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub data: ColumnData,
    /// `true` marks a NULL at that row. Always the same length as `data`.
    pub nulls: Vec<bool>,
}

impl Column {
    /// Build a column without NULLs.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        let nulls = vec![false; data.len()];
        Column { name: name.into(), data, nulls }
    }

    /// Build a column with an explicit null bitmap.
    ///
    /// # Panics
    /// Panics if the bitmap length differs from the data length.
    pub fn with_nulls(name: impl Into<String>, data: ColumnData, nulls: Vec<bool>) -> Self {
        assert_eq!(data.len(), nulls.len(), "null bitmap length mismatch");
        Column { name: name.into(), data, nulls }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    pub fn is_null(&self, row: usize) -> bool {
        self.nulls[row]
    }

    /// Owned value at `row` (allocates for Text; prefer typed accessors in
    /// hot paths).
    pub fn value(&self, row: usize) -> Value {
        if self.nulls[row] {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Text(v) => Value::Text(v[row].clone()),
            ColumnData::Bool(v) => Value::Bool(v[row]),
        }
    }

    /// Numeric view of the value at `row`; `None` for NULL or Text.
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row] as f64),
            ColumnData::Float(v) => Some(v[row]),
            ColumnData::Bool(v) => Some(v[row] as u8 as f64),
            ColumnData::Text(_) => None,
        }
    }

    /// Integer view (used for join keys); `None` for NULL or non-int types.
    pub fn get_i64(&self, row: usize) -> Option<i64> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Int(v) => Some(v[row]),
            ColumnData::Float(v) => Some(v[row] as i64),
            ColumnData::Bool(v) => Some(v[row] as i64),
            ColumnData::Text(_) => None,
        }
    }

    /// Borrowed string at `row` for Text columns; `None` otherwise.
    pub fn get_str(&self, row: usize) -> Option<&str> {
        if self.nulls[row] {
            return None;
        }
        match &self.data {
            ColumnData::Text(v) => Some(&v[row]),
            _ => None,
        }
    }

    /// Dense `i64` data slice for Int columns, `None` otherwise. Together
    /// with the [`Column::nulls`] bitmap this is the unboxed view the
    /// columnar UDF fast path gathers batches from — no per-row `Value`
    /// boxing.
    pub fn int_data(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Dense `f64` data slice for Float columns, `None` otherwise.
    pub fn float_data(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Dense `bool` data slice for Bool columns, `None` otherwise.
    pub fn bool_data(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Fraction of NULL rows.
    pub fn null_fraction(&self) -> f64 {
        if self.nulls.is_empty() {
            return 0.0;
        }
        self.nulls.iter().filter(|&&n| n).count() as f64 / self.nulls.len() as f64
    }

    /// Replace every NULL with `default`, mutating in place. This is the
    /// "data adaptation" primitive from Section V of the paper (align data
    /// with generated UDFs instead of constraining the UDFs).
    pub fn replace_nulls(&mut self, default: &Value) {
        for row in 0..self.len() {
            if !self.nulls[row] {
                continue;
            }
            let ok = match (&mut self.data, default) {
                (ColumnData::Int(v), Value::Int(d)) => {
                    v[row] = *d;
                    true
                }
                (ColumnData::Float(v), Value::Float(d)) => {
                    v[row] = *d;
                    true
                }
                (ColumnData::Float(v), Value::Int(d)) => {
                    v[row] = *d as f64;
                    true
                }
                (ColumnData::Text(v), Value::Text(d)) => {
                    v[row] = d.clone();
                    true
                }
                (ColumnData::Bool(v), Value::Bool(d)) => {
                    v[row] = *d;
                    true
                }
                _ => false,
            };
            if ok {
                self.nulls[row] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::with_nulls("x", ColumnData::Int(vec![1, 2, 3, 4]), vec![false, true, false, false])
    }

    #[test]
    fn accessors_respect_nulls() {
        let c = int_col();
        assert_eq!(c.value(0), Value::Int(1));
        assert_eq!(c.value(1), Value::Null);
        assert_eq!(c.get_f64(1), None);
        assert_eq!(c.get_i64(2), Some(3));
        assert!((c.null_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn replace_nulls_clears_bitmap() {
        let mut c = int_col();
        c.replace_nulls(&Value::Int(99));
        assert_eq!(c.value(1), Value::Int(99));
        assert_eq!(c.null_fraction(), 0.0);
    }

    #[test]
    fn replace_nulls_type_mismatch_is_noop() {
        let mut c = int_col();
        c.replace_nulls(&Value::Text("nope".into()));
        assert_eq!(c.value(1), Value::Null);
    }

    #[test]
    fn text_access() {
        let c = Column::new("s", ColumnData::Text(vec!["ab".into(), "cd".into()]));
        assert_eq!(c.get_str(1), Some("cd"));
        assert_eq!(c.get_f64(0), None);
        assert_eq!(c.data_type(), DataType::Text);
    }

    #[test]
    #[should_panic(expected = "null bitmap length mismatch")]
    fn bitmap_length_checked() {
        Column::with_nulls("x", ColumnData::Int(vec![1]), vec![false, true]);
    }
}
