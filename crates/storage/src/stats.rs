//! Per-column statistics: the raw material of cardinality estimation.
//!
//! A real DBMS computes these during `ANALYZE`. We keep exactly the
//! statistics that the paper's cardinality-estimation ladder needs:
//!
//! * **equi-depth histograms** over numeric columns (range selectivity),
//! * **most-common values** with frequencies (equality selectivity, skew),
//! * **NDV / null fraction / min / max** (uniformity fallbacks),
//! * **average text length** (string-op cost featurization).
//!
//! The estimators in `graceful-card` combine these with either independence
//! assumptions ("DuckDB-like"), join-aware sampling ("WanderJoin-like") or
//! per-table sample synopses ("DeepDB-like").

use crate::column::{Column, ColumnData};
use crate::table::Table;
use crate::types::{DataType, Value};
use graceful_common::{GracefulError, Result};
use std::collections::HashMap;

/// Number of equi-depth buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;
/// Number of most-common values tracked per column.
pub const MCV_ENTRIES: usize = 16;

/// Equi-depth histogram over the non-NULL numeric values of a column.
///
/// `bounds` has `buckets + 1` entries; bucket `i` spans
/// `[bounds[i], bounds[i+1]]` and holds `1/buckets` of the probability mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
}

impl Histogram {
    /// Build from raw (unsorted) values. Returns `None` when fewer than two
    /// distinct values exist — the caller falls back to min/max/NDV logic.
    pub fn build(mut values: Vec<f64>) -> Option<Self> {
        values.retain(|v| v.is_finite());
        if values.len() < 2 {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = values.len();
        let buckets = HISTOGRAM_BUCKETS.min(n - 1).max(1);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let rank = (i * (n - 1)) / buckets;
            bounds.push(values[rank]);
        }
        Some(Histogram { bounds })
    }

    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    pub fn max(&self) -> f64 {
        *self.bounds.last().expect("non-empty bounds")
    }

    /// Fraction of values `< x` (linear interpolation inside buckets).
    pub fn selectivity_lt(&self, x: f64) -> f64 {
        if x <= self.min() {
            return 0.0;
        }
        if x > self.max() {
            return 1.0;
        }
        let buckets = self.bounds.len() - 1;
        let per_bucket = 1.0 / buckets as f64;
        let mut acc = 0.0;
        for i in 0..buckets {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x >= hi {
                acc += per_bucket;
            } else if x > lo {
                let width = (hi - lo).max(f64::EPSILON);
                acc += per_bucket * ((x - lo) / width).clamp(0.0, 1.0);
                break;
            } else {
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }

    /// Fraction of values in `[lo, hi)`.
    pub fn selectivity_range(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.selectivity_lt(hi) - self.selectivity_lt(lo)).clamp(0.0, 1.0)
    }
}

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub name: String,
    pub data_type: DataType,
    pub num_rows: usize,
    pub null_fraction: f64,
    /// Number of distinct non-NULL values.
    pub ndv: usize,
    /// Numeric min/max (0.0 for text columns; check `data_type`).
    pub min: f64,
    pub max: f64,
    pub histogram: Option<Histogram>,
    /// Most common values with their frequency (fraction of non-NULL rows).
    pub mcv: Vec<(Value, f64)>,
    /// Mean string length for Text columns (0 otherwise).
    pub avg_text_len: f64,
}

impl ColumnStats {
    /// Compute statistics from column data (a one-pass `ANALYZE`).
    pub fn compute(column: &Column) -> Self {
        let num_rows = column.len();
        let null_fraction = column.null_fraction();
        let mut numeric: Vec<f64> = Vec::new();
        let mut text_len_sum = 0.0;
        let mut text_count = 0usize;
        // NDV + MCV via exact counting (tables are in-memory; no sketch needed).
        let mut counts: HashMap<String, (Value, usize)> = HashMap::new();
        for row in 0..num_rows {
            if column.is_null(row) {
                continue;
            }
            match &column.data {
                ColumnData::Float(v) => {
                    numeric.push(v[row]);
                    // Bucket floats by bit pattern for NDV purposes.
                    counts
                        .entry(v[row].to_bits().to_string())
                        .or_insert((Value::Float(v[row]), 0))
                        .1 += 1;
                }
                ColumnData::Bool(v) => {
                    numeric.push(v[row] as u8 as f64);
                    counts.entry(v[row].to_string()).or_insert((Value::Bool(v[row]), 0)).1 += 1;
                }
                // Int/Text in any representation (plain, dictionary, RLE):
                // the per-row accessors decode, so ANALYZE over an encoded
                // column produces byte-identical statistics.
                data => {
                    if let Some(s) = data.str_at(row) {
                        text_len_sum += s.len() as f64;
                        text_count += 1;
                        counts
                            .entry(s.to_string())
                            .or_insert_with(|| (Value::Text(s.to_string()), 0))
                            .1 += 1;
                    } else {
                        let x = data.int_at(row).expect("int representation");
                        numeric.push(x as f64);
                        counts.entry(x.to_string()).or_insert((Value::Int(x), 0)).1 += 1;
                    }
                }
            }
        }
        let non_null = counts.values().map(|(_, c)| *c).sum::<usize>().max(1);
        let ndv = counts.len();
        let mut freq: Vec<(Value, f64)> =
            counts.into_values().map(|(v, c)| (v, c as f64 / non_null as f64)).collect();
        // Tie-break equal frequencies on the value itself: `counts` is a
        // HashMap, so without a total order the MCV list would depend on
        // iteration order and ANALYZE would be nondeterministic run-to-run.
        freq.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite freq")
                .then_with(|| a.0.compare(&b.0).unwrap_or(std::cmp::Ordering::Equal))
        });
        freq.truncate(MCV_ENTRIES);
        let (min, max) = if numeric.is_empty() {
            (0.0, 0.0)
        } else {
            numeric
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
        };
        ColumnStats {
            name: column.name.clone(),
            data_type: column.data_type(),
            num_rows,
            null_fraction,
            ndv,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
            histogram: Histogram::build(numeric),
            mcv: freq,
            avg_text_len: if text_count > 0 { text_len_sum / text_count as f64 } else { 0.0 },
        }
    }

    /// Frequency of `value` if it is among the most common values.
    pub fn mcv_frequency(&self, value: &Value) -> Option<f64> {
        self.mcv.iter().find(|(v, _)| v == value).map(|(_, f)| *f)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    pub table: String,
    pub num_rows: usize,
    columns: Vec<ColumnStats>,
}

impl TableStats {
    pub fn compute(table: &Table) -> Self {
        TableStats {
            table: table.name.clone(),
            num_rows: table.num_rows(),
            columns: table.columns().iter().map(ColumnStats::compute).collect(),
        }
    }

    pub fn column(&self, name: &str) -> Result<&ColumnStats> {
        self.columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| GracefulError::Unresolved(format!("stats for {}.{name}", self.table)))
    }

    pub fn columns(&self) -> &[ColumnStats] {
        &self.columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_uniform_selectivity() {
        let values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let h = Histogram::build(values).unwrap();
        assert!((h.selectivity_lt(500.0) - 0.5).abs() < 0.05);
        assert_eq!(h.selectivity_lt(-1.0), 0.0);
        assert_eq!(h.selectivity_lt(2000.0), 1.0);
        assert!((h.selectivity_range(250.0, 750.0) - 0.5).abs() < 0.05);
    }

    #[test]
    fn histogram_skewed_selectivity() {
        // 90% zeros, 10% spread out: selectivity_lt(1) should be ~0.9.
        let mut values = vec![0.0; 900];
        values.extend((1..=100).map(|i| i as f64));
        let h = Histogram::build(values).unwrap();
        let s = h.selectivity_lt(1.0);
        assert!(s > 0.8, "s={s}");
    }

    #[test]
    fn histogram_needs_two_values() {
        assert!(Histogram::build(vec![]).is_none());
        assert!(Histogram::build(vec![1.0]).is_none());
        assert!(Histogram::build(vec![1.0, 2.0]).is_some());
    }

    #[test]
    fn column_stats_basics() {
        let col = Column::with_nulls(
            "x",
            ColumnData::Int(vec![1, 1, 1, 2, 3, 0]),
            vec![false, false, false, false, false, true],
        );
        let s = ColumnStats::compute(&col);
        assert_eq!(s.ndv, 3);
        assert!((s.null_fraction - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // MCV ordered by frequency: 1 appears 3/5 of non-null rows.
        assert_eq!(s.mcv[0].0, Value::Int(1));
        assert!((s.mcv[0].1 - 0.6).abs() < 1e-12);
        assert_eq!(s.mcv_frequency(&Value::Int(2)), Some(0.2));
        assert_eq!(s.mcv_frequency(&Value::Int(42)), None);
    }

    #[test]
    fn text_stats() {
        let col = Column::new("s", ColumnData::Text(vec!["ab".into(), "abcd".into(), "ab".into()]));
        let s = ColumnStats::compute(&col);
        assert_eq!(s.ndv, 2);
        assert!((s.avg_text_len - 8.0 / 3.0).abs() < 1e-12);
        assert!(s.histogram.is_none());
    }

    #[test]
    fn selectivity_monotone() {
        let values: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let h = Histogram::build(values).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let s = h.selectivity_lt(i as f64 * 0.25);
            assert!(s >= prev - 1e-12, "monotonicity violated at {i}");
            prev = s;
        }
    }
}
