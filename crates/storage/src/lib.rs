//! In-memory columnar storage for the GRACEFUL reproduction.
//!
//! The paper evaluates on 20 databases loaded into DuckDB. This crate is the
//! storage substrate of our stand-in engine:
//!
//! * [`types`] — the `DataType`/`Value` system shared by the engine and the
//!   UDF interpreter,
//! * [`mod@column`]/[`table`]/[`database`] — null-aware typed columns, tables
//!   with key metadata, and the database catalog,
//! * [`stats`] — per-column statistics (NDV, null fraction, min/max,
//!   equi-depth histograms, most-common values) consumed by the cardinality
//!   estimators of `graceful-card`,
//! * [`datagen`] — seeded generators for the paper's 20 benchmark databases
//!   (accidents … walmart), including correlated columns and skewed
//!   foreign-key fan-outs so that naive cardinality estimation measurably
//!   degrades, as required to reproduce Table III.

pub mod column;
pub mod database;
pub mod datagen;
pub mod stats;
pub mod table;
pub mod types;

pub use column::{Column, ColumnData, Zone, MAX_DICT, ZONE_ROWS};
pub use database::Database;
pub use stats::{ColumnStats, Histogram, TableStats};
pub use table::{ForeignKey, Table};
pub use types::{DataType, Value};
