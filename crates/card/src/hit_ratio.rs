//! The hit-ratio estimator of Section III-B.
//!
//! UDF branches route different rows down different code paths, so the cost
//! of a UDF depends on *how many rows hit each branch*. The paper's key idea:
//! trace the conditions along every control path, rewrite them into an SQL
//! query over the data the UDF actually sees
//! (`SELECT * FROM tables WHERE joins ∧ pre-filters ∧ branch-conds`), and ask
//! an off-the-shelf cardinality estimator for the result size — the path's
//! hit frequency.
//!
//! Here the rewrite goes from [`BranchCondInfo`] (a `param CMP literal`
//! condition) back to the UDF's input column via the positional
//! param→column mapping of [`GeneratedUdf`], conjoined with the plain
//! filters already applied to the UDF's base table. Join-induced
//! distribution shift on the input columns is second-order for FK joins and
//! is ignored (documented simplification). Untraceable conditions (on
//! derived variables) contribute the 0.5 fallback.

use crate::CardEstimator;
use graceful_cfg::{BranchCondInfo, UdfDag};
use graceful_plan::Pred;
use graceful_storage::Value;
use graceful_udf::GeneratedUdf;

/// Hit-ratio estimator bridging UDF branch conditions and a cardinality
/// estimator.
pub struct HitRatioEstimator<'e> {
    card: &'e dyn CardEstimator,
}

impl<'e> HitRatioEstimator<'e> {
    pub fn new(card: &'e dyn CardEstimator) -> Self {
        HitRatioEstimator { card }
    }

    /// Rewrite a traced branch condition into a predicate over the UDF's
    /// input column. Returns `None` for parameters that do not map to a
    /// column (should not happen for generator-produced UDFs).
    pub fn rewrite(&self, udf: &GeneratedUdf, cond: &BranchCondInfo) -> Option<Pred> {
        let pos = udf.def.params.iter().position(|p| *p == cond.param)?;
        let column = udf.input_columns.get(pos)?;
        Some(Pred {
            col: graceful_plan::ColRef::new(&udf.table, column),
            op: cond.op,
            value: Value::Float(cond.literal),
        })
    }

    /// Probability of one control path: the joint selectivity of its
    /// (taken-adjusted) conditions, conditioned on the pre-UDF filters.
    ///
    /// `P(path | pre) = sel(pre ∧ conds) / sel(pre)`; untraceable conditions
    /// multiply in 0.5.
    pub fn path_probability(
        &self,
        udf: &GeneratedUdf,
        pre_filters: &[Pred],
        conditions: &[(Option<BranchCondInfo>, bool)],
    ) -> f64 {
        let mut preds: Vec<Pred> = pre_filters.to_vec();
        let mut fallback = 1.0;
        for (cond, taken) in conditions {
            let info = match cond {
                Some(c) => c,
                None => {
                    fallback *= 0.5;
                    continue;
                }
            };
            // A not-taken branch contributes the negated condition.
            let effective = if *taken {
                info.clone()
            } else {
                BranchCondInfo { op: info.op.negated(), ..info.clone() }
            };
            match self.rewrite(udf, &effective) {
                Some(p) => preds.push(p),
                None => fallback *= 0.5,
            }
        }
        let denom = if pre_filters.is_empty() {
            1.0
        } else {
            self.card.conjunction_selectivity(&udf.table, pre_filters).max(1e-9)
        };
        let joint = self.card.conjunction_selectivity(&udf.table, &preds);
        (joint / denom * fallback).clamp(0.0, 1.0)
    }

    /// Annotate `in_rows` on the whole UDF DAG: the paper's step ④.
    ///
    /// `input_rows` is the (estimated) number of rows reaching the UDF
    /// operator; `pre_filters` are the plain predicates already applied on
    /// the UDF's base table below it.
    pub fn annotate_dag(
        &self,
        dag: &mut UdfDag,
        udf: &GeneratedUdf,
        input_rows: f64,
        pre_filters: &[Pred],
    ) {
        dag.annotate_rows(input_rows, |conds| self.path_probability(udf, pre_filters, conds));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActualCard;
    use graceful_cfg::{build_dag, DagConfig, UdfNodeKind};
    use graceful_storage::datagen::{generate, schema};
    use graceful_storage::{DataType, Database};
    use graceful_udf::parse_udf;
    use std::sync::Arc;

    fn setup() -> (Database, Arc<GeneratedUdf>) {
        let db = generate(&schema("tpc_h"), 0.05, 3);
        // quantity is uniform in 1..=50; branch on x0 < 10 keeps ~18%.
        let def = parse_udf(
            "def f(x0):\n    if x0 < 10:\n        z = x0 * 2\n    else:\n        z = x0 + 1\n    return z\n",
        )
        .unwrap();
        let source = graceful_udf::print_udf(&def);
        let udf = Arc::new(GeneratedUdf {
            def,
            source,
            table: "lineitem_t".into(),
            input_columns: vec!["quantity".into()],
            adaptations: vec![],
        });
        (db, udf)
    }

    #[test]
    fn rewrites_param_to_column() {
        let (db, udf) = setup();
        let actual = ActualCard::new(&db);
        let hr = HitRatioEstimator::new(&actual);
        let cond =
            BranchCondInfo { param: "x0".into(), op: graceful_udf::ast::CmpOp::Lt, literal: 10.0 };
        let pred = hr.rewrite(&udf, &cond).unwrap();
        assert_eq!(pred.col.table, "lineitem_t");
        assert_eq!(pred.col.column, "quantity");
    }

    #[test]
    fn branch_hit_ratios_match_data() {
        let (db, udf) = setup();
        let actual = ActualCard::new(&db);
        let hr = HitRatioEstimator::new(&actual);
        let mut dag = build_dag(&udf.def, &[DataType::Int], DataType::Float, DagConfig::default());
        hr.annotate_dag(&mut dag, &udf, 1000.0, &[]);
        // The then-side COMP should get ~18% of rows (quantity in 1..=9 of 1..=50).
        let comps: Vec<&graceful_cfg::UdfNode> =
            dag.nodes.iter().filter(|n| n.kind == UdfNodeKind::Comp).collect();
        let min_rows = comps.iter().map(|n| n.in_rows).fold(f64::INFINITY, f64::min);
        assert!(
            (min_rows / 1000.0 - 0.18).abs() < 0.05,
            "then-branch rows {min_rows} should be ≈180"
        );
        assert!((dag.nodes[dag.ret].in_rows - 1000.0).abs() < 1.0);
    }

    #[test]
    fn pre_filters_condition_the_ratio() {
        let (db, udf) = setup();
        let actual = ActualCard::new(&db);
        let hr = HitRatioEstimator::new(&actual);
        // Pre-filter quantity <= 10 makes the branch (x0 < 10) almost always
        // taken.
        let pre =
            vec![Pred::new("lineitem_t", "quantity", graceful_udf::ast::CmpOp::Le, Value::Int(10))];
        let cond = vec![(
            Some(BranchCondInfo {
                param: "x0".into(),
                op: graceful_udf::ast::CmpOp::Lt,
                literal: 10.0,
            }),
            true,
        )];
        let p = hr.path_probability(&udf, &pre, &cond);
        assert!(p > 0.8, "conditional hit ratio should be high, got {p}");
        // Without conditioning it is ~0.18.
        let p0 = hr.path_probability(&udf, &[], &cond);
        assert!(p0 < 0.3, "unconditional ratio should be low, got {p0}");
    }

    #[test]
    fn untraceable_conditions_fall_back() {
        let (db, udf) = setup();
        let actual = ActualCard::new(&db);
        let hr = HitRatioEstimator::new(&actual);
        let p = hr.path_probability(&udf, &[], &[(None, true)]);
        assert_eq!(p, 0.5);
        let p2 = hr.path_probability(&udf, &[], &[(None, true), (None, false)]);
        assert_eq!(p2, 0.25);
    }
}
