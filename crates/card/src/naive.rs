//! The naive "system optimizer" estimator (the paper's DuckDB column).
//!
//! Classic textbook estimation: uniformity within `[min, max]`, `1/NDV`
//! equality selectivity, attribute-value independence across predicates, and
//! the `|L|·|R| / max(ndv_l, ndv_r)` join formula. On the benchmark's
//! correlated columns and skewed fan-outs this is exactly the estimator that
//! produces the large errors of Table III's last row.

use crate::CardEstimator;
use graceful_common::Result;
use graceful_plan::{Plan, PlanOpKind, Pred};
use graceful_storage::{DataType, Database};
use graceful_udf::ast::CmpOp;

/// Histogram-free uniformity estimator.
pub struct NaiveCard<'a> {
    db: &'a Database,
}

impl<'a> NaiveCard<'a> {
    pub fn new(db: &'a Database) -> Self {
        NaiveCard { db }
    }

    /// Selectivity of one predicate under uniformity assumptions.
    fn pred_selectivity(&self, pred: &Pred) -> f64 {
        let stats = match self.db.stats(&pred.col.table) {
            Ok(s) => s,
            Err(_) => return 0.33,
        };
        let cs = match stats.column(&pred.col.column) {
            Ok(c) => c,
            Err(_) => return 0.33,
        };
        let non_null = 1.0 - cs.null_fraction;
        let sel = match cs.data_type {
            DataType::Int | DataType::Float => {
                let v = pred.value.as_f64().unwrap_or(cs.min);
                let span = (cs.max - cs.min).max(f64::EPSILON);
                let frac_below = ((v - cs.min) / span).clamp(0.0, 1.0);
                match pred.op {
                    CmpOp::Lt | CmpOp::Le => frac_below,
                    CmpOp::Gt | CmpOp::Ge => 1.0 - frac_below,
                    CmpOp::Eq => 1.0 / cs.ndv.max(1) as f64,
                    CmpOp::Ne => 1.0 - 1.0 / cs.ndv.max(1) as f64,
                }
            }
            DataType::Text | DataType::Bool => match pred.op {
                CmpOp::Eq => 1.0 / cs.ndv.max(1) as f64,
                CmpOp::Ne => 1.0 - 1.0 / cs.ndv.max(1) as f64,
                // Range over text: no histogram, classic magic constant.
                _ => 0.33,
            },
        };
        (sel * non_null).clamp(0.0, 1.0)
    }
}

impl CardEstimator for NaiveCard<'_> {
    fn name(&self) -> &'static str {
        "DuckDB-like (naive)"
    }

    fn annotate(&self, plan: &mut Plan) -> Result<()> {
        let db = self.db;
        crate::annotate_with(
            plan,
            |table| db.table(table).map(|t| t.num_rows() as f64).unwrap_or(0.0),
            |plan, idx, l, r| {
                // |L|·|R| / max(ndv_l, ndv_r), the System-R formula.
                let PlanOpKind::Join { left_col, right_col } = &plan.ops[idx].kind else {
                    return l.min(r);
                };
                let ndv = |c: &graceful_plan::ColRef| {
                    db.stats(&c.table)
                        .ok()
                        .and_then(|s| s.column(&c.column).ok())
                        .map(|cs| cs.ndv.max(1) as f64)
                        .unwrap_or(1.0)
                };
                let d = ndv(left_col).max(ndv(right_col)).max(1.0);
                (l * r / d).max(0.0)
            },
            |table, preds| {
                // Independence: multiply marginal selectivities.
                let _ = table;
                preds.iter().map(|p| self.pred_selectivity(p)).product()
            },
        )
    }

    fn conjunction_selectivity(&self, _table: &str, preds: &[Pred]) -> f64 {
        preds.iter().map(|p| self.pred_selectivity(p)).product::<f64>().clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::datagen::{generate, schema};
    use graceful_storage::Value;

    #[test]
    fn uniform_range_selectivity_is_reasonable() {
        let db = generate(&schema("tpc_h"), 0.05, 3);
        let est = NaiveCard::new(&db);
        // quantity is uniform 1..=50: `quantity <= 25` ≈ 0.5.
        let sel = est.conjunction_selectivity(
            "lineitem_t",
            &[Pred::new("lineitem_t", "quantity", CmpOp::Le, Value::Int(25))],
        );
        assert!((sel - 0.5).abs() < 0.1, "sel={sel}");
    }

    #[test]
    fn independence_underestimates_correlated_conjunctions() {
        // airline: arr_delay ≈ dep_delay. The conjunction
        // dep_delay > m AND arr_delay > m' keeps ~half the rows, but
        // independence predicts ~0.25.
        let db = generate(&schema("airline"), 0.1, 3);
        let est = NaiveCard::new(&db);
        let st = db.stats("flight").unwrap();
        let dep = st.column("dep_delay").unwrap();
        let arr = st.column("arr_delay").unwrap();
        let dep_mid = (dep.min + dep.max) / 2.0;
        let arr_mid = (arr.min + arr.max) / 2.0;
        let naive_sel = est.conjunction_selectivity(
            "flight",
            &[
                Pred::new("flight", "dep_delay", CmpOp::Gt, Value::Int(dep_mid as i64)),
                Pred::new("flight", "arr_delay", CmpOp::Gt, Value::Float(arr_mid)),
            ],
        );
        // True selectivity by scanning.
        let t = db.table("flight").unwrap();
        let (d, a) = (t.column("dep_delay").unwrap(), t.column("arr_delay").unwrap());
        let truth = (0..t.num_rows())
            .filter(|&r| {
                d.get_f64(r).is_some_and(|x| x > dep_mid)
                    && a.get_f64(r).is_some_and(|x| x > arr_mid)
            })
            .count() as f64
            / t.num_rows() as f64;
        assert!(
            naive_sel < truth * 0.75,
            "expected underestimation: naive={naive_sel}, truth={truth}"
        );
    }

    #[test]
    fn annotates_whole_plan() {
        use graceful_common::rng::Rng;
        use graceful_plan::{build_plan, QueryGenerator, UdfPlacement};
        let db = generate(&schema("imdb"), 0.03, 4);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(3);
        let est = NaiveCard::new(&db);
        for id in 0..20 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            let mut plan = build_plan(&spec, UdfPlacement::PushDown).unwrap();
            est.annotate(&mut plan).unwrap();
            for op in &plan.ops {
                assert!(op.est_out_rows.is_finite() && op.est_out_rows >= 0.0);
            }
            assert_eq!(plan.ops[plan.root].est_out_rows, 1.0);
        }
    }
}
