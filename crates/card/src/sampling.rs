//! Sampling-based estimation (the paper's WanderJoin column).
//!
//! WanderJoin estimates join cardinalities by random walks through join
//! indexes. We reproduce its statistical character — unbiased-ish medians,
//! heavy error tails on selective queries — by pushing a bounded row sample
//! through the plan: scans draw `walks` random rows, filters thin the sample
//! (tracking the survival ratio), joins probe the full build side but keep at
//! most `walks` result rows (re-scaling the estimate), so estimation cost
//! stays O(walks · plan depth) like WanderJoin's.

use crate::CardEstimator;
use graceful_common::rng::Rng;
use graceful_common::Result;
use graceful_plan::{Plan, PlanOpKind, Pred};
use graceful_storage::Database;
use std::cell::RefCell;
use std::collections::HashMap;

/// Sampling estimator (default 100 walks, like the paper's configuration).
pub struct SamplingCard<'a> {
    db: &'a Database,
    walks: usize,
    rng: RefCell<Rng>,
}

/// Sample flowing through the plan: per sampled tuple one row id per bound
/// table, plus the scale factor mapping sample size to estimated rows.
struct SampleRel {
    tables: Vec<String>,
    rows: Vec<u32>,
    /// Estimated real cardinality this sample represents.
    estimate: f64,
}

impl SampleRel {
    fn n(&self) -> usize {
        if self.tables.is_empty() {
            0
        } else {
            self.rows.len() / self.tables.len()
        }
    }
}

impl<'a> SamplingCard<'a> {
    pub fn new(db: &'a Database, walks: usize, seed: u64) -> Self {
        SamplingCard { db, walks: walks.max(4), rng: RefCell::new(Rng::seed(seed)) }
    }

    /// Default configuration: 100 successful walks.
    pub fn with_defaults(db: &'a Database) -> Self {
        Self::new(db, 100, 0xACE5)
    }

    /// One sampled join step: probe the full right base table from the left
    /// sample (WanderJoin walks into indexes, so the true fan-out is
    /// visible), keep one random continuation per walk, and scale the
    /// estimate by the observed average fan-out and the right side's
    /// survival ratio.
    fn join_sample(
        &self,
        left: SampleRel,
        right: SampleRel,
        left_col: &graceful_plan::ColRef,
        right_col: &graceful_plan::ColRef,
        rng: &mut Rng,
    ) -> Result<SampleRel> {
        let lpos = left.tables.iter().position(|t| *t == left_col.table);
        let rpos = right.tables.iter().position(|t| *t == right_col.table);
        let (lpos, rpos) = match (lpos, rpos) {
            (Some(l), Some(r)) => (l, r),
            _ => {
                let estimate = left.estimate.min(right.estimate);
                return Ok(SampleRel { tables: left.tables, rows: left.rows, estimate });
            }
        };
        let rtab = self.db.table(&right_col.table)?;
        let rcol = rtab.column(&right_col.column)?;
        let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
        for rid in 0..rtab.num_rows() {
            if let Some(k) = rcol.get_i64(rid) {
                index.entry(k).or_default().push(rid as u32);
            }
        }
        let r_base = rtab.num_rows() as f64;
        let r_ratio = if r_base > 0.0 { right.estimate / r_base } else { 0.0 };
        let ltab = self.db.table(&left_col.table)?;
        let lcol = ltab.column(&left_col.column)?;
        let lstride = left.tables.len();
        let ln = left.n();
        let mut fanout_sum = 0.0f64;
        let mut out_rows: Vec<u32> = Vec::new();
        let rstride = right.tables.len();
        let mut kept = 0usize;
        for l in 0..ln {
            let lid = left.rows[l * lstride + lpos] as usize;
            let Some(k) = lcol.get_i64(lid) else { continue };
            let matches = index.get(&k).map(Vec::as_slice).unwrap_or(&[]);
            fanout_sum += matches.len() as f64;
            // Keep at most one continuation per walk (WanderJoin walks a
            // single random edge). Multi-table right sides need a non-empty
            // right sample to draw companion rows from.
            if !matches.is_empty()
                && kept < self.walks
                && (right.tables.len() == 1 || right.n() > 0)
            {
                let pick = matches[rng.range(0..matches.len())];
                out_rows.extend_from_slice(&left.rows[l * lstride..(l + 1) * lstride]);
                // The joined-in table takes the walked row; any other tables
                // already bound on the right (bushy samples) are re-sampled.
                for ti in 0..right.tables.len() {
                    if ti == rpos {
                        out_rows.push(pick);
                    } else {
                        let rn = right.n().max(1);
                        out_rows.push(right.rows[rng.range(0..rn) * rstride + ti]);
                    }
                }
                kept += 1;
            }
        }
        let avg_fanout = if ln > 0 { fanout_sum / ln as f64 } else { 0.0 };
        let estimate = left.estimate * avg_fanout * r_ratio;
        let mut tables = left.tables;
        tables.extend(right.tables);
        Ok(SampleRel { tables, rows: out_rows, estimate })
    }
}

impl CardEstimator for SamplingCard<'_> {
    fn name(&self) -> &'static str {
        "WanderJoin-like (sampling)"
    }

    fn annotate(&self, plan: &mut Plan) -> Result<()> {
        let mut rng = self.rng.borrow_mut();
        let mut rels: Vec<Option<SampleRel>> = (0..plan.ops.len()).map(|_| None).collect();
        for idx in 0..plan.ops.len() {
            let (rel, est) = match &plan.ops[idx].kind {
                PlanOpKind::Scan { table } => {
                    let t = self.db.table(table)?;
                    let n = t.num_rows();
                    let k = self.walks.min(n);
                    let rows: Vec<u32> = (0..k).map(|_| rng.range(0..n.max(1)) as u32).collect();
                    let est = n as f64;
                    (SampleRel { tables: vec![table.clone()], rows, estimate: est }, est)
                }
                PlanOpKind::Filter { preds } => {
                    let child = rels[plan.ops[idx].children[0]].take().expect("child done");
                    let stride = child.tables.len();
                    let n = child.n();
                    let mut rows = Vec::new();
                    let mut kept = 0usize;
                    for r in 0..n {
                        let ok = preds.iter().all(|p| {
                            child
                                .tables
                                .iter()
                                .position(|t| *t == p.col.table)
                                .and_then(|pos| self.db.table(&p.col.table).ok().map(|t| (pos, t)))
                                .is_some_and(|(pos, t)| {
                                    p.matches(t, child.rows[r * stride + pos] as usize)
                                })
                        });
                        if ok {
                            kept += 1;
                            rows.extend_from_slice(&child.rows[r * stride..(r + 1) * stride]);
                        }
                    }
                    let ratio = if n > 0 { kept as f64 / n as f64 } else { 0.0 };
                    let est = child.estimate * ratio;
                    (SampleRel { tables: child.tables, rows, estimate: est }, est)
                }
                PlanOpKind::Join { left_col, right_col } => {
                    let left = rels[plan.ops[idx].children[0]].take().expect("left done");
                    let right = rels[plan.ops[idx].children[1]].take().expect("right done");
                    let rel = self.join_sample(left, right, left_col, right_col, &mut rng)?;
                    let est = rel.estimate;
                    (rel, est)
                }
                PlanOpKind::UdfFilter { .. } => {
                    let child = rels[plan.ops[idx].children[0]].take().expect("child done");
                    let est = child.estimate * crate::udf_filter_hint(plan, idx);
                    (SampleRel { estimate: est, ..child }, est)
                }
                PlanOpKind::UdfProject { .. } => {
                    let child = rels[plan.ops[idx].children[0]].take().expect("child done");
                    let est = child.estimate;
                    (child, est)
                }
                PlanOpKind::Agg { .. } => {
                    let child = rels[plan.ops[idx].children[0]].take().expect("child done");
                    (SampleRel { tables: child.tables, rows: Vec::new(), estimate: 1.0 }, 1.0)
                }
            };
            plan.ops[idx].est_out_rows = est.max(0.0);
            rels[idx] = Some(rel);
        }
        Ok(())
    }

    fn conjunction_selectivity(&self, table: &str, preds: &[Pred]) -> f64 {
        let t = match self.db.table(table) {
            Ok(t) => t,
            Err(_) => return 0.5,
        };
        let n = t.num_rows();
        if n == 0 {
            return 0.0;
        }
        let mut rng = self.rng.borrow_mut();
        let k = self.walks.min(n);
        let mut hits = 0usize;
        for _ in 0..k {
            let r = rng.range(0..n);
            if preds.iter().all(|p| p.matches(t, r)) {
                hits += 1;
            }
        }
        hits as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::datagen::{generate, schema};
    use graceful_storage::Value;
    use graceful_udf::ast::CmpOp;

    #[test]
    fn selectivity_approximates_truth() {
        let db = generate(&schema("tpc_h"), 0.1, 3);
        let est = SamplingCard::new(&db, 400, 7);
        let sel = est.conjunction_selectivity(
            "lineitem_t",
            &[Pred::new("lineitem_t", "quantity", CmpOp::Le, Value::Int(25))],
        );
        assert!((sel - 0.5).abs() < 0.12, "sel={sel}");
    }

    #[test]
    fn selective_predicates_have_high_variance() {
        // A very selective predicate often yields 0 hits with 50 walks —
        // the heavy-tail failure mode of sampling estimators.
        let db = generate(&schema("tpc_h"), 0.1, 3);
        let t = db.table("lineitem_t").unwrap();
        let n = t.num_rows();
        let est = SamplingCard::new(&db, 50, 9);
        let sel = est.conjunction_selectivity(
            "lineitem_t",
            &[Pred::new("lineitem_t", "quantity", CmpOp::Le, Value::Int(1))],
        );
        // Truth is ~2%; the sample estimate is coarse: it can only be a
        // multiple of 1/50.
        let granularity = sel * 50.0;
        assert!(granularity.fract().abs() < 1e-9, "estimate must be k/50");
        let _ = n;
    }

    #[test]
    fn plan_annotation_tracks_joins_reasonably() {
        use graceful_plan::{AggFunc, ColRef, Plan, PlanOp};
        let db = generate(&schema("tpc_h"), 0.1, 3);
        let mut plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("orders_t", "cust_id"),
                        right_col: ColRef::new("customer_t", "id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        let est = SamplingCard::new(&db, 200, 5);
        est.annotate(&mut plan).unwrap();
        let truth = db.table("orders_t").unwrap().num_rows() as f64;
        let q = (plan.ops[2].est_out_rows / truth).max(truth / plan.ops[2].est_out_rows);
        assert!(q < 1.6, "join estimate off by {q}: est={}", plan.ops[2].est_out_rows);
    }
}
