//! Cardinality estimation (the ladder of Table III) and hit-ratio estimation
//! (Section III-B).
//!
//! The paper evaluates GRACEFUL under four cardinality annotation methods of
//! decreasing quality: **actual** cardinalities, **DeepDB** (data-driven),
//! **WanderJoin** (sampling) and the **DuckDB optimizer** (histogram +
//! independence). This crate implements a functional stand-in for each:
//!
//! | Paper | Here | Technique | Failure mode |
//! |---|---|---|---|
//! | Actual | [`ActualCard`] | execute the plan | none (oracle) |
//! | DeepDB | [`DataDrivenCard`] | per-table row samples evaluate filter conjunctions exactly; FK fan-out from key statistics | cross-join correlations, sampling floor |
//! | WanderJoin | [`SamplingCard`] | push a row sample through the plan (sampling-based join estimation) | variance on selective queries (heavy tails) |
//! | DuckDB | [`NaiveCard`] | uniformity + attribute independence | correlated predicates, skewed fan-outs |
//!
//! All estimators implement [`CardEstimator`]: they annotate whole plans
//! bottom-up and expose conjunctive single-table selectivities, which is the
//! primitive the **hit-ratio estimator** ([`hit_ratio::HitRatioEstimator`])
//! uses after rewriting UDF branch conditions back into predicates over the
//! UDF's input columns.
//!
//! UDF-filter operators themselves are *not estimatable* by any method (the
//! paper's central observation): during corpus annotation their selectivity
//! is taken from the recorded ground truth (the model must still learn
//! everything else), while the advisor of Section IV instead *enumerates*
//! selectivities via [`scale_above_udf`].

pub mod actual;
pub mod datadriven;
pub mod hit_ratio;
pub mod naive;
pub mod sampling;

use graceful_common::Result;
use graceful_plan::{Plan, PlanOpKind, Pred};

pub use actual::ActualCard;
pub use datadriven::DataDrivenCard;
pub use hit_ratio::HitRatioEstimator;
pub use naive::NaiveCard;
pub use sampling::SamplingCard;

/// A cardinality estimator.
pub trait CardEstimator {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Fill `est_out_rows` for every operator, bottom-up.
    ///
    /// UDF-filter selectivity is copied from the plan's recorded actual
    /// cardinalities when available (see module docs) and defaults to 0.5
    /// otherwise.
    fn annotate(&self, plan: &mut Plan) -> Result<()>;

    /// Selectivity of a conjunction of single-table predicates.
    fn conjunction_selectivity(&self, table: &str, preds: &[Pred]) -> f64;
}

/// The UDF-filter selectivity hint used during corpus annotation: the true
/// selectivity when the plan has been executed, 0.5 otherwise.
pub(crate) fn udf_filter_hint(plan: &Plan, idx: usize) -> f64 {
    let op = &plan.ops[idx];
    let child = op.children[0];
    let input = plan.ops[child].actual_out_rows;
    if input > 0.0 && op.actual_out_rows >= 0.0 && op.actual_out_rows <= input {
        (op.actual_out_rows / input).clamp(0.0, 1.0)
    } else {
        0.5
    }
}

/// Rescale the estimated cardinalities of every operator above the UDF
/// filter by assuming the UDF filter keeps `selectivity` of its input —
/// the per-selectivity graph instantiation of the advisor (Figure 4).
///
/// The UDF filter's own output is set to `input × selectivity`; every
/// ancestor's estimate is multiplied by the ratio between the new and the
/// previously annotated UDF output.
pub fn scale_above_udf(plan: &mut Plan, selectivity: f64) {
    let Some(udf_idx) = plan.udf_op() else { return };
    let child = plan.ops[udf_idx].children[0];
    let input = plan.ops[child].est_out_rows.max(0.0);
    let old_out = plan.ops[udf_idx].est_out_rows.max(1e-9);
    let new_out = input * selectivity.clamp(0.0, 1.0);
    let ratio = new_out / old_out;
    plan.ops[udf_idx].est_out_rows = new_out;
    for anc in plan.ops_above(udf_idx) {
        if matches!(plan.ops[anc].kind, PlanOpKind::Agg { .. }) {
            plan.ops[anc].est_out_rows = 1.0;
        } else {
            plan.ops[anc].est_out_rows *= ratio;
        }
    }
}

/// Shared annotation skeleton: walks the arena bottom-up and delegates the
/// table-level and join-level decisions to the estimator via callbacks.
pub(crate) fn annotate_with<FS, FJ>(
    plan: &mut Plan,
    mut scan_rows: FS,
    mut join_out: FJ,
    filter_sel: impl Fn(&str, &[Pred]) -> f64,
) -> Result<()>
where
    FS: FnMut(&str) -> f64,
    FJ: FnMut(&Plan, usize, f64, f64) -> f64,
{
    for idx in 0..plan.ops.len() {
        let est = match &plan.ops[idx].kind {
            PlanOpKind::Scan { table } => scan_rows(table),
            PlanOpKind::Filter { preds } => {
                let input = plan.ops[plan.ops[idx].children[0]].est_out_rows;
                let table = preds.first().map(|p| p.col.table.clone()).unwrap_or_default();
                input * filter_sel(&table, preds)
            }
            PlanOpKind::Join { .. } => {
                let l = plan.ops[plan.ops[idx].children[0]].est_out_rows;
                let r = plan.ops[plan.ops[idx].children[1]].est_out_rows;
                join_out(plan, idx, l, r)
            }
            PlanOpKind::UdfFilter { .. } => {
                let input = plan.ops[plan.ops[idx].children[0]].est_out_rows;
                input * udf_filter_hint(plan, idx)
            }
            PlanOpKind::UdfProject { .. } => plan.ops[plan.ops[idx].children[0]].est_out_rows,
            PlanOpKind::Agg { .. } => 1.0,
        };
        plan.ops[idx].est_out_rows = est.max(0.0);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_plan::{AggFunc, ColRef, PlanOp};
    use graceful_udf::ast::CmpOp;
    use graceful_udf::GeneratedUdf;
    use std::sync::Arc;

    fn udf_plan() -> Plan {
        let udf = Arc::new(GeneratedUdf {
            def: graceful_udf::parse_udf("def f(x0):\n    return x0\n").unwrap(),
            source: String::new(),
            table: "a".into(),
            input_columns: vec!["x".into()],
            adaptations: vec![],
        });
        Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "a".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "b".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("a", "id"),
                        right_col: ColRef::new("b", "a_id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::UdfFilter { udf, op: CmpOp::Le, literal: 1.0 }, vec![2]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("a", "id"),
                        right_col: ColRef::new("b", "a_id"),
                    },
                    vec![3, 3],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![4]),
            ],
            root: 5,
        }
    }

    #[test]
    fn scale_above_udf_rescales_ancestors() {
        let mut plan = udf_plan();
        // Pretend the plan was annotated: UDF input 1000, output 500 (sel .5),
        // join above 2000.
        plan.ops[0].est_out_rows = 1000.0;
        plan.ops[1].est_out_rows = 10.0;
        plan.ops[2].est_out_rows = 1000.0;
        plan.ops[3].est_out_rows = 500.0;
        plan.ops[4].est_out_rows = 2000.0;
        plan.ops[5].est_out_rows = 1.0;
        scale_above_udf(&mut plan, 0.1);
        assert!((plan.ops[3].est_out_rows - 100.0).abs() < 1e-9);
        assert!((plan.ops[4].est_out_rows - 400.0).abs() < 1e-9);
        assert_eq!(plan.ops[5].est_out_rows, 1.0);
        // Below the UDF nothing changes.
        assert_eq!(plan.ops[2].est_out_rows, 1000.0);
    }

    #[test]
    fn udf_hint_uses_recorded_truth() {
        let mut plan = udf_plan();
        plan.ops[2].actual_out_rows = 800.0;
        plan.ops[3].actual_out_rows = 200.0;
        assert!((udf_filter_hint(&plan, 3) - 0.25).abs() < 1e-12);
        plan.ops[2].actual_out_rows = 0.0;
        assert_eq!(udf_filter_hint(&plan, 3), 0.5);
    }
}
