//! The oracle estimator: actual cardinalities from execution.
//!
//! The paper's upper baseline ("Actual" rows of Table III). Annotation simply
//! copies the executor-recorded actual cardinalities into the estimate slots;
//! conjunctive selectivities are computed by scanning.

use crate::CardEstimator;
use graceful_common::{GracefulError, Result};
use graceful_exec::Session;
use graceful_plan::{Plan, Pred};
use graceful_storage::Database;

/// Perfect cardinalities (executes or reuses recorded actuals).
pub struct ActualCard<'a> {
    db: &'a Database,
    session: Session,
}

impl<'a> ActualCard<'a> {
    /// Oracle over `db`. Its internal executor uses the pure base
    /// [`Session`] — actual cardinalities are bit-identical under every
    /// backend, thread count and executor mode, so the oracle consults no
    /// environment knobs and works in fully env-free programs.
    pub fn new(db: &'a Database) -> Self {
        ActualCard { db, session: Session::new() }
    }

    /// Oracle executing through a specific engine session.
    pub fn with_session(db: &'a Database, session: Session) -> Self {
        ActualCard { db, session }
    }
}

impl CardEstimator for ActualCard<'_> {
    fn name(&self) -> &'static str {
        "Actual"
    }

    fn annotate(&self, plan: &mut Plan) -> Result<()> {
        // Reuse recorded actuals when the plan has been executed; otherwise
        // execute it now (the oracle is allowed to).
        let recorded = plan.ops.iter().any(|o| o.actual_out_rows > 0.0);
        if !recorded {
            self.session
                .executor(self.db)
                .run_and_annotate(plan, 0)
                .map_err(|e| GracefulError::Model(format!("oracle execution failed: {e}")))?;
        }
        for op in plan.ops.iter_mut() {
            op.est_out_rows = op.actual_out_rows;
        }
        Ok(())
    }

    fn conjunction_selectivity(&self, table: &str, preds: &[Pred]) -> f64 {
        let t = match self.db.table(table) {
            Ok(t) => t,
            Err(_) => return 0.5,
        };
        let n = t.num_rows();
        if n == 0 {
            return 0.0;
        }
        let hits = (0..n).filter(|&r| preds.iter().all(|p| p.matches(t, r))).count();
        hits as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::datagen::{generate, schema};
    use graceful_storage::Value;
    use graceful_udf::ast::CmpOp;

    #[test]
    fn exact_selectivity() {
        let db = generate(&schema("tpc_h"), 0.05, 3);
        let est = ActualCard::new(&db);
        let sel = est.conjunction_selectivity(
            "lineitem_t",
            &[Pred::new("lineitem_t", "quantity", CmpOp::Le, Value::Int(25))],
        );
        // Exactly count.
        let t = db.table("lineitem_t").unwrap();
        let c = t.column("quantity").unwrap();
        let truth = (0..t.num_rows()).filter(|&r| c.get_i64(r).is_some_and(|v| v <= 25)).count()
            as f64
            / t.num_rows() as f64;
        assert_eq!(sel, truth);
    }

    #[test]
    fn annotation_matches_execution() {
        use graceful_common::rng::Rng;
        use graceful_plan::{build_plan, QueryGenerator, UdfPlacement};
        use graceful_udf::generator::apply_adaptations;
        let mut db = generate(&schema("imdb"), 0.02, 4);
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(5);
        let spec = g.generate(&db, 0, &mut rng).unwrap();
        if let Some(u) = &spec.udf {
            apply_adaptations(&mut db, &u.adaptations).unwrap();
        }
        let mut plan = build_plan(&spec, UdfPlacement::PushDown).unwrap();
        let est = ActualCard::new(&db);
        est.annotate(&mut plan).unwrap();
        for op in &plan.ops {
            assert_eq!(op.est_out_rows, op.actual_out_rows);
        }
    }
}
