//! Data-driven estimation (the paper's DeepDB column).
//!
//! DeepDB learns sum-product networks over table samples, capturing
//! intra-table correlations that independence-based estimators miss. We
//! reproduce that capability with materialized per-table row samples:
//! filter conjunctions are evaluated *exactly on the sample* (so correlated
//! predicates are handled), while joins use FK fan-out statistics collected
//! at build time. The residual error sources — sampling floor on very
//! selective predicates, fan-out/filter correlations across tables — are the
//! same ones that make real DeepDB imperfect (Table III's mid rows, and the
//! `baseball` dataset discussion in Exp 5).

use crate::CardEstimator;
use graceful_common::rng::Rng;
use graceful_common::Result;
use graceful_plan::{ColRef, Plan, PlanOpKind, Pred};
use graceful_storage::Database;
use std::collections::HashMap;

/// Per-table sample size (larger = tighter estimates, slower build).
const SAMPLE_ROWS: usize = 600;

/// Fan-out statistics for one FK edge direction.
#[derive(Debug, Clone, Copy)]
struct Fanout {
    /// Average children per parent key *present in the child table*.
    avg: f64,
}

/// Data-driven estimator with per-table samples and FK fan-out synopses.
pub struct DataDrivenCard<'a> {
    db: &'a Database,
    /// table → sampled row ids.
    samples: HashMap<String, Vec<u32>>,
    /// (child_table, child_col) → fan-out of parent ⋈ child.
    fanouts: HashMap<(String, String), Fanout>,
}

impl<'a> DataDrivenCard<'a> {
    /// Build the synopses (the "training" of the data-driven model).
    pub fn build(db: &'a Database, seed: u64) -> Self {
        let mut rng = Rng::seed(seed ^ 0xDEED);
        let mut samples = HashMap::new();
        for t in db.tables() {
            let n = t.num_rows();
            let ids: Vec<u32> = if n <= SAMPLE_ROWS {
                (0..n as u32).collect()
            } else {
                rng.sample_indices(n, SAMPLE_ROWS).into_iter().map(|i| i as u32).collect()
            };
            samples.insert(t.name.clone(), ids);
        }
        let mut fanouts = HashMap::new();
        for t in db.tables() {
            for fk in &t.foreign_keys {
                let col = match t.column(&fk.column) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let mut counts: HashMap<i64, usize> = HashMap::new();
                for r in 0..t.num_rows() {
                    if let Some(k) = col.get_i64(r) {
                        *counts.entry(k).or_insert(0) += 1;
                    }
                }
                let parents = db.table(&fk.ref_table).map(|p| p.num_rows()).unwrap_or(1).max(1);
                let avg = counts.values().sum::<usize>() as f64 / parents as f64;
                fanouts.insert((t.name.clone(), fk.column.clone()), Fanout { avg });
            }
        }
        DataDrivenCard { db, samples, fanouts }
    }

    /// Sample-based conjunctive selectivity (exact on the sample).
    fn sample_selectivity(&self, table: &str, preds: &[Pred]) -> f64 {
        if preds.is_empty() {
            return 1.0;
        }
        let (Some(ids), Ok(t)) = (self.samples.get(table), self.db.table(table)) else {
            return 0.5;
        };
        if ids.is_empty() {
            return 0.0;
        }
        let hits = ids.iter().filter(|&&r| preds.iter().all(|p| p.matches(t, r as usize))).count();
        // Laplace smoothing: zero sample hits become a small non-zero
        // probability (DeepDB's SPN leaves never output exact zero either).
        (hits as f64 + 0.5) / (ids.len() as f64 + 1.0)
    }

    fn fanout(&self, child_col: &ColRef) -> Option<Fanout> {
        self.fanouts.get(&(child_col.table.clone(), child_col.column.clone())).copied()
    }
}

impl CardEstimator for DataDrivenCard<'_> {
    fn name(&self) -> &'static str {
        "DeepDB-like (data-driven)"
    }

    fn annotate(&self, plan: &mut Plan) -> Result<()> {
        let db = self.db;
        crate::annotate_with(
            plan,
            |table| db.table(table).map(|t| t.num_rows() as f64).unwrap_or(0.0),
            |plan, idx, l, r| {
                let PlanOpKind::Join { left_col, right_col } = &plan.ops[idx].kind else {
                    return l.min(r);
                };
                // FK join: child side × survival ratio of parent side.
                // Identify which side is the child (FK holder).
                if let Some(f) = self.fanout(right_col) {
                    // Right is the child: parents(left) × fanout × right
                    // survival.
                    let right_base =
                        db.table(&right_col.table).map(|t| t.num_rows() as f64).unwrap_or(1.0);
                    let survival = if right_base > 0.0 { r / right_base } else { 0.0 };
                    l * f.avg * survival
                } else if let Some(f) = self.fanout(left_col) {
                    let left_base =
                        db.table(&left_col.table).map(|t| t.num_rows() as f64).unwrap_or(1.0);
                    let survival = if left_base > 0.0 { l / left_base } else { 0.0 };
                    r * f.avg * survival
                } else {
                    // Non-FK equi-join: fall back to the NDV formula.
                    let ndv = |c: &ColRef| {
                        db.stats(&c.table)
                            .ok()
                            .and_then(|s| s.column(&c.column).ok())
                            .map(|cs| cs.ndv.max(1) as f64)
                            .unwrap_or(1.0)
                    };
                    l * r / ndv(left_col).max(ndv(right_col)).max(1.0)
                }
            },
            |table, preds| self.sample_selectivity(table, preds),
        )
    }

    fn conjunction_selectivity(&self, table: &str, preds: &[Pred]) -> f64 {
        self.sample_selectivity(table, preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::datagen::{generate, schema};
    use graceful_storage::Value;
    use graceful_udf::ast::CmpOp;

    #[test]
    fn captures_correlated_conjunctions() {
        let db = generate(&schema("airline"), 0.1, 3);
        let est = DataDrivenCard::build(&db, 1);
        let st = db.stats("flight").unwrap();
        let dep = st.column("dep_delay").unwrap();
        let arr = st.column("arr_delay").unwrap();
        let preds = vec![
            Pred::new(
                "flight",
                "dep_delay",
                CmpOp::Gt,
                Value::Int(((dep.min + dep.max) / 2.0) as i64),
            ),
            Pred::new("flight", "arr_delay", CmpOp::Gt, Value::Float((arr.min + arr.max) / 2.0)),
        ];
        let est_sel = est.conjunction_selectivity("flight", &preds);
        let t = db.table("flight").unwrap();
        let truth = (0..t.num_rows()).filter(|&r| preds.iter().all(|p| p.matches(t, r))).count()
            as f64
            / t.num_rows() as f64;
        let q = (est_sel / truth).max(truth / est_sel);
        assert!(q < 1.5, "data-driven should capture correlation: q={q}");
    }

    #[test]
    fn fk_join_estimate_close_to_truth() {
        use graceful_plan::{AggFunc, Plan, PlanOp};
        let db = generate(&schema("tpc_h"), 0.1, 3);
        let est = DataDrivenCard::build(&db, 2);
        let mut plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("customer_t", "id"),
                        right_col: ColRef::new("orders_t", "cust_id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        est.annotate(&mut plan).unwrap();
        let truth = db.table("orders_t").unwrap().num_rows() as f64;
        let q = (plan.ops[2].est_out_rows / truth).max(truth / plan.ops[2].est_out_rows);
        assert!(q < 1.2, "FK join estimate q={q}");
    }

    #[test]
    fn smoothing_avoids_zero() {
        let db = generate(&schema("tpc_h"), 0.05, 3);
        let est = DataDrivenCard::build(&db, 3);
        // Impossible predicate: quantity < min.
        let sel = est.conjunction_selectivity(
            "lineitem_t",
            &[Pred::new("lineitem_t", "quantity", CmpOp::Lt, Value::Int(-5))],
        );
        assert!(sel > 0.0 && sel < 0.01);
    }
}
