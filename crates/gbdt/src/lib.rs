//! Gradient-boosted regression trees — the XGBoost stand-in.
//!
//! The paper's FlatVector baseline predicts per-tuple UDF costs from a flat
//! feature vector with XGBoost. This crate implements the required subset:
//! squared-error gradient boosting over exact-greedy regression trees with
//! shrinkage, depth / leaf-size limits, and optional feature subsampling.
//! It is deterministic given the seed and serializes with `serde`.

pub mod tree;

pub use tree::{Gbdt, GbdtConfig, RegressionTree};
