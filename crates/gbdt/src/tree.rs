//! Regression trees and gradient boosting.

use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use serde::{Deserialize, Serialize};

/// Boosting configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtConfig {
    pub n_trees: usize,
    pub max_depth: usize,
    pub min_leaf: usize,
    /// Shrinkage / learning rate.
    pub eta: f64,
    /// Fraction of features considered per split (1.0 = all).
    pub feature_subsample: f64,
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 160,
            max_depth: 5,
            min_leaf: 4,
            eta: 0.08,
            feature_subsample: 0.9,
            seed: 13,
        }
    }
}

/// A tree node: either a split or a leaf value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum TreeNode {
    Split { feature: usize, threshold: f64, left: usize, right: usize },
    Leaf { value: f64 },
}

/// A single regression tree stored as a node arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<TreeNode>,
}

impl RegressionTree {
    /// Fit a tree to `(x, residual)` via exact greedy variance-reduction
    /// splits.
    fn fit(x: &[Vec<f64>], y: &[f64], idx: &[usize], cfg: &GbdtConfig, rng: &mut Rng) -> Self {
        let mut nodes = Vec::new();
        Self::build(x, y, idx, 0, cfg, rng, &mut nodes);
        RegressionTree { nodes }
    }

    fn build(
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        depth: usize,
        cfg: &GbdtConfig,
        rng: &mut Rng,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len().max(1) as f64;
        if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
            nodes.push(TreeNode::Leaf { value: mean });
            return nodes.len() - 1;
        }
        let n_features = x.first().map(|r| r.len()).unwrap_or(0);
        let base_score: f64 = idx.iter().map(|&i| (y[i] - mean).powi(2)).sum();
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        #[allow(clippy::needless_range_loop)] // `f` is a feature index used across rows
        for f in 0..n_features {
            if cfg.feature_subsample < 1.0 && !rng.chance(cfg.feature_subsample) {
                continue;
            }
            // Sort samples by feature value.
            let mut order: Vec<usize> = idx.to_vec();
            order.sort_by(|&a, &b| x[a][f].partial_cmp(&x[b][f]).expect("finite features"));
            // Prefix sums for O(1) variance computation per split point.
            let mut prefix_sum = 0.0;
            let mut prefix_sq = 0.0;
            let total_sum: f64 = order.iter().map(|&i| y[i]).sum();
            let total_sq: f64 = order.iter().map(|&i| y[i] * y[i]).sum();
            let n = order.len() as f64;
            for k in 0..order.len() - 1 {
                let i = order[k];
                prefix_sum += y[i];
                prefix_sq += y[i] * y[i];
                let k1 = (k + 1) as f64;
                // Skip ties: can only split between distinct values.
                if x[order[k]][f] == x[order[k + 1]][f] {
                    continue;
                }
                if k + 1 < cfg.min_leaf || order.len() - k - 1 < cfg.min_leaf {
                    continue;
                }
                let left_var = prefix_sq - prefix_sum * prefix_sum / k1;
                let right_sum = total_sum - prefix_sum;
                let right_sq = total_sq - prefix_sq;
                let right_var = right_sq - right_sum * right_sum / (n - k1);
                let gain = base_score - left_var - right_var;
                if gain > best.map_or(1e-12, |(_, _, g)| g) {
                    let threshold = (x[order[k]][f] + x[order[k + 1]][f]) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            nodes.push(TreeNode::Leaf { value: mean });
            return nodes.len() - 1;
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            nodes.push(TreeNode::Leaf { value: mean });
            return nodes.len() - 1;
        }
        // Reserve our slot, then build children.
        let slot = nodes.len();
        nodes.push(TreeNode::Leaf { value: mean }); // placeholder
        let left = Self::build(x, y, &left_idx, depth + 1, cfg, rng, nodes);
        let right = Self::build(x, y, &right_idx, depth + 1, cfg, rng, nodes);
        nodes[slot] = TreeNode::Split { feature, threshold, left, right };
        slot
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split { feature, threshold, left, right } => {
                    node = if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Gradient-boosted ensemble (squared loss).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    pub config: GbdtConfig,
    base: f64,
    trees: Vec<RegressionTree>,
}

impl Gbdt {
    /// Fit on `(x, y)`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: GbdtConfig) -> Result<Self> {
        if x.is_empty() || x.len() != y.len() {
            return Err(GracefulError::Model("empty or mismatched training data".into()));
        }
        let mut rng = Rng::seed(config.seed);
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred: Vec<f64> = vec![base; y.len()];
        let idx: Vec<usize> = (0..y.len()).collect();
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Residuals are the negative gradient of squared loss.
            let residuals: Vec<f64> = y.iter().zip(&pred).map(|(t, p)| t - p).collect();
            let tree = RegressionTree::fit(x, &residuals, &idx, &config, &mut rng);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += config.eta * tree.predict(&x[i]);
            }
            trees.push(tree);
        }
        Ok(Gbdt { config, base, trees })
    }

    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.trees.iter().map(|t| self.config.eta * t.predict(x)).sum::<f64>()
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = Rng::seed(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.range(0.0..10.0);
            let b = rng.range(0.0..10.0);
            let c = rng.range(0.0..1.0);
            // Non-linear target with an interaction.
            y.push(3.0 * a + if b > 5.0 { 20.0 } else { 0.0 } + a * b * 0.5 + c);
            x.push(vec![a, b, c]);
        }
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = make_data(600, 1);
        let model = Gbdt::fit(&x, &y, GbdtConfig::default()).unwrap();
        let (xt, yt) = make_data(200, 2);
        let mse: f64 =
            xt.iter().zip(&yt).map(|(xi, yi)| (model.predict(xi) - yi).powi(2)).sum::<f64>()
                / yt.len() as f64;
        let var = {
            let m = yt.iter().sum::<f64>() / yt.len() as f64;
            yt.iter().map(|v| (v - m).powi(2)).sum::<f64>() / yt.len() as f64
        };
        assert!(mse < 0.1 * var, "GBDT underfits: mse={mse}, var={var}");
    }

    #[test]
    fn deterministic() {
        let (x, y) = make_data(200, 3);
        let m1 = Gbdt::fit(&x, &y, GbdtConfig::default()).unwrap();
        let m2 = Gbdt::fit(&x, &y, GbdtConfig::default()).unwrap();
        assert_eq!(m1.predict(&x[0]), m2.predict(&x[0]));
    }

    #[test]
    fn respects_min_leaf_on_tiny_data() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1.0, 2.0, 3.0];
        let model = Gbdt::fit(&x, &y, GbdtConfig { min_leaf: 2, ..Default::default() }).unwrap();
        // With min_leaf=2 and 3 samples, trees are single leaves → predict mean.
        assert!((model.predict(&[1.0]) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_data_rejected() {
        assert!(Gbdt::fit(&[], &[], GbdtConfig::default()).is_err());
        assert!(Gbdt::fit(&[vec![1.0]], &[1.0, 2.0], GbdtConfig::default()).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let (x, y) = make_data(100, 5);
        let model = Gbdt::fit(&x, &y, GbdtConfig { n_trees: 20, ..Default::default() }).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let loaded: Gbdt = serde_json::from_str(&json).unwrap();
        // JSON prints shortest-round-trip floats; summation is identical but
        // leaf values may differ in the last ulp.
        let (a, b) = (model.predict(&x[0]), loaded.predict(&x[0]));
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn monotone_in_strong_feature() {
        let (x, y) = make_data(400, 7);
        let model = Gbdt::fit(&x, &y, GbdtConfig::default()).unwrap();
        // Feature 0 has slope 3+0.5b; prediction should rise with it.
        let low = model.predict(&[1.0, 5.0, 0.5]);
        let high = model.predict(&[9.0, 5.0, 0.5]);
        assert!(high > low + 5.0, "low={low} high={high}");
    }
}
