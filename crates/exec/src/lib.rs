//! The execution engine: the reproduction's stand-in for DuckDB.
//!
//! [`Executor`] really executes logical plans over `graceful-storage` data —
//! hash joins build and probe real hash tables, filters evaluate real
//! predicates, UDFs are interpreted row by row — and *accounts* every unit of
//! work into a deterministic simulated runtime (see `graceful-udf::costs` for
//! why simulated time replaces wall clocks). Execution also yields the
//! per-operator **actual cardinalities**, which serve as the paper's
//! "Actual" cardinality annotation oracle and as ground truth for evaluating
//! the other estimators.
//!
//! Filter and the UDF operators run morsel-parallel on the
//! `graceful-runtime` pool (`GRACEFUL_THREADS` workers, `GRACEFUL_MORSEL`
//! rows per morsel); scans (an identity row-id fill), joins and aggregates
//! stay sequential. Work accounting
//! is grouped per morsel and merged in morsel-index order, so results and
//! accounted runtimes are **bit-identical for any thread count** — the
//! paper's effects (UDF cost ∝ rows × code path, join cost ∝ input sizes,
//! pull-up crossovers) and the experiment labels never depend on the
//! machine's parallelism.

pub mod engine;

pub use engine::{ExecConfig, Executor, OperatorWeights, QueryRun};
