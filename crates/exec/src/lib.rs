//! The execution engine: the reproduction's stand-in for DuckDB.
//!
//! [`Executor`] really executes logical plans over `graceful-storage` data —
//! hash joins build and probe real hash tables, filters evaluate real
//! predicates, UDFs are evaluated row by row or in typed batches — and
//! *accounts* every unit of work into a deterministic simulated runtime (see
//! `graceful-udf::costs` for why simulated time replaces wall clocks).
//! Execution also yields the per-operator **actual cardinalities**, which
//! serve as the paper's "Actual" cardinality annotation oracle and as ground
//! truth for evaluating the other estimators.
//!
//! The crate is layered as a small vectorized engine:
//!
//! * [`session`] — [`Session`] / [`ExecOptions`], the validated programmatic
//!   configuration API (environment variables are only documented defaults,
//!   applied once by [`Session::from_env`]);
//! * [`physical`] — the default executor: [`physical::lower`] turns a plan
//!   into explicit [`physical::PhysicalPlan`] pipelines of
//!   [`physical::Operator`]s that stream row [`physical::Batch`]es, keeping
//!   peak memory at O(threads × morsel × depth) for non-blocking chains;
//! * [`engine`] — [`ExecConfig`], [`QueryRun`] and the original
//!   materializing interpreter (`ExecMode::Materialize`), kept as the
//!   bit-identical differential reference;
//! * [`udf_eval`] — the unified [`udf_eval::UdfEval`] trait with
//!   tree-walker / batch-VM / columnar-SIMD implementors behind both
//!   executors;
//! * [`profile`] — the opt-in per-query [`profile::ExecProfile`]
//!   (per-operator wall time, rows, batches, UDF backend effectiveness),
//!   attached to [`QueryRun`] when [`ExecOptions::profile`] is on and
//!   explicitly **outside** the bit-identity contract below;
//! * [`analyze`] — estimator-quality telemetry: after every run, predicted
//!   cardinalities/costs are scored against the measured truth (q-error
//!   registry histograms, the `graceful-obs` flight recorder, and the
//!   `explain analyze` record built by [`analyze::flight_record`]).
//!
//! Every data-plane operator runs morsel-parallel on the
//! `graceful-runtime` pool: scans fill row ids per morsel, filters prune
//! whole morsels against storage zone maps (`prune`) before
//! evaluating predicates, hash joins build and probe a radix-partitioned
//! index (`join`), and aggregates fold per-morsel partial states.
//! Work accounting is grouped per morsel and merged in morsel-index order,
//! so results and accounted runtimes are **bit-identical for any thread
//! count, UDF backend, batch size and executor mode** — the paper's effects
//! (UDF cost ∝ rows × code path, join cost ∝ input sizes, pull-up
//! crossovers) and the experiment labels never depend on the machine's
//! parallelism or the engine's execution strategy.

pub mod analyze;
pub mod engine;
mod join;
pub mod physical;
pub mod profile;
mod prune;
pub mod session;
pub mod udf_eval;

pub use analyze::{estimated_work, flight_record, static_udf_row_cost};
pub use engine::{ExecConfig, Executor, OperatorWeights, QueryRun};
pub use graceful_common::config::ExecMode;
pub use physical::{Batch, Operator, PhysicalOp, PhysicalOpKind, PhysicalPlan, Pipeline};
pub use profile::{ExecProfile, OpProfile, UdfOpProfile};
pub use session::{ExecOptions, Session};
pub use udf_eval::{UdfEval, UdfEvalSpec, UdfEvalStats};
