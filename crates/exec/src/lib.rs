//! The execution engine: the reproduction's stand-in for DuckDB.
//!
//! [`Executor`] really executes logical plans over `graceful-storage` data —
//! hash joins build and probe real hash tables, filters evaluate real
//! predicates, UDFs are interpreted row by row — and *accounts* every unit of
//! work into a deterministic simulated runtime (see `graceful-udf::costs` for
//! why simulated time replaces wall clocks). Execution also yields the
//! per-operator **actual cardinalities**, which serve as the paper's
//! "Actual" cardinality annotation oracle and as ground truth for evaluating
//! the other estimators.
//!
//! The engine is intentionally single-threaded and row-at-a-time: the paper's
//! effects (UDF cost ∝ rows × code path, join cost ∝ input sizes, pull-up
//! crossovers) do not depend on vectorization, and a simple engine keeps the
//! work accounting exact.

pub mod engine;

pub use engine::{ExecConfig, Executor, OperatorWeights, QueryRun};
