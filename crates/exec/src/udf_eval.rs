//! The unified UDF-evaluation interface of the execution engine.
//!
//! Every relational operator that invokes a UDF — `UdfFilter`, `UdfProject`,
//! in either executor mode — evaluates it through the [`UdfEval`] trait. The
//! three backends (`TreewalkEval`, `VmEval`, `SimdEval` — private: the
//! factory is the only construction path) own their gather buffers, their
//! batching strategy and their fallback logic, so the engine never matches
//! on [`UdfBackend`] beyond asking [`UdfEvalSpec`] for a fresh evaluator; a
//! future backend plugs in here without touching the operators.
//!
//! # The bit-identity contract
//!
//! [`UdfEval::eval_rows`] receives one *morsel* of row ids and a fresh `work`
//! accumulator, and must accumulate accounted work with its backend's exact
//! float grouping:
//!
//! * the tree-walker adds `cost + overhead` once per row,
//! * the VM and SIMD backends add `batch_cost + rows × overhead` once per
//!   internal batch, restarting batch boundaries at the morsel start.
//!
//! Callers merge per-morsel `(work, values)` pairs in morsel-index order.
//! Because grouping depends only on the morsel boundaries — never on thread
//! count, executor mode or flush timing — every accounted total is
//! bit-identical across all of them (enforced by
//! `tests/parallel_determinism.rs` and the engine differential tests).

use graceful_common::config::UdfBackend;
use graceful_common::Result;
use graceful_obs::registry::{counter, Counter};
use graceful_obs::trace;
use graceful_runtime::Pool;
use graceful_storage::{Column, DataType, Value};
use graceful_udf::simd::{self, SimdBatchStats, TypedCol};
use graceful_udf::{compile, CostCounter, CostWeights, Interpreter, Program, SimdShape, Vm};
use std::sync::OnceLock;

/// Evaluation-volume counters one [`UdfEval`] accumulates while it runs.
/// Observability only — the engine never reads them on a result path, so
/// they cannot affect the bit-identity contract. Per-morsel stats merge in
/// morsel-index order like every other per-morsel result, making the totals
/// themselves deterministic too.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdfEvalStats {
    /// Rows evaluated.
    pub rows: u64,
    /// Internal evaluation batches. The tree-walker counts one batch per
    /// row (its "batch" is a row); the VM/SIMD backends count their actual
    /// `udf_batch_size`-bounded batches.
    pub batches: u64,
    /// SIMD fast-path effectiveness (zero for the scalar backends).
    pub simd: SimdBatchStats,
}

impl UdfEvalStats {
    /// Accumulate another evaluator's counters into this one.
    pub fn merge(&mut self, other: &UdfEvalStats) {
        self.rows += other.rows;
        self.batches += other.batches;
        self.simd.merge(&other.simd);
    }
}

struct UdfMetrics {
    rows: Counter,
    batches: Counter,
    simd_fast_rows: Counter,
    simd_bail_rows: Counter,
    simd_group_splits: Counter,
}

/// Fold `stats` into the process-wide registry (`udf.rows`, `udf.batches`,
/// `udf.simd.fast_rows`, `udf.simd.bail_rows`, `udf.simd.group_splits`).
/// Both executor modes call this once per UDF operator.
pub(crate) fn record_udf_metrics(stats: &UdfEvalStats) {
    static METRICS: OnceLock<UdfMetrics> = OnceLock::new();
    let m = METRICS.get_or_init(|| UdfMetrics {
        rows: counter("udf.rows"),
        batches: counter("udf.batches"),
        simd_fast_rows: counter("udf.simd.fast_rows"),
        simd_bail_rows: counter("udf.simd.bail_rows"),
        simd_group_splits: counter("udf.simd.group_splits"),
    });
    m.rows.add(stats.rows);
    m.batches.add(stats.batches);
    m.simd_fast_rows.add(stats.simd.fast_rows);
    m.simd_bail_rows.add(stats.simd.bail_rows);
    m.simd_group_splits.add(stats.simd.group_splits);
}

/// Batched UDF evaluation over gathered input rows.
///
/// One instance is created per pool worker (via [`UdfEvalSpec::new_eval`])
/// and reused across all morsels that worker pulls, so scratch buffers are
/// allocated once.
pub trait UdfEval {
    /// Evaluate the UDF over the rows `rids` (row ids into the operator's
    /// input columns), appending one output [`Value`] per row to `values`
    /// and accumulating accounted work — UDF cost plus the operator's
    /// per-row overhead — into `work` with this backend's float grouping.
    /// Evaluation-volume counters accumulate into `stats` (write-only, never
    /// consulted for results).
    fn eval_rows(
        &mut self,
        rids: &[usize],
        values: &mut Vec<Value>,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<()>;
}

/// Everything resolved once per UDF operator: input columns, the compiled
/// program (VM/SIMD backends), the columnar-eligibility decision, weights and
/// batching parameters. [`UdfEvalSpec::new_eval`] then builds one evaluator
/// per worker.
pub struct UdfEvalSpec<'a> {
    udf: &'a graceful_udf::GeneratedUdf,
    cols: Vec<&'a Column>,
    weights: CostWeights,
    backend: UdfBackend,
    prog: Option<Program>,
    /// `Some` iff the SIMD backend is selected *and* the program has a
    /// vectorizable path *and* every input column has a typed (non-Text)
    /// storage slice. Ineligible operators run the plain batch VM — the two
    /// produce bit-identical values and costs either way.
    shape: Option<SimdShape>,
    batch: usize,
    overhead: f64,
    /// Per-parameter dead flags from liveness analysis: `dead[i]` means the
    /// UDF body provably never reads parameter `i`, so its column is not
    /// gathered (a typed placeholder is substituted instead). Restricted to
    /// non-Text parameters — invocation cost counts Text argument
    /// characters, and pruning must leave accounted work bit-identical.
    /// All-false when rewrites are disabled.
    dead: Vec<bool>,
}

impl<'a> UdfEvalSpec<'a> {
    /// Resolve an operator's evaluation plan: compile the UDF once for the
    /// bytecode backends and decide columnar eligibility.
    ///
    /// Compilation runs the bytecode verifier (under the default
    /// `GRACEFUL_VERIFY=strict`), so a program that reaches an evaluator has
    /// proven jump targets, register/constant bounds, cost-charge placement
    /// and definite initialization — a rejected UDF surfaces here as a typed
    /// [`graceful_common::GracefulError::Verify`] before any row runs.
    ///
    /// `overhead` is the operator's own per-row work (comparison against the
    /// filter literal, projection bookkeeping) charged alongside the UDF
    /// cost.
    ///
    /// `prune` enables dead-parameter pruning: parameters the UDF body
    /// provably never reads (`UdfDef::param_read_set`) skip the per-row
    /// column gather and receive a typed placeholder instead. Pruning never
    /// changes values (the body cannot observe an unread parameter), never
    /// changes accounted work (invocation cost depends on argument count and
    /// Text lengths only, and Text parameters are never pruned), and never
    /// changes backend selection (SIMD eligibility is decided from the full
    /// column list before pruning).
    pub fn prepare(
        udf: &'a graceful_udf::GeneratedUdf,
        cols: Vec<&'a Column>,
        backend: UdfBackend,
        weights: CostWeights,
        batch: usize,
        overhead: f64,
        prune: bool,
    ) -> Result<Self> {
        let prog = match backend {
            UdfBackend::Vm | UdfBackend::Simd => Some(compile(&udf.def)?),
            UdfBackend::TreeWalk => None,
        };
        // Eligibility is decided from the FULL column list: pruning must
        // only skip gathers, never flip which backend path runs.
        let shape = if backend == UdfBackend::Simd {
            let typed = cols.iter().all(|c| c.data_type() != DataType::Text);
            prog.as_ref().map(|p| p.simd_shape()).filter(|s| s.has_fast_path && typed)
        } else {
            None
        };
        let dead = if prune && cols.len() == udf.def.params.len() {
            let read = udf.def.param_read_set();
            udf.def
                .params
                .iter()
                .zip(cols.iter())
                .map(|(p, c)| !read.contains(p) && c.data_type() != DataType::Text)
                .collect()
        } else {
            vec![false; cols.len()]
        };
        Ok(UdfEvalSpec {
            udf,
            cols,
            weights,
            backend,
            prog,
            shape,
            batch: batch.max(1),
            overhead,
            dead,
        })
    }

    /// Which parameters this spec will prune (liveness-dead, non-Text).
    pub fn dead_params(&self) -> &[bool] {
        &self.dead
    }

    /// Evaluate rows `0..n` — mapped to storage row ids by `rid_of` — in
    /// `morsel`-row morsels on `pool`, one evaluator per worker, returning
    /// the per-morsel `(work, values, stats)` triples **in morsel-index
    /// order**.
    ///
    /// This is the one shared kernel behind both executor modes' UDF
    /// operators: the per-morsel float grouping and the merge order live
    /// here and only here, so the modes cannot drift apart.
    pub fn eval_morsels(
        &self,
        pool: &Pool,
        n: usize,
        morsel: usize,
        rid_of: impl Fn(usize) -> usize + Sync,
    ) -> Vec<Result<(f64, Vec<Value>, UdfEvalStats)>> {
        pool.map_init(
            Pool::morsel_count(n, morsel),
            || (self.new_eval(), Vec::new()),
            |(eval, rids): &mut (Box<dyn UdfEval + '_>, Vec<usize>), m| {
                let range = Pool::morsel_range(m, n, morsel);
                rids.clear();
                rids.extend(range.clone().map(&rid_of));
                let _span = trace::span("udf", "eval_morsel").arg("rows", rids.len());
                let mut morsel_work = 0.0f64;
                let mut stats = UdfEvalStats::default();
                let mut values = Vec::with_capacity(range.len());
                eval.eval_rows(rids, &mut values, &mut morsel_work, &mut stats)?;
                Ok((morsel_work, values, stats))
            },
        )
    }

    /// Build one evaluator for a pool worker. The instance owns all its
    /// scratch state (interpreter, warmed VM register file, gather buffers),
    /// so parallel evaluation never contends and never reallocates per row.
    pub fn new_eval(&self) -> Box<dyn UdfEval + '_> {
        match self.backend {
            UdfBackend::TreeWalk => Box::new(TreewalkEval {
                interp: Interpreter::new(self.weights.clone()),
                args: Vec::with_capacity(self.cols.len()),
                udf: &self.udf.def,
                cols: &self.cols,
                dead: &self.dead,
                overhead: self.overhead,
            }),
            UdfBackend::Simd if self.shape.is_some() => {
                let prog = self.prog.as_ref().expect("program compiled for SIMD backend");
                let mut vm = Vm::new(self.weights.clone());
                vm.warm(prog);
                Box::new(SimdEval {
                    vm,
                    prog,
                    shape: self.shape.as_ref().expect("shape checked"),
                    typed_bufs: self
                        .cols
                        .iter()
                        .map(|c| {
                            TypedCol::for_type(c.data_type(), self.batch)
                                .expect("eligibility checked non-Text")
                        })
                        .collect(),
                    outs: Vec::with_capacity(self.batch),
                    cols: &self.cols,
                    dead: &self.dead,
                    batch: self.batch,
                    overhead: self.overhead,
                })
            }
            UdfBackend::Vm | UdfBackend::Simd => {
                let prog = self.prog.as_ref().expect("program compiled for VM backend");
                let mut vm = Vm::new(self.weights.clone());
                vm.warm(prog);
                Box::new(VmEval {
                    vm,
                    prog,
                    col_bufs: self.cols.iter().map(|_| Vec::with_capacity(self.batch)).collect(),
                    outs: Vec::with_capacity(self.batch),
                    cols: &self.cols,
                    dead: &self.dead,
                    batch: self.batch,
                    overhead: self.overhead,
                })
            }
        }
    }
}

/// Reference backend: the slot-table tree-walking interpreter, one row at a
/// time, work accounted per row.
struct TreewalkEval<'a> {
    interp: Interpreter,
    /// Argument gather buffer, reused across rows.
    args: Vec<Value>,
    udf: &'a graceful_udf::UdfDef,
    cols: &'a [&'a Column],
    /// Liveness-dead parameters: gathered as `Value::Null` placeholders
    /// instead of reading the column (the body never observes them).
    dead: &'a [bool],
    overhead: f64,
}

impl UdfEval for TreewalkEval<'_> {
    fn eval_rows(
        &mut self,
        rids: &[usize],
        values: &mut Vec<Value>,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<()> {
        for &rid in rids {
            self.args.clear();
            self.args.extend(self.cols.iter().zip(self.dead.iter()).map(|(c, &d)| {
                if d {
                    Value::Null
                } else {
                    c.value(rid)
                }
            }));
            let out = self.interp.eval(self.udf, &self.args)?;
            *work += out.cost.total + self.overhead;
            values.push(out.value);
        }
        stats.rows += rids.len() as u64;
        // The tree-walker's "batch" is a single row.
        stats.batches += rids.len() as u64;
        Ok(())
    }
}

/// Bytecode batch VM: rows are gathered into boxed-`Value` column buffers and
/// evaluated `batch` rows at a time; work accounted per batch.
struct VmEval<'a> {
    vm: Vm,
    prog: &'a Program,
    /// Columnar gather buffers, one per UDF parameter.
    col_bufs: Vec<Vec<Value>>,
    /// Batch output buffer.
    outs: Vec<Value>,
    cols: &'a [&'a Column],
    /// Liveness-dead parameters: their buffers are filled with `Null`
    /// placeholders (the program contains no load for them).
    dead: &'a [bool],
    batch: usize,
    overhead: f64,
}

impl UdfEval for VmEval<'_> {
    fn eval_rows(
        &mut self,
        rids: &[usize],
        values: &mut Vec<Value>,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<()> {
        let mut start = 0;
        while start < rids.len() {
            let end = (start + self.batch).min(rids.len());
            for buf in self.col_bufs.iter_mut() {
                buf.clear();
            }
            for &rid in &rids[start..end] {
                for ((buf, col), &d) in
                    self.col_bufs.iter_mut().zip(self.cols.iter()).zip(self.dead.iter())
                {
                    buf.push(if d { Value::Null } else { col.value(rid) });
                }
            }
            self.outs.clear();
            let mut cost = CostCounter::new();
            let col_slices: Vec<&[Value]> = self.col_bufs.iter().map(|b| b.as_slice()).collect();
            self.vm.eval_batch(self.prog, &col_slices, &mut self.outs, &mut cost)?;
            *work += cost.total + (end - start) as f64 * self.overhead;
            stats.rows += (end - start) as u64;
            stats.batches += 1;
            values.append(&mut self.outs);
            start = end;
        }
        Ok(())
    }
}

/// Typed columnar fast path: batches gather straight from the storage
/// columns' typed slices into unboxed lane buffers — no `Value` boxing on the
/// way in. Rows the columnar executor cannot carry fall back to the per-row
/// VM inside [`simd::eval_batch_typed`].
struct SimdEval<'a> {
    vm: Vm,
    prog: &'a Program,
    shape: &'a SimdShape,
    /// Unboxed gather buffers, one per UDF parameter.
    typed_bufs: Vec<TypedCol>,
    /// Batch output buffer.
    outs: Vec<Value>,
    cols: &'a [&'a Column],
    /// Liveness-dead parameters: their lanes are zero-filled with a clean
    /// null mask instead of gathering (zero, not NULL, so the substitution
    /// can never force a null-driven bail on a lane nothing reads).
    dead: &'a [bool],
    batch: usize,
    overhead: f64,
}

impl UdfEval for SimdEval<'_> {
    fn eval_rows(
        &mut self,
        rids: &[usize],
        values: &mut Vec<Value>,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<()> {
        let mut start = 0;
        while start < rids.len() {
            let end = (start + self.batch).min(rids.len());
            for ((buf, col), &d) in
                self.typed_bufs.iter_mut().zip(self.cols.iter()).zip(self.dead.iter())
            {
                if d {
                    buf.fill_zero(end - start);
                } else {
                    buf.fill_from_column(col, rids[start..end].iter().copied())?;
                }
            }
            self.outs.clear();
            let mut cost = CostCounter::new();
            simd::eval_batch_typed_with_stats(
                &mut self.vm,
                self.prog,
                self.shape,
                &self.typed_bufs,
                &mut self.outs,
                &mut cost,
                &mut stats.simd,
            )?;
            *work += cost.total + (end - start) as f64 * self.overhead;
            stats.rows += (end - start) as u64;
            stats.batches += 1;
            values.append(&mut self.outs);
            start = end;
        }
        Ok(())
    }
}
