//! Programmatic engine configuration: [`ExecOptions`] (a validating
//! builder) and [`Session`] (an immutable, validated handle that constructs
//! executors and pools).
//!
//! Historically the engine configured itself from `GRACEFUL_*` environment
//! variables at `ExecConfig::default()` time — every construction re-read
//! the environment, and invalid values panicked deep inside worker code.
//! `Session` inverts that: **programs configure the engine; the environment
//! only supplies documented defaults**, resolved exactly once by
//! [`Session::from_env`] (or [`ExecOptions::build_with_env`] when explicit
//! overrides should win over it), with invalid values surfaced as typed
//! [`GracefulError::Config`](graceful_common::GracefulError::Config) errors.
//!
//! ```
//! use graceful_exec::{ExecOptions, Session};
//! use graceful_common::config::{ExecMode, UdfBackend};
//!
//! // Fully programmatic — no environment involved.
//! let session = ExecOptions::new()
//!     .udf_backend(UdfBackend::Vm)
//!     .udf_batch_size(512)
//!     .threads(2)
//!     .morsel_rows(1024)
//!     .mode(ExecMode::Pipeline)
//!     .build()
//!     .expect("valid options");
//! assert_eq!(session.config().udf_batch_size, 512);
//!
//! // Zero values are rejected with a typed error instead of a panic.
//! let err = ExecOptions::new().udf_batch_size(0).build().unwrap_err();
//! assert!(matches!(err, graceful_common::GracefulError::Config(_)));
//!
//! // Environment-defaulted (the one place `GRACEFUL_*` is applied).
//! let session = Session::from_env().expect("valid GRACEFUL_* environment");
//! let _pool = session.pool();
//! ```

use crate::engine::{ExecConfig, Executor, OperatorWeights, QueryRun};
use graceful_common::config::{ExecMode, PlanVerifyMode, UdfBackend};
use graceful_common::Result;
use graceful_plan::Plan;
use graceful_runtime::Pool;
use graceful_storage::Database;
use graceful_udf::CostWeights;

/// Builder for [`Session`]: unset fields fall back to the pure
/// [`ExecConfig::base`] defaults ([`ExecOptions::build`]) or to the
/// environment-resolved defaults ([`ExecOptions::build_with_env`]).
///
/// Every terminal method validates through [`ExecConfig::validated`], so a
/// zero batch/morsel/thread count or a non-finite jitter is a typed
/// `GracefulError::Config` — never a panic, never a silent clamp.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    udf_backend: Option<UdfBackend>,
    udf_batch_size: Option<usize>,
    threads: Option<usize>,
    morsel_rows: Option<usize>,
    jitter: Option<f64>,
    max_intermediate_rows: Option<usize>,
    weights: Option<OperatorWeights>,
    udf_weights: Option<CostWeights>,
    mode: Option<ExecMode>,
    profile: Option<bool>,
    plan_verify: Option<PlanVerifyMode>,
    rewrites: Option<bool>,
    pruning: Option<bool>,
    data_scale: Option<f64>,
}

impl ExecOptions {
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// UDF evaluation backend (all backends are bit-identical).
    pub fn udf_backend(mut self, backend: UdfBackend) -> Self {
        self.udf_backend = Some(backend);
        self
    }

    /// Rows per batch fed to the UDF VM (ignored by the tree-walker).
    pub fn udf_batch_size(mut self, rows: usize) -> Self {
        self.udf_batch_size = Some(rows);
        self
    }

    /// Worker threads for the morsel-driven operator paths (never changes
    /// results, only wall-clock time).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Rows per morsel — the work-accounting grouping unit.
    pub fn morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = Some(rows);
        self
    }

    /// Relative amplitude of the deterministic measurement jitter, in
    /// `[0, 1]`.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Safety cap on intermediate result sizes.
    pub fn max_intermediate_rows(mut self, rows: usize) -> Self {
        self.max_intermediate_rows = Some(rows);
        self
    }

    /// Per-row work weights of the relational operators.
    pub fn weights(mut self, weights: OperatorWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Per-operation work weights of the UDF cost model.
    pub fn udf_weights(mut self, weights: CostWeights) -> Self {
        self.udf_weights = Some(weights);
        self
    }

    /// Execution strategy (pipeline vs materializing; bit-identical).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Attach a per-operator [`crate::ExecProfile`] to every
    /// [`QueryRun`]. Pure observability — profiled and unprofiled runs are
    /// bit-identical in every contracted `QueryRun` field.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = Some(on);
        self
    }

    /// Pre-execution plan verification
    /// ([`graceful_plan::analysis::verify`] plus the physical-plan audit).
    /// Strict by default; [`PlanVerifyMode::Off`] skips the check for
    /// trusted plans.
    pub fn plan_verify(mut self, mode: PlanVerifyMode) -> Self {
        self.plan_verify = Some(mode);
        self
    }

    /// Liveness/constant-fold rewrite hints
    /// ([`graceful_plan::analysis::RewriteSet`]). On by default; turning
    /// them off is bit-identical in every contracted `QueryRun` field (the
    /// verified-rewrite guarantee) and exists for differential testing.
    pub fn rewrites(mut self, on: bool) -> Self {
        self.rewrites = Some(on);
        self
    }

    /// Zone-map scan pruning (see `crate::prune`). On by default; turning
    /// it off is bit-identical in every contracted `QueryRun` field (it
    /// only skips provably-empty filter morsels) and exists for
    /// differential testing.
    pub fn pruning(mut self, on: bool) -> Self {
        self.pruning = Some(on);
        self
    }

    /// Base-row multiplier for generated databases (`GRACEFUL_SCALE`).
    /// Carried on the session so experiment drivers size their
    /// `datagen::generate` calls from the validated knob surface; must be a
    /// finite float > 0.
    pub fn data_scale(mut self, scale: f64) -> Self {
        self.data_scale = Some(scale);
        self
    }

    /// Apply the explicit options over `defaults`.
    fn over(self, defaults: ExecConfig) -> ExecConfig {
        ExecConfig {
            udf_backend: self.udf_backend.unwrap_or(defaults.udf_backend),
            udf_batch_size: self.udf_batch_size.unwrap_or(defaults.udf_batch_size),
            threads: self.threads.unwrap_or(defaults.threads),
            morsel_rows: self.morsel_rows.unwrap_or(defaults.morsel_rows),
            jitter: self.jitter.unwrap_or(defaults.jitter),
            max_intermediate_rows: self
                .max_intermediate_rows
                .unwrap_or(defaults.max_intermediate_rows),
            weights: self.weights.unwrap_or(defaults.weights),
            udf_weights: self.udf_weights.unwrap_or(defaults.udf_weights),
            mode: self.mode.unwrap_or(defaults.mode),
            profile: self.profile.unwrap_or(defaults.profile),
            plan_verify: self.plan_verify.unwrap_or(defaults.plan_verify),
            rewrites: self.rewrites.unwrap_or(defaults.rewrites),
            pruning: self.pruning.unwrap_or(defaults.pruning),
            data_scale: self.data_scale.unwrap_or(defaults.data_scale),
        }
    }

    /// Validate and build a [`Session`] over the pure [`ExecConfig::base`]
    /// defaults — fully environment-free.
    pub fn build(self) -> Result<Session> {
        Ok(Session { config: self.over(ExecConfig::base()).validated()? })
    }

    /// Validate and build a [`Session`] whose unset fields fall back to the
    /// documented `GRACEFUL_*` environment defaults.
    pub fn build_with_env(self) -> Result<Session> {
        Ok(Session { config: self.over(ExecConfig::from_env()?).validated()? })
    }
}

/// A validated engine configuration: the single construction path for
/// executors across the workspace (corpus building, experiments, examples,
/// tests and benches all go through here).
#[derive(Debug, Clone)]
pub struct Session {
    config: ExecConfig,
}

impl Session {
    /// The pure baseline session (no environment reads). Infallible: the
    /// base configuration is valid by construction.
    pub fn new() -> Session {
        Session { config: ExecConfig::base() }
    }

    /// A session from the documented `GRACEFUL_*` environment defaults.
    /// Invalid values are typed `GracefulError::Config` errors.
    pub fn from_env() -> Result<Session> {
        Ok(Session { config: ExecConfig::from_env()?.validated()? })
    }

    /// Start building custom options (alias for [`ExecOptions::new`]).
    pub fn options() -> ExecOptions {
        ExecOptions::new()
    }

    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// An executor over `db` with this session's configuration.
    pub fn executor<'a>(&self, db: &'a Database) -> Executor<'a> {
        Executor::with_config(db, self.config.clone())
    }

    /// A morsel pool with this session's thread budget (for the parallel
    /// loops outside the executor: corpus labelling, CV folds).
    pub fn pool(&self) -> Pool {
        Pool::new(self.config.threads)
    }

    /// Convenience: execute one plan over `db`.
    pub fn run(&self, db: &Database, plan: &Plan, seed: u64) -> Result<QueryRun> {
        self.executor(db).run(plan, seed)
    }

    /// Convenience: execute and write actual cardinalities onto the plan.
    pub fn run_and_annotate(&self, db: &Database, plan: &mut Plan, seed: u64) -> Result<QueryRun> {
        self.executor(db).run_and_annotate(plan, seed)
    }

    /// Convenience: execute one plan and build its
    /// [`FlightRecord`](graceful_obs::flight::FlightRecord) — the `explain
    /// analyze` input, rendered with `FlightRecord::render_analyze()`.
    /// Annotate the plan with a cardinality estimator first to get per-op
    /// q-errors (they are `None` on un-annotated plans). The record is built
    /// locally from the run; the global flight recorder (when enabled)
    /// captures its own copy inside [`Session::run`] as usual.
    pub fn run_analyzed(
        &self,
        db: &Database,
        plan: &Plan,
        seed: u64,
    ) -> Result<(QueryRun, graceful_obs::flight::FlightRecord)> {
        let run = self.run(db, plan, seed)?;
        let record = crate::analyze::flight_record(plan, &self.config, &run, seed, None);
        Ok((run, record))
    }
}

impl Default for Session {
    /// Same as [`Session::new`] — pure, no environment reads.
    fn default() -> Self {
        Session::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_common::GracefulError;

    #[test]
    fn builder_overrides_and_defaults() {
        let s = ExecOptions::new()
            .udf_backend(UdfBackend::Simd)
            .udf_batch_size(77)
            .threads(3)
            .morsel_rows(128)
            .jitter(0.0)
            .max_intermediate_rows(1_000)
            .mode(ExecMode::Materialize)
            .build()
            .unwrap();
        let c = s.config();
        assert_eq!(c.udf_backend, UdfBackend::Simd);
        assert_eq!(c.udf_batch_size, 77);
        assert_eq!(c.threads, 3);
        assert_eq!(c.morsel_rows, 128);
        assert_eq!(c.jitter, 0.0);
        assert_eq!(c.max_intermediate_rows, 1_000);
        assert_eq!(c.mode, ExecMode::Materialize);
        // Unset fields come from the pure base.
        let base = ExecConfig::base();
        assert_eq!(c.weights, base.weights);
        assert_eq!(s.pool().threads(), 3);
    }

    #[test]
    fn zero_values_are_typed_config_errors() {
        for (opts, what) in [
            (ExecOptions::new().udf_batch_size(0), "udf_batch_size"),
            (ExecOptions::new().morsel_rows(0), "morsel_rows"),
            (ExecOptions::new().threads(0), "threads"),
            (ExecOptions::new().max_intermediate_rows(0), "max_intermediate_rows"),
        ] {
            match opts.build() {
                Err(GracefulError::Config(m)) => {
                    assert!(m.contains(what), "message {m:?} names {what}")
                }
                other => panic!("{what}=0 produced {other:?}"),
            }
        }
        assert!(matches!(
            ExecOptions::new().jitter(f64::NAN).build(),
            Err(GracefulError::Config(_))
        ));
        assert!(matches!(ExecOptions::new().jitter(2.0).build(), Err(GracefulError::Config(_))));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            match ExecOptions::new().data_scale(bad).build() {
                Err(GracefulError::Config(m)) => {
                    assert!(m.contains("data_scale"), "message {m:?} names data_scale")
                }
                other => panic!("data_scale={bad} produced {other:?}"),
            }
        }
    }

    #[test]
    fn data_plane_knobs_default_on_and_override() {
        let s = Session::new();
        assert!(s.config().pruning);
        assert_eq!(s.config().data_scale, 1.0);
        let s = ExecOptions::new().pruning(false).data_scale(50.0).build().unwrap();
        assert!(!s.config().pruning);
        assert_eq!(s.config().data_scale, 50.0);
    }

    #[test]
    fn base_session_is_pure_and_valid() {
        let s = Session::new();
        assert_eq!(s.config().udf_backend, UdfBackend::TreeWalk);
        assert_eq!(s.config().mode, ExecMode::Pipeline);
        assert!(s.config().threads >= 1);
    }
}
