//! Estimator-quality telemetry: predicted vs. actual, per operator.
//!
//! The paper's thesis is that a learned model predicts UDF-query cost well —
//! this module is where the system *measures its own prediction quality* at
//! runtime. After every [`crate::Executor::run`], `observe_run` compares
//! the plan's pre-execution annotations (cardinalities from whichever
//! estimator annotated it, work from the closed-form operator cost model
//! below) against the measured truth in the [`QueryRun`], and
//!
//! * aggregates the per-operator **q-errors** into registry histograms
//!   (`est.card.qerror.<kind>` / `est.cost.qerror.<kind>`, with the UDF
//!   backend appended for UDF operators) when profiling is on and the plan
//!   is annotated, and
//! * appends one [`FlightRecord`] to the global flight recorder
//!   (`graceful_obs::flight`, armed by `GRACEFUL_FLIGHT=path`) carrying the
//!   full predicted/actual picture per operator.
//!
//! Q-errors use `graceful_common::metrics::q_error` — the *same* function
//! the paper metrics and the offline flight-record reader use, so a q-error
//! recomputed from a parsed JSONL record matches the registry histograms bit
//! for bit.
//!
//! Everything here is write-only observability, **outside the bit-identity
//! contract**: `tests/parallel_determinism.rs` proves flight-recorded runs
//! are bit-identical to plain runs. When both profiling and the flight
//! recorder are off, `observe_run` costs one relaxed atomic load.

use crate::engine::{ExecConfig, QueryRun};
use crate::profile::plan_op_name;
use graceful_common::config::UdfBackend;
use graceful_common::metrics::q_error;
use graceful_obs::flight::{self, FlightOp, FlightRecord};
use graceful_obs::registry::histogram;
use graceful_plan::{Plan, PlanOpKind};
use graceful_udf::{CostWeights, UdfDef};

/// Loop trip count assumed by the static UDF cost prior. The real trip
/// count is data-dependent (`range(n)` over a column expression); a fixed
/// small prior keeps the estimate cheap and *measurably* wrong — the
/// `est.cost.qerror.udf_*` histograms quantify exactly how wrong, which is
/// the gap the learned estimator exists to close.
pub const ASSUMED_LOOP_TRIPS: f64 = 8.0;

/// Closed-form per-row cost prior for one UDF invocation, from static shape
/// counts only (no execution): invocation overhead plus one arithmetic
/// charge per AST operation, a branch charge per conditional, and
/// [`ASSUMED_LOOP_TRIPS`] iterations per loop. This deliberately ignores
/// operand types, library-call tiers and data-dependent control flow — it
/// is the "what a textbook optimizer would guess" baseline the q-error
/// telemetry scores.
pub fn static_udf_row_cost(def: &UdfDef, n_args: usize, w: &CostWeights) -> f64 {
    w.invoke_base
        + n_args as f64 * w.invoke_per_arg
        + w.return_conv
        + def.op_count() as f64 * w.arith
        + def.branch_count() as f64 * w.branch
        + def.loop_count() as f64 * ASSUMED_LOOP_TRIPS * (w.loop_iter + w.arith)
}

/// Whether `plan` carries cardinality annotations (any estimator ran over
/// it). Un-annotated plans have nothing to score predictions against.
pub fn is_annotated(plan: &Plan) -> bool {
    plan.ops.iter().any(|o| o.est_out_rows > 0.0)
}

/// Predicted work units per operator, mirroring the engine's charging
/// formulas over the plan's *estimated* cardinalities (`est_out_rows`)
/// instead of the measured ones. Same indexing as `plan.ops`. UDF operators
/// use the static per-row prior of [`static_udf_row_cost`].
pub fn estimated_work(plan: &Plan, config: &ExecConfig) -> Vec<f64> {
    let w = &config.weights;
    let est = |i: usize| plan.ops[i].est_out_rows;
    plan.ops
        .iter()
        .enumerate()
        .map(|(i, op)| match &op.kind {
            PlanOpKind::Scan { .. } => est(i) * w.scan_row,
            PlanOpKind::Filter { preds } => {
                est(op.children[0]) * preds.len() as f64 * w.filter_pred
            }
            PlanOpKind::Join { .. } => {
                est(op.children[1]) * w.join_build_row
                    + est(op.children[0]) * w.join_probe_row
                    + est(i) * w.join_out_row
            }
            PlanOpKind::UdfFilter { udf, .. } => {
                let row =
                    static_udf_row_cost(&udf.def, udf.input_columns.len(), &config.udf_weights);
                est(op.children[0]) * (row + w.udf_compare)
            }
            PlanOpKind::UdfProject { udf } => {
                let row =
                    static_udf_row_cost(&udf.def, udf.input_columns.len(), &config.udf_weights);
                est(op.children[0]) * (row + w.project_row)
            }
            PlanOpKind::Agg { .. } => est(op.children[0]) * w.agg_row,
        })
        .collect()
}

fn backend_key(b: UdfBackend) -> &'static str {
    match b {
        UdfBackend::TreeWalk => "treewalk",
        UdfBackend::Vm => "vm",
        UdfBackend::Simd => "simd",
    }
}

/// Registry histogram key suffix for one operator: the lowercase kind name,
/// with the UDF backend appended for UDF operators (their cost error is
/// backend-specific — the static prior knows nothing about SIMD).
fn op_key(kind: &PlanOpKind, backend: UdfBackend) -> String {
    let k = kind.name().to_ascii_lowercase();
    if matches!(kind, PlanOpKind::UdfFilter { .. } | PlanOpKind::UdfProject { .. }) {
        format!("{k}.{}", backend_key(backend))
    } else {
        k
    }
}

/// Build the [`FlightRecord`] for one finished run: the stable plan
/// fingerprint, the exec options, the contracted results, and — per
/// operator — predicted vs. actual rows/work with their q-errors
/// (`None` when the plan was never annotated). `model_pred_ns` is the
/// whole-query model prediction when one was staged. This is the single
/// construction path for `explain analyze`: render it with
/// [`FlightRecord::render_analyze`].
pub fn flight_record(
    plan: &Plan,
    config: &ExecConfig,
    run: &QueryRun,
    seed: u64,
    model_pred_ns: Option<f64>,
) -> FlightRecord {
    let annotated = is_annotated(plan);
    let est_work = estimated_work(plan, config);
    let ops = plan
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            let rows = run.out_rows[i] as u64;
            let work = run.op_work[i];
            let (wall_ns, batches) =
                run.profile.as_ref().map_or((0, 0), |p| (p.ops[i].wall_ns, p.ops[i].batches));
            FlightOp {
                op: plan_op_name(&op.kind),
                kind: op.kind.name().to_string(),
                est_rows: op.est_out_rows,
                rows,
                card_q: annotated.then(|| q_error(op.est_out_rows, rows as f64)),
                est_work: est_work[i],
                work,
                cost_q: annotated.then(|| q_error(est_work[i], work)),
                wall_ns,
                batches,
            }
        })
        .collect();
    FlightRecord {
        seed,
        plan: plan.fingerprint_hex(),
        mode: format!("{:?}", config.mode),
        backend: format!("{:?}", config.udf_backend),
        threads: config.threads as u64,
        morsel: config.morsel_rows as u64,
        udf_batch: config.udf_batch_size as u64,
        wall_ns: run.profile.as_ref().map_or(0, |p| p.total_wall_ns),
        runtime_ns: run.runtime_ns,
        agg_value: run.agg_value,
        udf_rows: run.udf_input_rows as u64,
        model_pred_ns,
        model_q: model_pred_ns.map(|p| q_error(p, run.runtime_ns)),
        ops,
    }
}

/// Post-run observation hook, called by [`crate::Executor::run`] on every
/// successful query. Costs one atomic load when both profiling and the
/// flight recorder are off.
pub(crate) fn observe_run(plan: &Plan, config: &ExecConfig, run: &QueryRun, seed: u64) {
    if !flight::enabled() && !config.profile {
        return;
    }
    if config.profile && is_annotated(plan) {
        let est_work = estimated_work(plan, config);
        for (i, op) in plan.ops.iter().enumerate() {
            let key = op_key(&op.kind, config.udf_backend);
            histogram(&format!("est.card.qerror.{key}"))
                .record(q_error(op.est_out_rows, run.out_rows[i] as f64));
            histogram(&format!("est.cost.qerror.{key}"))
                .record(q_error(est_work[i], run.op_work[i]));
        }
    }
    if flight::enabled() {
        let pred = flight::take_staged_prediction();
        flight::record(&flight_record(plan, config, run, seed, pred));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_plan::{AggFunc, ColRef, PlanOp};
    use graceful_udf::parse_udf;
    use graceful_udf::GeneratedUdf;
    use std::sync::Arc;

    fn udf() -> Arc<GeneratedUdf> {
        let def = parse_udf(
            "def f(x0):\n    z = x0 + 1\n    if x0 < 3:\n        z = z * 2\n    return z\n",
        )
        .unwrap();
        Arc::new(GeneratedUdf {
            source: graceful_udf::print_udf(&def),
            def,
            table: "t".into(),
            input_columns: vec!["x0".into()],
            adaptations: vec![],
        })
    }

    fn annotated_plan() -> Plan {
        let mut plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::UdfFilter {
                        udf: udf(),
                        op: graceful_udf::ast::CmpOp::Ge,
                        literal: 0.0,
                    },
                    vec![0],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![1]),
            ],
            root: 2,
        };
        plan.ops[0].est_out_rows = 100.0;
        plan.ops[1].est_out_rows = 50.0;
        plan.ops[2].est_out_rows = 1.0;
        plan
    }

    #[test]
    fn estimated_work_mirrors_engine_charging() {
        let plan = annotated_plan();
        let config = ExecConfig::base();
        let est = estimated_work(&plan, &config);
        assert_eq!(est.len(), 3);
        assert_eq!(est[0], 100.0 * config.weights.scan_row);
        let row = static_udf_row_cost(&udf().def, 1, &config.udf_weights);
        assert_eq!(est[1], 100.0 * (row + config.weights.udf_compare));
        assert_eq!(est[2], 50.0 * config.weights.agg_row);
        assert!(row > config.udf_weights.invoke_base, "prior counts the body");
    }

    #[test]
    fn join_estimate_uses_both_children_and_output() {
        let mut plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "a".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "b".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("a", "id"),
                        right_col: ColRef::new("b", "a_id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        plan.ops[0].est_out_rows = 10.0;
        plan.ops[1].est_out_rows = 20.0;
        plan.ops[2].est_out_rows = 30.0;
        plan.ops[3].est_out_rows = 1.0;
        let config = ExecConfig::base();
        let w = &config.weights;
        let est = estimated_work(&plan, &config);
        assert_eq!(
            est[2],
            20.0 * w.join_build_row + 10.0 * w.join_probe_row + 30.0 * w.join_out_row
        );
    }

    #[test]
    fn annotation_detection_and_op_keys() {
        let plan = annotated_plan();
        assert!(is_annotated(&plan));
        let mut blank = plan.clone();
        for op in &mut blank.ops {
            op.est_out_rows = 0.0;
        }
        assert!(!is_annotated(&blank));
        assert_eq!(op_key(&plan.ops[0].kind, UdfBackend::Simd), "scan");
        assert_eq!(op_key(&plan.ops[1].kind, UdfBackend::Simd), "udf_filter.simd");
        assert_eq!(op_key(&plan.ops[1].kind, UdfBackend::TreeWalk), "udf_filter.treewalk");
        assert_eq!(op_key(&plan.ops[2].kind, UdfBackend::Vm), "agg");
    }
}
