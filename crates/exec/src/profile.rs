//! Opt-in per-query execution profiles.
//!
//! When [`crate::ExecOptions::profile`] (or `GRACEFUL_PROFILE=1`) is on, both
//! executor modes attach an [`ExecProfile`] to the [`crate::QueryRun`]:
//! per-plan-operator wall time, output rows, batch counts, accounted work and
//! — for the UDF operators — backend effectiveness counters (SIMD fast-path
//! vs per-row bail rows, group splits).
//!
//! # Outside the bit-identity contract
//!
//! Like [`crate::QueryRun::peak_inter_rows`], the profile is an
//! execution-strategy observation, **not** part of the bit-identity
//! contract: wall times are real `Instant` measurements and batch counts
//! depend on the executor mode. None of the contracted fields (`runtime_ns`,
//! `out_rows`, `op_work`, `agg_value`, `udf_input_rows`) read anything the
//! profiler writes — `tests/parallel_determinism.rs` proves runs with
//! profiling on and off stay bit-identical.
//!
//! Wall-time attribution in the pipeline executor uses *self time*: the
//! driver marks operator enter/exit around the recursive batch cascade and
//! attributes each elapsed slice to the operator on top of the stack, so a
//! downstream operator's time is never double-counted into its upstream.

use crate::engine::ExecConfig;
use crate::udf_eval::UdfEvalStats;
use graceful_common::config::{ExecMode, UdfBackend};
use graceful_plan::{Plan, PlanOpKind};
use std::fmt::Write as _;

/// Per-query execution profile, one [`OpProfile`] per logical plan operator
/// (same indexing as `plan.ops`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Executor mode the query ran under.
    pub mode: ExecMode,
    /// UDF backend the query ran under.
    pub backend: UdfBackend,
    /// Worker-thread budget.
    pub threads: usize,
    /// Rows per morsel.
    pub morsel_rows: usize,
    /// Rows per UDF VM batch.
    pub udf_batch_size: usize,
    /// Total wall time of the executor call, in nanoseconds.
    pub total_wall_ns: u64,
    /// Per-operator profiles, aligned with `plan.ops`.
    pub ops: Vec<OpProfile>,
}

/// Profile of one logical plan operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Human-readable operator description (kind plus its key argument).
    pub name: String,
    /// Wall self-time attributed to this operator, in nanoseconds. In
    /// pipeline mode a hash join's build side and the final collect fold
    /// into their owning plan operator.
    pub wall_ns: u64,
    /// Output cardinality (same value as `QueryRun::out_rows`).
    pub rows_out: usize,
    /// Batches this operator processed: input batches pushed in pipeline
    /// mode (plus one for `finish`-only blocking operators), always 1 in
    /// materialize mode, morsel count for scans.
    pub batches: u64,
    /// Accounted work units (same value as `QueryRun::op_work`).
    pub work: f64,
    /// UDF evaluation counters, for `UdfFilter` / `UdfProject` only.
    pub udf: Option<UdfOpProfile>,
}

/// UDF-backend effectiveness counters for one UDF operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdfOpProfile {
    /// Backend that evaluated this operator.
    pub backend: UdfBackend,
    /// Rows evaluated.
    pub rows: u64,
    /// Internal evaluation batches (per row for the tree-walker).
    pub batches: u64,
    /// Rows carried end-to-end by the typed columnar fast path.
    pub simd_fast_rows: u64,
    /// Rows that bailed to the per-row VM.
    pub simd_bail_rows: u64,
    /// Selection-vector group splits at branch divergence.
    pub simd_group_splits: u64,
}

impl UdfOpProfile {
    pub(crate) fn from_stats(backend: UdfBackend, s: &UdfEvalStats) -> Self {
        UdfOpProfile {
            backend,
            rows: s.rows,
            batches: s.batches,
            simd_fast_rows: s.simd.fast_rows,
            simd_bail_rows: s.simd.bail_rows,
            simd_group_splits: s.simd.group_splits,
        }
    }

    /// Fraction of evaluated rows that bailed from the columnar fast path
    /// to the per-row VM (0.0 for the scalar backends and for zero rows).
    pub fn bail_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.simd_bail_rows as f64 / self.rows as f64
        }
    }
}

/// Human-readable operator description for the profile / explain output.
pub(crate) fn plan_op_name(kind: &PlanOpKind) -> String {
    match kind {
        PlanOpKind::Scan { table } => format!("SCAN {table}"),
        PlanOpKind::Filter { preds } => format!("FILTER[{}]", preds.len()),
        PlanOpKind::Join { left_col, right_col } => format!("JOIN {left_col}={right_col}"),
        PlanOpKind::UdfFilter { udf, op, literal } => {
            format!("UDF_FILTER {}(..) {op:?} {literal}", udf.def.name)
        }
        PlanOpKind::UdfProject { udf } => format!("UDF_PROJECT {}(..)", udf.def.name),
        PlanOpKind::Agg { func, .. } => format!("AGG {func:?}"),
    }
}

impl ExecProfile {
    /// Assemble a profile from per-operator accumulators. `wall_ns`,
    /// `batches` and `udf_stats` are indexed like `plan.ops`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        plan: &Plan,
        config: &ExecConfig,
        total_wall_ns: u64,
        wall_ns: &[u64],
        batches: &[u64],
        out_rows: &[usize],
        op_work: &[f64],
        udf_stats: &[Option<UdfEvalStats>],
    ) -> Self {
        let ops = plan
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| OpProfile {
                name: plan_op_name(&op.kind),
                wall_ns: wall_ns[i],
                rows_out: out_rows[i],
                batches: batches[i],
                work: op_work[i],
                udf: udf_stats[i].as_ref().map(|s| UdfOpProfile::from_stats(config.udf_backend, s)),
            })
            .collect();
        ExecProfile {
            mode: config.mode,
            backend: config.udf_backend,
            threads: config.threads,
            morsel_rows: config.morsel_rows,
            udf_batch_size: config.udf_batch_size,
            total_wall_ns,
            ops,
        }
    }

    /// Render the profile as an aligned explain-style table.
    pub fn explain(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "QUERY PROFILE  mode={:?} backend={:?} threads={} morsel={} udf_batch={} wall={}",
            self.mode,
            self.backend,
            self.threads,
            self.morsel_rows,
            self.udf_batch_size,
            fmt_ns(self.total_wall_ns),
        );
        let name_w = self.ops.iter().map(|o| o.name.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            s,
            "  {:>2}  {:<name_w$}  {:>10}  {:>10}  {:>8}  {:>14}  udf",
            "#", "op", "wall", "rows", "batches", "work",
        );
        for (i, op) in self.ops.iter().enumerate() {
            let udf = match &op.udf {
                None => String::new(),
                Some(u) => format!(
                    "{:?} rows={} batches={} fast={} bail={} ({:.1}%) splits={}",
                    u.backend,
                    u.rows,
                    u.batches,
                    u.simd_fast_rows,
                    u.simd_bail_rows,
                    u.bail_rate() * 100.0,
                    u.simd_group_splits,
                ),
            };
            let _ = writeln!(
                s,
                "  {:>2}  {:<name_w$}  {:>10}  {:>10}  {:>8}  {:>14.1}  {}",
                i,
                op.name,
                fmt_ns(op.wall_ns),
                op.rows_out,
                op.batches,
                op.work,
                udf,
            );
        }
        s
    }
}

/// Format nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bail_rate_is_guarded_and_proportional() {
        let mut s = UdfEvalStats::default();
        let empty = UdfOpProfile::from_stats(UdfBackend::Simd, &s);
        assert_eq!(empty.bail_rate(), 0.0);
        s.rows = 200;
        s.simd.bail_rows = 50;
        let p = UdfOpProfile::from_stats(UdfBackend::Simd, &s);
        assert_eq!(p.bail_rate(), 0.25);
    }

    #[test]
    fn fmt_ns_picks_adaptive_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
