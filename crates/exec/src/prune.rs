//! Zone-map scan pruning: skip whole morsels that provably match nothing.
//!
//! Generated base tables carry per-block min/max summaries
//! ([`graceful_storage::Zone`], [`ZONE_ROWS`] rows per block). When a filter
//! runs directly over a scan's identity row ids, each morsel covers a
//! contiguous row range, so a conjunct that provably fails on every zone
//! overlapping that range empties the morsel without evaluating a single
//! row. Pruning is an **execution shortcut, not a semantics change**: the
//! filter's work is charged closed-form over the full input before any
//! morsel runs, and a pruned morsel contributes exactly the zero kept rows
//! it would have produced row by row — so every contracted `QueryRun` field
//! is bit-identical with pruning on or off (the differential suite proves
//! it; `ExecConfig::pruning` exists for that).
//!
//! The decision logic mirrors [`Pred::matches`] conservatively:
//! `Value::compare` widens both sides to `f64` (except Text/Text and
//! Bool/Bool, which order consistently with their widening), NULL on either
//! side never matches, and NaN comparisons are always false. A zone may
//! only be rejected when *no* row in it can match; any uncertainty — no
//! zones computed, text columns, stale block counts — falls back to row
//! evaluation.
//!
//! Every pruned morsel increments the registry counter
//! `scan.pruned_morsels`.

use graceful_obs::registry::{counter, Counter};
use graceful_plan::Pred;
use graceful_storage::{Table, Value, Zone, ZONE_ROWS};
use graceful_udf::ast::CmpOp;
use std::ops::Range;
use std::sync::OnceLock;

/// Registry counter for morsels skipped by zone pruning.
pub(crate) fn pruned_morsels_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| counter("scan.pruned_morsels"))
}

/// True when `pred` provably matches no row of `table` in `rows` (a
/// contiguous base-table row range). `false` means "cannot prove it" — the
/// caller evaluates row by row.
pub(crate) fn pred_prunes_range(table: &Table, pred: &Pred, rows: Range<usize>) -> bool {
    if rows.is_empty() {
        return false;
    }
    let Ok(col) = table.column(&pred.col.column) else { return false };
    let Some(zones) = col.zones() else { return false };
    // Zones exist only on numeric-ish columns (Int/Float/Bool and the
    // encoded int representations). Classify the literal the way
    // `Value::compare` will see it against such a column:
    let v = match &pred.value {
        // NULL literal: compare() is None for every row — nothing matches.
        Value::Null => return true,
        // Text literal vs numeric column: both sides widen via as_f64 and
        // Text has none — nothing matches.
        Value::Text(_) => return true,
        v => v.as_f64().expect("Int/Float/Bool literals widen"),
    };
    // NaN literal: partial_cmp is None for every row — nothing matches.
    if v.is_nan() {
        return true;
    }
    let first = rows.start / ZONE_ROWS;
    let last = (rows.end - 1) / ZONE_ROWS;
    // A stale zone vector (data mutated outside the sanctioned paths)
    // surfaces as an out-of-range block index; never prune on it.
    let Some(covering) = zones.get(first..=last) else { return false };
    covering.iter().all(|z| zone_rejects(z, pred.op, v))
}

/// True when no row summarized by `z` can satisfy `col OP v`.
fn zone_rejects(z: &Zone, op: CmpOp, v: f64) -> bool {
    // A block of only NULL/NaN rows matches nothing regardless of OP.
    if !z.any_matchable {
        return true;
    }
    // min/max summarize the matchable rows; NULL and NaN rows never match,
    // so they cannot weaken these bounds.
    match op {
        CmpOp::Lt => z.min >= v,
        CmpOp::Le => z.min > v,
        CmpOp::Gt => z.max <= v,
        CmpOp::Ge => z.max < v,
        CmpOp::Eq => v < z.min || v > z.max,
        // `!=` only fails everywhere when every matchable row equals v.
        CmpOp::Ne => z.min == v && z.max == v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::{Column, ColumnData};

    fn zoned_table(data: ColumnData, nulls: Vec<bool>) -> Table {
        let mut col = Column::with_nulls("x", data, nulls);
        col.compute_zones();
        Table::new("t", vec![col]).unwrap()
    }

    fn pred(op: CmpOp, value: Value) -> Pred {
        Pred::new("t", "x", op, value)
    }

    /// Pruning ground truth: a range may be pruned only if no row matches.
    fn check_sound(t: &Table, p: &Pred, n: usize) {
        for (start, end) in [(0, n), (0, n.min(700)), (n / 2, n)] {
            if start >= end {
                continue;
            }
            if pred_prunes_range(t, p, start..end) {
                for r in start..end {
                    assert!(!p.matches(t, r), "pruned range hides a match at row {r}: {p:?}");
                }
            }
        }
    }

    #[test]
    fn int_range_pruning_fires_and_is_sound() {
        let n = ZONE_ROWS * 2;
        let t = zoned_table(ColumnData::Int((0..n as i64).collect()), vec![false; n]);
        // All values in the first block are < ZONE_ROWS.
        assert!(pred_prunes_range(&t, &pred(CmpOp::Ge, Value::Int(ZONE_ROWS as i64)), 0..100));
        assert!(!pred_prunes_range(&t, &pred(CmpOp::Ge, Value::Int(50)), 0..100));
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            for lit in [-1i64, 0, 77, ZONE_ROWS as i64, (2 * ZONE_ROWS) as i64, i64::MAX] {
                check_sound(&t, &pred(op, Value::Int(lit)), n);
            }
        }
    }

    #[test]
    fn adversarial_literals_prune_everything_soundly() {
        let n = ZONE_ROWS;
        let t = zoned_table(ColumnData::Int((0..n as i64).collect()), vec![false; n]);
        for lit in [Value::Null, Value::Float(f64::NAN), Value::Text("0".into())] {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt] {
                let p = pred(op, lit.clone());
                assert!(pred_prunes_range(&t, &p, 0..n), "{p:?} can never match");
                check_sound(&t, &p, n);
            }
        }
    }

    #[test]
    fn all_null_and_nan_blocks_are_unmatchable() {
        let n = ZONE_ROWS * 2;
        let mut vals = vec![1.0f64; n];
        for v in vals.iter_mut().take(ZONE_ROWS) {
            *v = f64::NAN;
        }
        let nulls: Vec<bool> = (0..n).map(|r| r >= ZONE_ROWS).collect();
        let t = zoned_table(ColumnData::Float(vals), nulls);
        // Block 0 is all NaN, block 1 all NULL: every predicate prunes.
        let p = pred(CmpOp::Ne, Value::Float(0.0));
        assert!(pred_prunes_range(&t, &p, 0..n));
        check_sound(&t, &p, n);
    }

    #[test]
    fn i64_extremes_stay_sound() {
        let t = zoned_table(ColumnData::Int(vec![i64::MIN, -1, 1, i64::MAX]), vec![false; 4]);
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            for lit in [i64::MIN, i64::MIN + 1, 0, i64::MAX - 1, i64::MAX] {
                check_sound(&t, &pred(op, Value::Int(lit)), 4);
            }
        }
        // min == max == v: Ne prunes a constant block.
        let c = zoned_table(ColumnData::Int(vec![7; 100]), vec![false; 100]);
        assert!(pred_prunes_range(&c, &pred(CmpOp::Ne, Value::Int(7)), 0..100));
        assert!(!pred_prunes_range(&c, &pred(CmpOp::Eq, Value::Int(7)), 0..100));
    }

    #[test]
    fn no_zones_means_no_pruning() {
        // Text columns never carry zones; columns without compute_zones()
        // don't either.
        let t =
            Table::new("t", vec![Column::new("x", ColumnData::Text(vec!["a".into(), "b".into()]))])
                .unwrap();
        assert!(!pred_prunes_range(&t, &pred(CmpOp::Eq, Value::Text("zz".into())), 0..2));
        let plain = Table::new("t", vec![Column::new("x", ColumnData::Int(vec![1, 2]))]).unwrap();
        assert!(!pred_prunes_range(&plain, &pred(CmpOp::Gt, Value::Int(100)), 0..2));
    }
}
