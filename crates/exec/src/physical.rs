//! The physical-operator pipeline executor.
//!
//! [`lower`] turns a logical [`Plan`] into a [`PhysicalPlan`]: a set of
//! [`Pipeline`]s, each a scan source followed by streaming operators and
//! terminated by a sink (hash-join build, aggregate, or plain collect).
//! [`execute`] then pushes fixed-size [`Batch`]es of row ids through each
//! pipeline's [`Operator`] chain, so peak memory for a non-blocking chain is
//! bounded by O(threads × morsel × pipeline depth) instead of the full
//! intermediate cardinality the materializing executor holds. Hash-join
//! build sides are the one deliberate exception — a build side is
//! materialized by construction, exactly as in any hash-join engine.
//!
//! # Bit-identity with the materializing executor
//!
//! The pipeline reproduces `ExecMode::Materialize` *exactly* — every
//! `QueryRun` value, cardinality and accounted work total is bit-identical,
//! at every thread count, batch size and UDF backend. Floats make this a
//! scheduling problem, not just a semantics problem; three rules solve it:
//!
//! 1. **Morsel-aligned rebatching.** Each parallel operator buffers its
//!    input and only evaluates *complete* `morsel_rows`-row morsels
//!    mid-stream (the ragged tail waits for `finish`). An operator's morsel
//!    boundaries therefore sit at the same row offsets of its input stream
//!    as the materializing engine's `Pool::morsel_range` partition — no
//!    matter how the upstream operators batched their output — so per-morsel
//!    work sums group identically.
//! 2. **Ordered merges.** Per-morsel results merge in morsel-index order
//!    (the runtime's standard contract), and `work` accumulators fold those
//!    sums in the same order as the materializing loop.
//! 3. **Closed-form charges at `finish`.** Work terms the materializing
//!    engine computes from whole-input counts (`n × scan_row`,
//!    `n × preds × filter_pred`, the join build/probe/output terms,
//!    `n × agg_row`) are charged once at finish from the same counts with
//!    the same expressions, not accumulated per batch.
//!
//! Flush timing — how many full morsels an operator queues before running
//! them in parallel — affects only wall-clock behaviour, never boundaries or
//! merge order, so results are independent of the thread count.
//!
//! Structural plan validation (unbound tables, missing UdfProject below an
//! aggregate) happens during lowering or operator construction, before rows
//! flow; data-dependent errors (the `max_intermediate_rows` valve) surface
//! mid-stream as typed [`GracefulError::InvalidPlan`] just like the
//! materializing path. Under [`PlanVerifyMode::Strict`] the lowered plan is
//! additionally audited by [`verify_physical`] — pipeline shape, sink
//! placement, build/probe ordering, stride bookkeeping and the
//! plan-index/work-charge mapping — so a malformed `PhysicalPlan` is
//! rejected as a typed [`GracefulError::PlanVerify`] instead of panicking
//! or silently mis-charging work.
//!
//! # Verified rewrites
//!
//! [`lower_with`] accepts the same [`RewriteSet`] the materializing engine
//! consumes and applies the identical execution hints: constant-foldable
//! predicates are skipped (`AlwaysTrue`) or short-circuit the filter
//! (`AlwaysFalse`), and join lanes that liveness proves dead above the join
//! are dropped from build storage and probe output. Work charges are
//! closed-form from the *logical* operator (a filter charges
//! `n × preds.len()` regardless of folding), so the rewrites keep every
//! `QueryRun` value bit-identical with the unrewritten run.

use crate::engine::{cmp_f64, jitter_factor, AggState, ExecConfig, QueryRun};
use crate::profile::ExecProfile;
use crate::udf_eval::{record_udf_metrics, UdfEvalSpec, UdfEvalStats};
use graceful_common::config::PlanVerifyMode;
use graceful_common::{GracefulError, Result};
use graceful_obs::trace;
use graceful_plan::analysis::join_keep_lanes;
use graceful_plan::{AggFunc, ColRef, Plan, PlanOpKind, Pred, PredFold, RewriteSet};
use graceful_runtime::Pool;
use graceful_storage::{Column, Database, Table, Value};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Physical plan representation (pure lowering, no data access)

/// A lowered plan: pipelines in execution order (every hash-join build
/// pipeline precedes the pipeline that probes it; the final pipeline carries
/// the root).
#[derive(Debug)]
pub struct PhysicalPlan<'p> {
    pub pipelines: Vec<Pipeline<'p>>,
}

/// One streaming chain: `ops[0]` is always [`PhysicalOpKind::Scan`], the
/// last element is a sink (`HashJoinBuild`, `Agg` or `Collect`), and
/// everything between streams batches.
#[derive(Debug)]
pub struct Pipeline<'p> {
    pub ops: Vec<PhysicalOp<'p>>,
}

/// One physical operator node plus the logical plan operator it accounts its
/// work and output cardinality to (`None` for nodes that are bookkeeping
/// halves of a logical operator, like the build side of a join, or pure
/// terminators like `Collect`).
#[derive(Debug)]
pub struct PhysicalOp<'p> {
    pub kind: PhysicalOpKind<'p>,
    pub plan_idx: Option<usize>,
}

/// Physical operator kinds. `stride` fields are the width (bound base
/// tables) of the operator's *input* row tuples; `pos` fields are resolved
/// first-occurrence positions within that tuple.
#[derive(Debug)]
pub enum PhysicalOpKind<'p> {
    /// Source: emits morsel-sized batches of consecutive row ids.
    Scan { table: &'p str },
    /// Conjunctive predicate filter; `positions[i]` locates `preds[i]`'s
    /// table in the input tuple. `folds[i]` is the statically proven verdict
    /// for `preds[i]` (all `Keep` when lowered without rewrites).
    Filter { preds: &'p [Pred], positions: Vec<usize>, folds: Vec<PredFold>, stride: usize },
    /// Filter on a UDF's output: `udf(args...) cmp literal`.
    UdfFilter { udf: &'p GeneratedUdf, cmp: CmpOp, literal: f64, pos: usize, stride: usize },
    /// Compute the UDF per row as a projected column travelling with the
    /// batch (consumed by `Agg`).
    UdfProject { udf: &'p GeneratedUdf, pos: usize, stride: usize },
    /// Pipeline-breaking sink: materializes its input as a hash table keyed
    /// by `key`; the owning pipeline's result is consumed by the matching
    /// `HashJoinProbe`. Only the input lanes listed in `keep` are stored —
    /// liveness-pruned dead lanes never enter the build table (the key is
    /// read from the *input* tuple at `pos`, so the key lane itself may be
    /// pruned from storage).
    HashJoinBuild { key: &'p ColRef, pos: usize, stride: usize, keep: Vec<usize> },
    /// Streaming probe against build pipeline `build` (an index into
    /// [`PhysicalPlan::pipelines`]); emits `left[keep] ++ build` tuples
    /// (`keep` lists the surviving left lanes; the build side was already
    /// pruned at build time).
    HashJoinProbe { key: &'p ColRef, pos: usize, stride: usize, build: usize, keep: Vec<usize> },
    /// Final aggregate sink. `column` is `Some((col, pos))` for a base-table
    /// aggregate; `None` aggregates the UDF-projected column
    /// (`expects_computed` records whether the direct child is a
    /// `UdfProject`, the structural requirement for that).
    Agg {
        func: AggFunc,
        column: Option<(&'p ColRef, usize)>,
        expects_computed: bool,
        stride: usize,
    },
    /// Terminator for non-aggregate roots: swallows batches (the root
    /// operator's counts were already accounted by the node producing them).
    Collect,
}

impl PhysicalOpKind<'_> {
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOpKind::Scan { .. } => "SCAN",
            PhysicalOpKind::Filter { .. } => "FILTER",
            PhysicalOpKind::UdfFilter { .. } => "UDF_FILTER",
            PhysicalOpKind::UdfProject { .. } => "UDF_PROJECT",
            PhysicalOpKind::HashJoinBuild { .. } => "HASH_BUILD",
            PhysicalOpKind::HashJoinProbe { .. } => "HASH_PROBE",
            PhysicalOpKind::Agg { .. } => "AGG",
            PhysicalOpKind::Collect => "COLLECT",
        }
    }
}

impl PhysicalPlan<'_> {
    /// EXPLAIN-style rendering: one line per pipeline.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, pipe) in self.pipelines.iter().enumerate() {
            let _ = write!(out, "Pipeline {i}:");
            for op in &pipe.ops {
                let label = match &op.kind {
                    PhysicalOpKind::Scan { table } => format!("SCAN {table}"),
                    PhysicalOpKind::Filter { preds, .. } => {
                        format!("FILTER[{}]", preds.len())
                    }
                    PhysicalOpKind::UdfFilter { udf, cmp, literal, .. } => {
                        format!("UDF_FILTER {}(...) {} {literal}", udf.def.name, cmp.symbol())
                    }
                    PhysicalOpKind::UdfProject { udf, .. } => {
                        format!("UDF_PROJECT {}(...)", udf.def.name)
                    }
                    PhysicalOpKind::HashJoinBuild { key, .. } => format!("HASH_BUILD {key}"),
                    PhysicalOpKind::HashJoinProbe { key, build, .. } => {
                        format!("HASH_PROBE {key} (build: pipeline {build})")
                    }
                    PhysicalOpKind::Agg { func, column, .. } => match column {
                        Some((c, _)) => format!("AGG {}({c})", func.name()),
                        None => format!("AGG {}", func.name()),
                    },
                    PhysicalOpKind::Collect => "COLLECT".to_string(),
                };
                let _ = write!(out, " -> {label}");
            }
            out.push('\n');
        }
        out
    }
}

/// Lower a logical plan into its physical-operator pipelines with no
/// rewrite hints (every predicate kept, every join lane stored).
pub fn lower(plan: &Plan) -> Result<PhysicalPlan<'_>> {
    lower_with(plan, None)
}

/// Lower a logical plan into its physical-operator pipelines, applying the
/// verified rewrite hints when given. Pure plan analysis: table-binding
/// positions are resolved (with the same errors the materializing executor
/// raises), but no data is touched.
pub fn lower_with<'p>(plan: &'p Plan, rewrites: Option<&RewriteSet>) -> Result<PhysicalPlan<'p>> {
    plan.validate()?;
    let mut pipelines = Vec::new();
    let (mut ops, _tables) = lower_subtree(plan, plan.root, &mut pipelines, rewrites)?;
    if !matches!(ops.last().map(|o| &o.kind), Some(PhysicalOpKind::Agg { .. })) {
        ops.push(PhysicalOp { kind: PhysicalOpKind::Collect, plan_idx: None });
    }
    pipelines.push(Pipeline { ops });
    Ok(PhysicalPlan { pipelines })
}

/// Recursively lower the subtree rooted at `idx`; returns the streaming
/// chain so far plus the bound-table list of its output tuples. Join build
/// sides are completed into `pipelines` along the way.
fn lower_subtree<'p>(
    plan: &'p Plan,
    idx: usize,
    pipelines: &mut Vec<Pipeline<'p>>,
    rewrites: Option<&RewriteSet>,
) -> Result<(Vec<PhysicalOp<'p>>, Vec<&'p str>)> {
    let op = &plan.ops[idx];
    match &op.kind {
        PlanOpKind::Scan { table } => Ok((
            vec![PhysicalOp { kind: PhysicalOpKind::Scan { table }, plan_idx: Some(idx) }],
            vec![table.as_str()],
        )),
        PlanOpKind::Filter { preds } => {
            let (mut ops, tables) = lower_subtree(plan, op.children[0], pipelines, rewrites)?;
            let positions = preds
                .iter()
                .map(|p| {
                    table_pos(&tables, &p.col.table).ok_or_else(|| {
                        GracefulError::InvalidPlan(format!(
                            "filter on unbound table {}",
                            p.col.table
                        ))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let folds = match rewrites {
                Some(rw) => (0..preds.len()).map(|k| rw.fold_for(idx, k)).collect(),
                None => vec![PredFold::Keep; preds.len()],
            };
            ops.push(PhysicalOp {
                kind: PhysicalOpKind::Filter { preds, positions, folds, stride: tables.len() },
                plan_idx: Some(idx),
            });
            Ok((ops, tables))
        }
        PlanOpKind::UdfFilter { udf, op: cmp, literal } => {
            let (mut ops, tables) = lower_subtree(plan, op.children[0], pipelines, rewrites)?;
            let pos = udf_pos(&tables, udf)?;
            ops.push(PhysicalOp {
                kind: PhysicalOpKind::UdfFilter {
                    udf,
                    cmp: *cmp,
                    literal: *literal,
                    pos,
                    stride: tables.len(),
                },
                plan_idx: Some(idx),
            });
            Ok((ops, tables))
        }
        PlanOpKind::UdfProject { udf } => {
            let (mut ops, tables) = lower_subtree(plan, op.children[0], pipelines, rewrites)?;
            let pos = udf_pos(&tables, udf)?;
            ops.push(PhysicalOp {
                kind: PhysicalOpKind::UdfProject { udf, pos, stride: tables.len() },
                plan_idx: Some(idx),
            });
            Ok((ops, tables))
        }
        PlanOpKind::Join { left_col, right_col } => {
            // Build on the right side (the newly joined table), then
            // continue the left side's pipeline through the probe.
            let (mut rops, rtables) = lower_subtree(plan, op.children[1], pipelines, rewrites)?;
            let rpos = table_pos(&rtables, &right_col.table).ok_or_else(|| {
                GracefulError::InvalidPlan(format!("join col {right_col} not on right side"))
            })?;
            // The build's kept lanes depend on the left side's table list
            // too (duplicate names across the sides veto pruning), which is
            // only known after the left subtree lowers; push the build with
            // all lanes kept and patch it below.
            rops.push(PhysicalOp {
                kind: PhysicalOpKind::HashJoinBuild {
                    key: right_col,
                    pos: rpos,
                    stride: rtables.len(),
                    keep: (0..rtables.len()).collect(),
                },
                plan_idx: None,
            });
            pipelines.push(Pipeline { ops: rops });
            let build = pipelines.len() - 1;
            let (mut lops, ltables) = lower_subtree(plan, op.children[0], pipelines, rewrites)?;
            let lpos = table_pos(&ltables, &left_col.table).ok_or_else(|| {
                GracefulError::InvalidPlan(format!("join col {left_col} not on left side"))
            })?;
            let (keep_l, keep_r) = match rewrites {
                Some(rw) => join_keep_lanes(&rw.live_above[idx], &ltables, &rtables)
                    .unwrap_or_else(|| all_lanes(ltables.len(), rtables.len())),
                None => all_lanes(ltables.len(), rtables.len()),
            };
            if let Some(PhysicalOp { kind: PhysicalOpKind::HashJoinBuild { keep, .. }, .. }) =
                pipelines[build].ops.last_mut()
            {
                keep.clone_from(&keep_r);
            }
            let mut out_tables: Vec<&'p str> = keep_l.iter().map(|&i| ltables[i]).collect();
            out_tables.extend(keep_r.iter().map(|&i| rtables[i]));
            lops.push(PhysicalOp {
                kind: PhysicalOpKind::HashJoinProbe {
                    key: left_col,
                    pos: lpos,
                    stride: ltables.len(),
                    build,
                    keep: keep_l,
                },
                plan_idx: Some(idx),
            });
            Ok((lops, out_tables))
        }
        PlanOpKind::Agg { func, column } => {
            let child = op.children[0];
            let (mut ops, tables) = lower_subtree(plan, child, pipelines, rewrites)?;
            let column = match column {
                Some(c) => {
                    let pos = table_pos(&tables, &c.table).ok_or_else(|| {
                        GracefulError::InvalidPlan(format!("agg on unbound table {}", c.table))
                    })?;
                    Some((c, pos))
                }
                None => None,
            };
            let expects_computed = matches!(plan.ops[child].kind, PlanOpKind::UdfProject { .. });
            if *func != AggFunc::CountStar && column.is_none() && !expects_computed {
                return Err(GracefulError::InvalidPlan(
                    "agg over UDF output requires a UdfProject below".into(),
                ));
            }
            ops.push(PhysicalOp {
                kind: PhysicalOpKind::Agg {
                    func: *func,
                    column,
                    expects_computed,
                    stride: tables.len(),
                },
                plan_idx: Some(idx),
            });
            Ok((ops, tables))
        }
    }
}

/// First occurrence of `table` in the bound-table list — the same
/// first-match rule `Inter::table_pos` uses.
fn table_pos(tables: &[&str], table: &str) -> Option<usize> {
    tables.iter().position(|t| *t == table)
}

/// Keep-every-lane fallback for a join: all left lanes, all right lanes.
fn all_lanes(l: usize, r: usize) -> (Vec<usize>, Vec<usize>) {
    ((0..l).collect(), (0..r).collect())
}

fn udf_pos(tables: &[&str], udf: &GeneratedUdf) -> Result<usize> {
    table_pos(tables, &udf.table)
        .ok_or_else(|| GracefulError::InvalidPlan(format!("UDF table {} not bound", udf.table)))
}

// ---------------------------------------------------------------------------
// Physical-plan audit

/// Does a physical node implement this logical operator? (A join's logical
/// op is carried by the probe; builds and collects are plan-less.)
fn kinds_match(phys: &PhysicalOpKind<'_>, logical: &PlanOpKind) -> bool {
    matches!(
        (phys, logical),
        (PhysicalOpKind::Scan { .. }, PlanOpKind::Scan { .. })
            | (PhysicalOpKind::Filter { .. }, PlanOpKind::Filter { .. })
            | (PhysicalOpKind::UdfFilter { .. }, PlanOpKind::UdfFilter { .. })
            | (PhysicalOpKind::UdfProject { .. }, PlanOpKind::UdfProject { .. })
            | (PhysicalOpKind::HashJoinProbe { .. }, PlanOpKind::Join { .. })
            | (PhysicalOpKind::Agg { .. }, PlanOpKind::Agg { .. })
    )
}

/// Audit a lowered [`PhysicalPlan`] against the logical plan it came from.
/// Run under [`PlanVerifyMode::Strict`] before any rows flow, this promotes
/// the executor's internal invariants to typed [`GracefulError::PlanVerify`]
/// errors:
///
/// * every pipeline is non-empty, headed by a scan, and terminated by the
///   right sink (hash build for non-final pipelines; aggregate or collect
///   for the final one);
/// * every probe references an *earlier* pipeline that ends in a build;
/// * declared strides match the tuple width actually flowing at that point
///   (including lane-pruned join outputs), and every resolved position and
///   kept lane falls inside its input stride;
/// * work-charge placement is sound — every physical node is bound to a
///   logical operator of the corresponding kind (builds and collects are
///   the plan-less exceptions), each logical operator is charged by exactly
///   one physical node, and none is left uncharged.
pub fn verify_physical(phys: &PhysicalPlan<'_>, plan: &Plan) -> Result<()> {
    fn fail(pi: usize, k: usize, name: &str, msg: String) -> GracefulError {
        GracefulError::PlanVerify(format!("pipeline {pi} op {k} ({name}): {msg}"))
    }
    fn check_stride(pi: usize, k: usize, name: &str, declared: usize, width: usize) -> Result<()> {
        if declared != width {
            return Err(fail(
                pi,
                k,
                name,
                format!("declares input stride {declared} but {width} lanes flow into it"),
            ));
        }
        Ok(())
    }
    if phys.pipelines.is_empty() {
        return Err(GracefulError::PlanVerify("physical plan has no pipelines".into()));
    }
    let n_pipes = phys.pipelines.len();
    let mut seen = vec![false; plan.ops.len()];
    // Post-pruning output widths of build-terminated pipelines.
    let mut build_out: Vec<Option<usize>> = vec![None; n_pipes];
    for (pi, pipe) in phys.pipelines.iter().enumerate() {
        let final_pipe = pi == n_pipes - 1;
        if pipe.ops.is_empty() {
            return Err(GracefulError::PlanVerify(format!("pipeline {pi} has no operators")));
        }
        let mut width = 0usize;
        for (k, op) in pipe.ops.iter().enumerate() {
            let name = op.kind.name();
            let sink = k == pipe.ops.len() - 1;
            match op.plan_idx {
                Some(i) => {
                    let Some(lop) = plan.ops.get(i) else {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("bound to plan op {i}, out of range"),
                        ));
                    };
                    if !kinds_match(&op.kind, &lop.kind) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("bound to plan op {i} ({}), kinds disagree", lop.kind.name()),
                        ));
                    }
                    if std::mem::replace(&mut seen[i], true) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("plan op {i} is charged by two physical nodes"),
                        ));
                    }
                }
                None => {
                    if !matches!(
                        op.kind,
                        PhysicalOpKind::HashJoinBuild { .. } | PhysicalOpKind::Collect
                    ) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            "not bound to a logical plan op; its work has nowhere to go".into(),
                        ));
                    }
                }
            }
            if k == 0 && !matches!(op.kind, PhysicalOpKind::Scan { .. }) {
                return Err(fail(pi, k, name, "pipeline must start with a scan".into()));
            }
            match &op.kind {
                PhysicalOpKind::Scan { table } => {
                    if k > 0 {
                        return Err(fail(pi, k, name, "scan can only head a pipeline".into()));
                    }
                    if let Some(i) = op.plan_idx {
                        if let PlanOpKind::Scan { table: lt } = &plan.ops[i].kind {
                            if lt != table {
                                return Err(fail(
                                    pi,
                                    k,
                                    name,
                                    format!("scans {table} but plan op {i} scans {lt}"),
                                ));
                            }
                        }
                    }
                    width = 1;
                }
                PhysicalOpKind::Filter { preds, positions, folds, stride } => {
                    check_stride(pi, k, name, *stride, width)?;
                    if positions.len() != preds.len() || folds.len() != preds.len() {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!(
                                "{} preds but {} positions / {} folds",
                                preds.len(),
                                positions.len(),
                                folds.len()
                            ),
                        ));
                    }
                    if let Some(&bad) = positions.iter().find(|&&p| p >= width) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("position {bad} outside input stride {width}"),
                        ));
                    }
                }
                PhysicalOpKind::UdfFilter { pos, stride, .. }
                | PhysicalOpKind::UdfProject { pos, stride, .. } => {
                    check_stride(pi, k, name, *stride, width)?;
                    if *pos >= width {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("position {pos} outside input stride {width}"),
                        ));
                    }
                }
                PhysicalOpKind::HashJoinBuild { pos, stride, keep, .. } => {
                    check_stride(pi, k, name, *stride, width)?;
                    if *pos >= width {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("key position {pos} outside input stride {width}"),
                        ));
                    }
                    if let Some(&bad) = keep.iter().find(|&&l| l >= width) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("kept lane {bad} outside input stride {width}"),
                        ));
                    }
                    if !sink || final_pipe {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            "hash build must be the sink of a non-final pipeline".into(),
                        ));
                    }
                    build_out[pi] = Some(keep.len());
                }
                PhysicalOpKind::HashJoinProbe { pos, stride, build, keep, .. } => {
                    check_stride(pi, k, name, *stride, width)?;
                    if *pos >= width {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("key position {pos} outside input stride {width}"),
                        ));
                    }
                    if let Some(&bad) = keep.iter().find(|&&l| l >= width) {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("kept lane {bad} outside input stride {width}"),
                        ));
                    }
                    if *build >= pi {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!(
                                "probes pipeline {build}, which does not precede pipeline {pi}"
                            ),
                        ));
                    }
                    let Some(bw) = build_out[*build] else {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            format!("probes pipeline {build}, which does not end in a hash build"),
                        ));
                    };
                    width = keep.len() + bw;
                }
                PhysicalOpKind::Agg { column, stride, .. } => {
                    check_stride(pi, k, name, *stride, width)?;
                    if let Some((_, pos)) = column {
                        if *pos >= width {
                            return Err(fail(
                                pi,
                                k,
                                name,
                                format!("column position {pos} outside input stride {width}"),
                            ));
                        }
                    }
                    if !sink || !final_pipe {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            "aggregate must be the sink of the final pipeline".into(),
                        ));
                    }
                }
                PhysicalOpKind::Collect => {
                    if !sink || !final_pipe {
                        return Err(fail(
                            pi,
                            k,
                            name,
                            "collect must be the sink of the final pipeline".into(),
                        ));
                    }
                }
            }
        }
        let tail = pipe.ops.last().expect("checked non-empty");
        let tail_ok = if final_pipe {
            matches!(tail.kind, PhysicalOpKind::Agg { .. } | PhysicalOpKind::Collect)
        } else {
            matches!(tail.kind, PhysicalOpKind::HashJoinBuild { .. })
        };
        if !tail_ok {
            return Err(fail(
                pi,
                pipe.ops.len() - 1,
                tail.kind.name(),
                if final_pipe {
                    "final pipeline must end in an aggregate or collect".into()
                } else {
                    "non-final pipeline must end in a hash build".into()
                },
            ));
        }
    }
    if let Some(i) = seen.iter().position(|s| !s) {
        return Err(GracefulError::PlanVerify(format!(
            "plan op {i} ({}) has no physical node charging its work",
            plan.ops[i].kind.name()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Execution: batches, context, the Operator trait

/// One batch of intermediate rows flowing between operators: a flat row-id
/// matrix (`rows.len() == n_rows × stride`, stride known to each operator
/// from lowering) plus the UDF-projected column when a `UdfProject` produced
/// it. Typed lane buffers ([`graceful_udf::simd::TypedCol`]) appear inside
/// the UDF operators, which gather straight from storage's typed slices.
#[derive(Debug, Default)]
pub struct Batch {
    pub rows: Vec<u32>,
    pub computed: Option<Vec<Value>>,
    /// True while this batch still carries the scan's identity row ids
    /// (stride 1, `rows` a contiguous ascending rid range, batches emitted
    /// in stream order): set by the scan source, preserved by
    /// row-preserving operators, cleared by anything that selects or
    /// recombines rows. Filters use it to zone-prune whole morsels (see
    /// `crate::prune`).
    pub identity: bool,
}

/// Full morsels a parallel operator queues *per worker* before flushing
/// them through the pool. Larger windows amortize the per-region cost
/// (scoped thread spawn + per-worker evaluator construction) over more
/// rows; the value only trades memory for wall-clock and **never affects
/// results** — morsel boundaries and merge order are window-invariant.
const FLUSH_MORSELS_PER_WORKER: usize = 4;

/// Shared read-only execution context handed to every operator call.
pub struct ExecCtx<'a> {
    pub pool: &'a Pool,
    /// Completed hash-join build sides of earlier pipelines.
    pub builds: &'a [BuildSide],
    /// Rows per morsel — the work-accounting unit.
    pub morsel: usize,
    /// `max_intermediate_rows` valve.
    pub cap: usize,
    /// Full-morsel count an operator queues before a parallel flush.
    pub flush_morsels: usize,
}

/// Post-run accounting an operator reports into the [`QueryRun`].
#[derive(Debug, Default)]
pub struct OpStats {
    /// Logical operator this node accounts to (`None`: bookkeeping node).
    pub plan_idx: Option<usize>,
    /// Work units for `op_work[plan_idx]`.
    pub work: f64,
    /// Output cardinality for `out_rows[plan_idx]`.
    pub out_rows: Option<usize>,
    /// Rows fed into this node if it is a UDF operator.
    pub udf_input_rows: Option<usize>,
    /// Aggregate result if this node is the aggregate sink.
    pub agg_value: Option<f64>,
    /// Peak rows this node kept resident (rebatch buffers, build tables).
    pub peak_resident: usize,
    /// Input batches pushed into this node (profile bookkeeping).
    pub batches: u64,
    /// UDF evaluation counters if this node is a UDF operator.
    pub udf_stats: Option<UdfEvalStats>,
}

/// Downstream consumer an operator emits its output batches into. Emission
/// cascades immediately through the rest of the chain, so a producer's
/// output is consumed batch by batch instead of accumulating.
pub type Emit<'e> = dyn FnMut(Batch) -> Result<()> + 'e;

/// A streaming physical operator: receives input batches via
/// [`Operator::push`], emits output batches into the downstream [`Emit`]
/// sink, and flushes buffered state in [`Operator::finish`] (also where
/// closed-form work is charged). After the run, [`Operator::stats`] reports
/// its accounting.
pub trait Operator {
    fn push(&mut self, batch: Batch, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()>;
    fn finish(&mut self, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()>;
    fn stats(&self) -> OpStats;
    /// The completed build side, if this operator is a hash-join build sink.
    fn take_build(&mut self) -> Option<BuildSide> {
        None
    }
}

/// A materialized hash-join build side: the radix-partitioned key →
/// build-row-index index (see `crate::join`) plus the build rows' id
/// tuples (indexed by insertion order, which equals the build input's row
/// order).
pub struct BuildSide {
    index: crate::join::PartitionedIndex,
    rows: Vec<u32>,
    stride: usize,
    n_rows: usize,
}

// ---------------------------------------------------------------------------
// Operator implementations

/// Morsel-aligned rebatch buffer shared by the parallel operators: appends
/// input rows, hands out complete morsels mid-stream and the ragged tail at
/// finish.
struct Rebatcher {
    rows: Vec<u32>,
    stride: usize,
    peak: usize,
    /// True while every appended batch was an identity batch — the buffered
    /// rows are then one contiguous ascending rid run (batches of an
    /// identity stream arrive in stream order).
    identity: bool,
}

impl Rebatcher {
    fn new(stride: usize) -> Self {
        Rebatcher { rows: Vec::new(), stride, peak: 0, identity: true }
    }

    fn append(&mut self, batch: &Batch) {
        self.rows.extend_from_slice(&batch.rows);
        self.peak = self.peak.max(self.rows.len() / self.stride);
        self.identity &= batch.identity;
    }

    fn buffered_rows(&self) -> usize {
        self.rows.len() / self.stride
    }

    /// Rows to evaluate now: mid-stream only complete morsels, and only once
    /// `flush_morsels` of them are queued; at finish, everything.
    fn take_rows(&self, all: bool, ctx: &ExecCtx<'_>) -> usize {
        let n = self.buffered_rows();
        if all {
            return n;
        }
        let complete = n / ctx.morsel;
        if complete >= ctx.flush_morsels {
            complete * ctx.morsel
        } else {
            0
        }
    }

    fn drain(&mut self, rows: usize) {
        self.rows.drain(..rows * self.stride);
    }
}

/// Conjunctive predicate filter (morsel-parallel).
///
/// `preds` holds only the predicates the rewrite analysis could *not* fold
/// (`PredFold::Keep`); statically-true predicates are skipped and a
/// statically-false predicate short-circuits the whole operator to an empty
/// output. The work charge always uses the logical predicate count
/// (`n_preds`), so folding never changes accounted work.
struct FilterExec<'a> {
    plan_idx: usize,
    preds: Vec<(&'a Pred, usize, &'a Table)>,
    /// Logical predicate count, before folding — the work-charge multiplier.
    n_preds: usize,
    /// A predicate folded to `AlwaysFalse`: emit nothing, evaluate nothing.
    always_false: bool,
    /// Zone-map pruning enabled ([`ExecConfig::pruning`]); only effective
    /// over an identity input stream.
    pruning: bool,
    buf: Rebatcher,
    stride: usize,
    rows_in: usize,
    rows_out: usize,
    batches: u64,
    work: f64,
    weight: f64,
}

impl FilterExec<'_> {
    fn flush(&mut self, all: bool, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        let take = self.buf.take_rows(all, ctx);
        if take == 0 {
            return Ok(());
        }
        let stride = self.stride;
        let preds = &self.preds;
        let pending = &self.buf.rows[..take * stride];
        // Over an identity stream the buffered rows are one contiguous
        // ascending rid run, so each morsel covers the base-table range its
        // first/last ids delimit — exactly what the zone maps summarize.
        // Pruning a morsel emits the same zero rows evaluation would, and
        // work is charged closed-form at finish: nothing contracted moves.
        let prune_scan = self.pruning && self.buf.identity && stride == 1;
        let parts: Vec<Vec<u32>> = ctx.pool.map_init(
            Pool::morsel_count(take, ctx.morsel),
            || (),
            |_, m| {
                let range = Pool::morsel_range(m, take, ctx.morsel);
                if prune_scan {
                    let rids = pending[range.start] as usize..pending[range.end - 1] as usize + 1;
                    if preds
                        .iter()
                        .any(|(p, _, t)| crate::prune::pred_prunes_range(t, p, rids.clone()))
                    {
                        crate::prune::pruned_morsels_counter().incr();
                        return Vec::new();
                    }
                }
                let mut kept = Vec::new();
                for r in range {
                    let keep = preds
                        .iter()
                        .all(|(p, pos, t)| p.matches(t, pending[r * stride + pos] as usize));
                    if keep {
                        kept.extend_from_slice(&pending[r * stride..(r + 1) * stride]);
                    }
                }
                kept
            },
        );
        for kept in parts {
            self.rows_out += kept.len() / stride;
            if self.rows_out > ctx.cap {
                return Err(cap_error(self.rows_out));
            }
            if !kept.is_empty() {
                emit(Batch { rows: kept, computed: None, identity: false })?;
            }
        }
        self.buf.drain(take);
        Ok(())
    }
}

impl Operator for FilterExec<'_> {
    fn push(&mut self, batch: Batch, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        self.rows_in += batch.rows.len() / self.stride;
        self.batches += 1;
        if self.always_false {
            return Ok(()); // statically empty: never buffer, never emit
        }
        if self.preds.is_empty() {
            // Every predicate folded to true: pass rows through unevaluated.
            self.rows_out += batch.rows.len() / self.stride;
            if self.rows_out > ctx.cap {
                return Err(cap_error(self.rows_out));
            }
            let identity = batch.identity;
            return emit(Batch { rows: batch.rows, computed: None, identity });
        }
        self.buf.append(&batch);
        self.flush(false, ctx, emit)
    }

    fn finish(&mut self, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        if !self.always_false && !self.preds.is_empty() {
            self.flush(true, ctx, emit)?;
        }
        // Same closed-form expression (and float rounding) as the
        // materializing engine's single charge over the whole *logical*
        // predicate list — folding is an execution shortcut, not a
        // work-model change.
        self.work += self.rows_in as f64 * self.n_preds as f64 * self.weight;
        Ok(())
    }

    fn stats(&self) -> OpStats {
        OpStats {
            plan_idx: Some(self.plan_idx),
            work: self.work,
            out_rows: Some(self.rows_out),
            peak_resident: self.buf.peak,
            batches: self.batches,
            ..OpStats::default()
        }
    }
}

/// UDF filter/projection over the unified [`UdfEval`] backends
/// (morsel-parallel, batch boundaries restart per morsel exactly like the
/// materializing path).
struct UdfExec<'a> {
    plan_idx: usize,
    spec: UdfEvalSpec<'a>,
    /// `Some((cmp, literal))` for a UDF filter, `None` for a projection.
    filter: Option<(CmpOp, f64)>,
    pos: usize,
    stride: usize,
    buf: Rebatcher,
    rows_in: usize,
    rows_out: usize,
    batches: u64,
    work: f64,
    eval_stats: UdfEvalStats,
}

impl UdfExec<'_> {
    fn flush(&mut self, all: bool, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        let take = self.buf.take_rows(all, ctx);
        if take == 0 {
            return Ok(());
        }
        let stride = self.stride;
        let pos = self.pos;
        let pending = &self.buf.rows[..take * stride];
        let parts = self
            .spec
            .eval_morsels(ctx.pool, take, ctx.morsel, |r| pending[r * stride + pos] as usize);
        // Ordered merge in morsel-index order (== row order).
        for (m, part) in parts.into_iter().enumerate() {
            let (morsel_work, values, morsel_stats) = part?;
            self.work += morsel_work;
            self.eval_stats.merge(&morsel_stats);
            let range = Pool::morsel_range(m, take, ctx.morsel);
            match self.filter {
                Some((cmp, literal)) => {
                    let mut kept = Vec::new();
                    for (r, value) in range.zip(values) {
                        let keep = match value.as_f64() {
                            Some(v) => cmp_f64(cmp, v, literal),
                            None => false, // NULL and text outputs never pass
                        };
                        if keep {
                            kept.extend_from_slice(&pending[r * stride..(r + 1) * stride]);
                        }
                    }
                    self.rows_out += kept.len() / stride;
                    if self.rows_out > ctx.cap {
                        return Err(cap_error(self.rows_out));
                    }
                    if !kept.is_empty() {
                        emit(Batch { rows: kept, computed: None, identity: false })?;
                    }
                }
                None => {
                    let rows = pending[range.start * stride..range.end * stride].to_vec();
                    self.rows_out += range.len();
                    if self.rows_out > ctx.cap {
                        return Err(cap_error(self.rows_out));
                    }
                    // A projection emits its input rows unchanged, in stream
                    // order: identity survives.
                    let identity = self.buf.identity;
                    emit(Batch { rows, computed: Some(values), identity })?;
                }
            }
        }
        self.buf.drain(take);
        Ok(())
    }
}

impl Operator for UdfExec<'_> {
    fn push(&mut self, batch: Batch, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        self.rows_in += batch.rows.len() / self.stride;
        self.batches += 1;
        self.buf.append(&batch);
        self.flush(false, ctx, emit)
    }

    fn finish(&mut self, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        self.flush(true, ctx, emit)
    }

    fn stats(&self) -> OpStats {
        OpStats {
            plan_idx: Some(self.plan_idx),
            work: self.work,
            out_rows: Some(self.rows_out),
            udf_input_rows: Some(self.rows_in),
            peak_resident: self.buf.peak,
            batches: self.batches,
            udf_stats: Some(self.eval_stats),
            ..OpStats::default()
        }
    }
}

/// Hash-join build sink: materializes the pipeline's output as the probe's
/// hash table, storing only the `keep` lanes of each input tuple (the key
/// is read from the full input tuple, so even the key lane can be pruned
/// from storage). Keys are gathered while rows stream in; the partitioned
/// index itself is built in parallel at `finish` (see
/// [`crate::join::PartitionedIndex`]) with per-key match lists identical to
/// a sequential insertion-order build. Work is accounted by the probe (the
/// join's logical operator).
struct BuildExec<'a> {
    key_col: &'a Column,
    pos: usize,
    stride: usize,
    keep: &'a [usize],
    /// Kept lanes of every input tuple, insertion order.
    rows: Vec<u32>,
    /// Per input row, its join key (`None` = NULL, never matches).
    keys: Vec<Option<i64>>,
    side: Option<BuildSide>,
}

impl Operator for BuildExec<'_> {
    fn push(&mut self, batch: Batch, _ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        for tuple in batch.rows.chunks_exact(self.stride) {
            self.keys.push(self.key_col.get_i64(tuple[self.pos] as usize));
            self.rows.extend(self.keep.iter().map(|&i| tuple[i]));
        }
        Ok(())
    }

    fn finish(&mut self, ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        let keys = std::mem::take(&mut self.keys);
        let index =
            crate::join::PartitionedIndex::build(ctx.pool, keys.len(), ctx.morsel, |r| keys[r]);
        self.side = Some(BuildSide {
            index,
            rows: std::mem::take(&mut self.rows),
            stride: self.keep.len(),
            n_rows: keys.len(),
        });
        Ok(())
    }

    fn stats(&self) -> OpStats {
        OpStats { peak_resident: self.side.as_ref().map_or(0, |s| s.n_rows), ..OpStats::default() }
    }

    fn take_build(&mut self) -> Option<BuildSide> {
        self.side.take()
    }
}

/// Hash-join probe (morsel-parallel): looks up each left row's key in the
/// partitioned build index, emits matched `left[keep] ++ build` tuples (the
/// build side was lane-pruned at build time). Input rows rebatch to morsel
/// boundaries; per-morsel output chunks merge in morsel-index order, which
/// reproduces the sequential probe's output row order exactly. Accounts the
/// whole join's work at finish with the materializing engine's exact
/// expressions — lane pruning never changes row counts, so the charges are
/// rewrite-invariant.
struct ProbeExec<'a> {
    plan_idx: usize,
    key_col: &'a Column,
    pos: usize,
    stride: usize,
    keep: &'a [usize],
    build: usize,
    buf: Rebatcher,
    rows_in: usize,
    rows_out: usize,
    batches: u64,
    work: f64,
    build_w: f64,
    probe_w: f64,
    out_w: f64,
}

impl ProbeExec<'_> {
    fn flush(&mut self, all: bool, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        let take = self.buf.take_rows(all, ctx);
        if take == 0 {
            return Ok(());
        }
        let side = &ctx.builds[self.build];
        let lstride = self.stride;
        let keep = self.keep;
        let pos = self.pos;
        let key_col = self.key_col;
        let cap = ctx.cap;
        let pending = &self.buf.rows[..take * lstride];
        // The intermediate cap is enforced per morsel (bounding memory
        // mid-probe) and again cumulatively on merge — a query errors iff
        // its total output exceeds the cap, the same outcome the sequential
        // row-by-row check produced.
        let parts = ctx.pool.map_init(
            Pool::morsel_count(take, ctx.morsel),
            || (),
            |_, m| -> Result<(Vec<u32>, usize)> {
                let mut chunk: Vec<u32> = Vec::new();
                let mut emitted = 0usize;
                for l in Pool::morsel_range(m, take, ctx.morsel) {
                    let tuple = &pending[l * lstride..(l + 1) * lstride];
                    let Some(k) = key_col.get_i64(tuple[pos] as usize) else { continue };
                    if let Some(matches) = side.index.get(k) {
                        for &r in matches {
                            chunk.extend(keep.iter().map(|&i| tuple[i]));
                            chunk.extend_from_slice(
                                &side.rows
                                    [r as usize * side.stride..(r as usize + 1) * side.stride],
                            );
                            emitted += 1;
                            if emitted > cap {
                                return Err(GracefulError::InvalidPlan(
                                    "join output exceeds intermediate cap".into(),
                                ));
                            }
                        }
                    }
                }
                Ok((chunk, emitted))
            },
        );
        for part in parts {
            let (chunk, emitted) = part?;
            self.rows_out += emitted;
            if self.rows_out > cap {
                return Err(GracefulError::InvalidPlan(
                    "join output exceeds intermediate cap".into(),
                ));
            }
            if !chunk.is_empty() {
                emit(Batch { rows: chunk, computed: None, identity: false })?;
            }
        }
        self.rows_in += take;
        self.buf.drain(take);
        Ok(())
    }
}

impl Operator for ProbeExec<'_> {
    fn push(&mut self, batch: Batch, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        self.batches += 1;
        self.buf.append(&batch);
        self.flush(false, ctx, emit)
    }

    fn finish(&mut self, ctx: &ExecCtx<'_>, emit: &mut Emit<'_>) -> Result<()> {
        self.flush(true, ctx, emit)?;
        // The materializing engine's two charges, same expressions, same
        // order: (build + probe) first, then the output term.
        let rn = ctx.builds[self.build].n_rows;
        self.work += rn as f64 * self.build_w + self.rows_in as f64 * self.probe_w;
        self.work += self.rows_out as f64 * self.out_w;
        Ok(())
    }

    fn stats(&self) -> OpStats {
        OpStats {
            plan_idx: Some(self.plan_idx),
            work: self.work,
            out_rows: Some(self.rows_out),
            batches: self.batches,
            peak_resident: self.buf.peak,
            ..OpStats::default()
        }
    }
}

/// Aggregate sink (morsel-parallel): rebatches its input to morsel
/// boundaries, folds each morsel into its own [`AggState`] partial on the
/// pool, and merges partials in morsel-index order — the exact fold shape
/// of the materializing engine's `exec_agg`, so both modes stay
/// bit-identical at any thread count. `COUNT(*)` never touches a float and
/// streams unbuffered.
struct AggExec<'a> {
    plan_idx: usize,
    func: AggFunc,
    /// Resolved lazily on first use so data-dependent errors upstream keep
    /// their precedence over this structural lookup.
    column: Option<(&'a ColRef, usize)>,
    resolved: Option<&'a Column>,
    stride: usize,
    db: &'a Database,
    state: AggState,
    buf: Rebatcher,
    /// UDF-projected values travelling with the buffered rows (column-less
    /// aggregates only), row-aligned with `buf`.
    computed_buf: Vec<Value>,
    rows_in: usize,
    batches: u64,
    work: f64,
    weight: f64,
}

impl<'a> AggExec<'a> {
    fn column(&mut self) -> Result<(&'a Column, usize)> {
        let (c, pos) = self.column.expect("only called when a column is present");
        if self.resolved.is_none() {
            self.resolved = Some(self.db.table(&c.table)?.column(&c.column)?);
        }
        Ok((self.resolved.expect("just resolved"), pos))
    }

    fn flush(&mut self, all: bool, ctx: &ExecCtx<'_>) -> Result<()> {
        let take = self.buf.take_rows(all, ctx);
        if take == 0 {
            return Ok(());
        }
        let stride = self.stride;
        let func = self.func;
        // Flushes drain whole morsels mid-stream, so partial boundaries sit
        // at the same input-stream offsets as `Pool::morsel_range` over the
        // whole input — the materializing fold's exact grouping.
        let partials: Vec<AggState> = if self.column.is_some() {
            let (col, pos) = self.column()?;
            let pending = &self.buf.rows[..take * stride];
            ctx.pool.map_init(
                Pool::morsel_count(take, ctx.morsel),
                || (),
                |_, m| {
                    let mut part = AggState::new(func);
                    for r in Pool::morsel_range(m, take, ctx.morsel) {
                        part.observe(col.get_f64(pending[r * stride + pos] as usize));
                    }
                    part
                },
            )
        } else {
            let pending = &self.computed_buf[..take];
            ctx.pool.map_init(
                Pool::morsel_count(take, ctx.morsel),
                || (),
                |_, m| {
                    let mut part = AggState::new(func);
                    for r in Pool::morsel_range(m, take, ctx.morsel) {
                        part.observe(pending[r].as_f64());
                    }
                    part
                },
            )
        };
        for part in &partials {
            self.state.merge(part);
        }
        self.buf.drain(take);
        if self.column.is_none() {
            self.computed_buf.drain(..take);
        }
        Ok(())
    }
}

impl Operator for AggExec<'_> {
    fn push(&mut self, batch: Batch, ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        let n = batch.rows.len() / self.stride;
        self.rows_in += n;
        self.batches += 1;
        if self.func == AggFunc::CountStar {
            self.state.count_rows(n);
            return Ok(());
        }
        let mut batch = batch;
        if self.column.is_none() {
            // Aggregate the UDF-projected column (presence is structural:
            // guaranteed by `expects_computed`, which lowering verified).
            let computed = batch.computed.take().ok_or_else(|| {
                GracefulError::InvalidPlan("agg over UDF output requires a UdfProject below".into())
            })?;
            self.computed_buf.extend(computed);
        }
        self.buf.append(&batch);
        self.flush(false, ctx)
    }

    fn finish(&mut self, ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        if self.func != AggFunc::CountStar {
            self.flush(true, ctx)?;
            if self.column.is_some() {
                self.column()?; // structural resolution even over empty inputs
            }
        }
        self.work += self.rows_in as f64 * self.weight;
        Ok(())
    }

    fn stats(&self) -> OpStats {
        OpStats {
            plan_idx: Some(self.plan_idx),
            work: self.work,
            out_rows: Some(1),
            agg_value: Some(self.state.finish()),
            batches: self.batches,
            ..OpStats::default()
        }
    }
}

/// Terminator for non-aggregate roots.
struct CollectExec;

impl Operator for CollectExec {
    fn push(&mut self, _batch: Batch, _ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        Ok(())
    }

    fn finish(&mut self, _ctx: &ExecCtx<'_>, _emit: &mut Emit<'_>) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> OpStats {
        OpStats::default()
    }
}

fn cap_error(rows: usize) -> GracefulError {
    GracefulError::InvalidPlan(format!("intermediate result exceeds cap: {rows} rows"))
}

// ---------------------------------------------------------------------------
// Wall-time self-profiler

/// Self-time wall profiler for one pipeline's operator chain (chain index 0
/// is the scan source, `k + 1` is `pipe.ops[1..][k]`).
///
/// The batch cascade is recursive — an operator's `push` calls downstream
/// `push`es before returning — so inclusive timings would double-count every
/// upstream operator. Instead the driver marks enter/exit transitions and
/// attributes each elapsed slice to the operator on top of the stack: time an
/// operator spends before emitting (or after its emit returns) is its own;
/// time inside a downstream push belongs to that downstream operator.
///
/// Single-threaded by design (the driver and the Emit cascade run on the
/// driving thread; pool workers' time shows up as their operator's own,
/// because the operator blocks on the parallel region it launched).
struct ChainProf {
    wall: Vec<Cell<u64>>,
    stack: RefCell<Vec<usize>>,
    last: Cell<Instant>,
}

impl ChainProf {
    fn new(chain_len: usize) -> Self {
        ChainProf {
            wall: (0..chain_len).map(|_| Cell::new(0)).collect(),
            stack: RefCell::new(Vec::with_capacity(chain_len)),
            last: Cell::new(Instant::now()),
        }
    }

    /// Nanoseconds since the previous mark; advances the mark.
    fn mark(&self) -> u64 {
        let now = Instant::now();
        let dt = now.duration_since(self.last.get()).as_nanos() as u64;
        self.last.set(now);
        dt
    }

    fn enter(&self, chain_idx: usize) {
        let dt = self.mark();
        if let Some(&top) = self.stack.borrow().last() {
            self.wall[top].set(self.wall[top].get() + dt);
        }
        self.stack.borrow_mut().push(chain_idx);
    }

    fn exit(&self) {
        let dt = self.mark();
        let top = self.stack.borrow_mut().pop().expect("enter/exit balanced");
        self.wall[top].set(self.wall[top].get() + dt);
    }
}

// ---------------------------------------------------------------------------
// Driver

/// Execute `plan` through the pipeline executor. Equivalent to
/// `Executor::run` under `ExecMode::Pipeline`.
pub fn execute(db: &Database, plan: &Plan, config: &ExecConfig, seed: u64) -> Result<QueryRun> {
    let started = Instant::now();
    let profiling = config.profile;
    // Same rewrite hints as the materializing engine: fold verdicts and
    // keep lanes come from the identical analysis, so both modes agree on
    // output lane lists (the bit-identity contract depends on that).
    let rewrites = config.rewrites.then(|| RewriteSet::analyze(plan, db));
    let phys = lower_with(plan, rewrites.as_ref())?;
    if config.plan_verify == PlanVerifyMode::Strict {
        verify_physical(&phys, plan)?;
    }
    let pool = Pool::new(config.threads);
    let n_ops = plan.ops.len();
    let mut out_rows = vec![0usize; n_ops];
    let mut op_work = vec![0f64; n_ops];
    let mut wall_ns = vec![0u64; n_ops];
    let mut batches = vec![0u64; n_ops];
    let mut udf_stats: Vec<Option<UdfEvalStats>> = vec![None; n_ops];
    // `(plan_idx, rows_in)` of the UDF operator that owns `udf_input_rows`:
    // the materializing loop assigns it per UDF op in plan-index order, so
    // the highest-index UDF operator wins regardless of pipeline order.
    let mut udf_mark: Option<(usize, usize)> = None;
    let mut agg_value = 0.0;
    let mut peak_inter_rows = 0usize;
    let mut builds: Vec<BuildSide> = Vec::new();
    // Self time of each pipeline's plan-less build sink, indexed like
    // `phys.pipelines` (a probe's `build` field is a pipeline index); folded
    // into the probing join operator's wall time.
    let mut build_wall: Vec<u64> = Vec::new();
    for pipe in &phys.pipelines {
        let _pipe_span = trace::span("exec", "pipeline").arg("ops", pipe.ops.len());
        let ctx = ExecCtx {
            pool: &pool,
            builds: &builds,
            morsel: config.morsel_rows.max(1),
            cap: config.max_intermediate_rows,
            flush_morsels: config.threads.max(1) * FLUSH_MORSELS_PER_WORKER,
        };
        // Source: the scan at the head of the chain. Shape violations are
        // typed errors, not panics — under GRACEFUL_PLAN_VERIFY=strict the
        // `verify_physical` audit has already rejected them before rows flow.
        let (scan_table, scan_idx) = match pipe.ops.first() {
            Some(PhysicalOp { kind: PhysicalOpKind::Scan { table }, plan_idx: Some(idx) }) => {
                (*table, *idx)
            }
            Some(other) => {
                return Err(GracefulError::PlanVerify(format!(
                    "pipeline must start with a scan bound to a plan op, got {}",
                    other.kind.name()
                )))
            }
            None => {
                return Err(GracefulError::PlanVerify("pipeline has no operators".into()));
            }
        };
        let t = db.table(scan_table)?;
        let n = t.num_rows();
        op_work[scan_idx] += n as f64 * config.weights.scan_row;
        out_rows[scan_idx] = n;
        if n > config.max_intermediate_rows {
            return Err(cap_error(n));
        }
        let mut ops: Vec<Box<dyn Operator + '_>> =
            pipe.ops[1..].iter().map(|op| instantiate(db, config, op)).collect::<Result<_>>()?;
        let morsel = ctx.morsel;
        batches[scan_idx] += Pool::morsel_count(n, morsel) as u64;
        let prof = profiling.then(|| ChainProf::new(pipe.ops.len()));
        for m in 0..Pool::morsel_count(n, morsel) {
            if let Some(p) = &prof {
                p.enter(0);
            }
            let range = Pool::morsel_range(m, n, morsel);
            let batch =
                Batch { rows: range.map(|r| r as u32).collect(), computed: None, identity: true };
            let fed = feed(&mut ops, &ctx, batch, prof.as_ref(), 1);
            if let Some(p) = &prof {
                p.exit();
            }
            fed?;
        }
        finish_all(&mut ops, &ctx, prof.as_ref(), 1)?;
        let mut pipe_resident = n.min(morsel); // one in-flight scan batch
        for op in &ops {
            let s = op.stats();
            if let Some(i) = s.plan_idx {
                op_work[i] += s.work;
                batches[i] += s.batches;
                if let Some(r) = s.out_rows {
                    out_rows[i] = r;
                }
                if let Some(us) = s.udf_stats {
                    udf_stats[i].get_or_insert_with(UdfEvalStats::default).merge(&us);
                    record_udf_metrics(&us);
                }
            }
            if let Some(u) = s.udf_input_rows {
                let i = s.plan_idx.expect("UDF operators map to a plan op");
                if udf_mark.is_none_or(|(j, _)| i > j) {
                    udf_mark = Some((i, u));
                }
            }
            if let Some(a) = s.agg_value {
                agg_value = a;
            }
            pipe_resident += s.peak_resident;
        }
        // Attribute the chain's wall self-times to their logical operators.
        // Plan-less nodes fold elsewhere: a build sink's time is stashed for
        // the probing join, a collect's folds into the last planned operator
        // upstream of it.
        let mut orphan_build = 0u64;
        if let Some(p) = &prof {
            wall_ns[scan_idx] += p.wall[0].get();
            let mut last_planned = scan_idx;
            for (k, phys_op) in pipe.ops[1..].iter().enumerate() {
                let w = p.wall[k + 1].get();
                match phys_op.plan_idx {
                    Some(i) => {
                        wall_ns[i] += w;
                        last_planned = i;
                        if let PhysicalOpKind::HashJoinProbe { build, .. } = &phys_op.kind {
                            wall_ns[i] += build_wall.get(*build).copied().unwrap_or(0);
                        }
                    }
                    None => match phys_op.kind {
                        PhysicalOpKind::HashJoinBuild { .. } => orphan_build += w,
                        _ => wall_ns[last_planned] += w,
                    },
                }
            }
        }
        build_wall.push(orphan_build);
        // Build sides persist past their pipeline; buffers do not.
        let held: usize = builds.iter().map(|b| b.n_rows).sum();
        peak_inter_rows = peak_inter_rows.max(held + pipe_resident);
        if let Some(side) = ops.last_mut().and_then(|o| o.take_build()) {
            drop(ops);
            builds.push(side);
        }
    }
    let total: f64 = op_work.iter().sum();
    let runtime_ns = total * jitter_factor(seed, config.jitter);
    let udf_input_rows = udf_mark.map_or(0, |(_, u)| u);
    let profile = profiling.then(|| {
        ExecProfile::assemble(
            plan,
            config,
            started.elapsed().as_nanos() as u64,
            &wall_ns,
            &batches,
            &out_rows,
            &op_work,
            &udf_stats,
        )
    });
    Ok(QueryRun {
        runtime_ns,
        out_rows,
        op_work,
        agg_value,
        udf_input_rows,
        peak_inter_rows,
        profile,
    })
}

/// The logical plan op a physical node charges its work to; a missing
/// binding on a node that needs one is a lowering invariant violation,
/// reported as the typed verifier error rather than a panic.
fn planned(op: &PhysicalOp<'_>) -> Result<usize> {
    op.plan_idx.ok_or_else(|| {
        GracefulError::PlanVerify(format!(
            "physical {} is not bound to a logical plan op, so its work \
             and cardinality have nowhere to be charged",
            op.kind.name()
        ))
    })
}

/// Instantiate the execution state for one lowered node (resolving its
/// storage columns, with the materializing executor's errors).
fn instantiate<'a>(
    db: &'a Database,
    config: &'a ExecConfig,
    op: &'a PhysicalOp<'_>,
) -> Result<Box<dyn Operator + 'a>> {
    let w = &config.weights;
    Ok(match &op.kind {
        PhysicalOpKind::Scan { .. } => {
            return Err(GracefulError::PlanVerify(
                "scan is the pipeline source, not a streaming operator".into(),
            ))
        }
        PhysicalOpKind::Filter { preds, positions, folds, stride } => {
            let always_false = folds.contains(&PredFold::AlwaysFalse);
            let mut resolved = Vec::with_capacity(preds.len());
            if !always_false {
                // Same short-circuit as the materializing engine: a
                // statically-false filter never resolves its tables.
                for ((p, &pos), fold) in preds.iter().zip(positions.iter()).zip(folds.iter()) {
                    if *fold == PredFold::Keep {
                        resolved.push((p, pos, db.table(&p.col.table)?));
                    }
                }
            }
            Box::new(FilterExec {
                plan_idx: planned(op)?,
                preds: resolved,
                n_preds: preds.len(),
                always_false,
                pruning: config.pruning,
                buf: Rebatcher::new(*stride),
                stride: *stride,
                rows_in: 0,
                rows_out: 0,
                batches: 0,
                work: 0.0,
                weight: w.filter_pred,
            })
        }
        PhysicalOpKind::UdfFilter { udf, cmp, literal, pos, stride } => Box::new(UdfExec {
            plan_idx: planned(op)?,
            spec: udf_spec(db, config, udf, w.udf_compare)?,
            filter: Some((*cmp, *literal)),
            pos: *pos,
            stride: *stride,
            buf: Rebatcher::new(*stride),
            rows_in: 0,
            rows_out: 0,
            batches: 0,
            work: 0.0,
            eval_stats: UdfEvalStats::default(),
        }),
        PhysicalOpKind::UdfProject { udf, pos, stride } => Box::new(UdfExec {
            plan_idx: planned(op)?,
            spec: udf_spec(db, config, udf, w.project_row)?,
            filter: None,
            pos: *pos,
            stride: *stride,
            buf: Rebatcher::new(*stride),
            rows_in: 0,
            rows_out: 0,
            batches: 0,
            work: 0.0,
            eval_stats: UdfEvalStats::default(),
        }),
        PhysicalOpKind::HashJoinBuild { key, pos, stride, keep } => Box::new(BuildExec {
            key_col: db.table(&key.table)?.column(&key.column)?,
            pos: *pos,
            stride: *stride,
            keep,
            rows: Vec::new(),
            keys: Vec::new(),
            side: None,
        }),
        PhysicalOpKind::HashJoinProbe { key, pos, stride, build, keep } => Box::new(ProbeExec {
            plan_idx: planned(op)?,
            key_col: db.table(&key.table)?.column(&key.column)?,
            pos: *pos,
            stride: *stride,
            keep,
            build: *build,
            buf: Rebatcher::new(*stride),
            rows_in: 0,
            rows_out: 0,
            batches: 0,
            work: 0.0,
            build_w: w.join_build_row,
            probe_w: w.join_probe_row,
            out_w: w.join_out_row,
        }),
        PhysicalOpKind::Agg { func, column, stride, .. } => Box::new(AggExec {
            plan_idx: planned(op)?,
            func: *func,
            column: *column,
            resolved: None,
            stride: *stride,
            db,
            state: AggState::new(*func),
            buf: Rebatcher::new(*stride),
            computed_buf: Vec::new(),
            rows_in: 0,
            batches: 0,
            work: 0.0,
            weight: w.agg_row,
        }),
        PhysicalOpKind::Collect => Box::new(CollectExec),
    })
}

/// Push one batch into operator `ops[0]`; its emissions cascade through the
/// rest of the chain batch by batch, so no operator's full output is ever
/// collected in one place. `chain` is `ops[0]`'s chain index for the
/// optional wall-time profiler.
fn feed(
    ops: &mut [Box<dyn Operator + '_>],
    ctx: &ExecCtx<'_>,
    batch: Batch,
    prof: Option<&ChainProf>,
    chain: usize,
) -> Result<()> {
    let Some((first, rest)) = ops.split_first_mut() else {
        return Ok(());
    };
    if let Some(p) = prof {
        p.enter(chain);
    }
    let pushed = first.push(batch, ctx, &mut |b| feed(rest, ctx, b, prof, chain + 1));
    if let Some(p) = prof {
        p.exit();
    }
    pushed
}

/// Flush every operator in chain order, cascading flushed batches through
/// the not-yet-finished downstream operators.
fn finish_all(
    ops: &mut [Box<dyn Operator + '_>],
    ctx: &ExecCtx<'_>,
    prof: Option<&ChainProf>,
    chain: usize,
) -> Result<()> {
    let Some((first, rest)) = ops.split_first_mut() else {
        return Ok(());
    };
    if let Some(p) = prof {
        p.enter(chain);
    }
    let finished = first.finish(ctx, &mut |b| feed(rest, ctx, b, prof, chain + 1));
    if let Some(p) = prof {
        p.exit();
    }
    finished?;
    finish_all(rest, ctx, prof, chain + 1)
}

fn udf_spec<'a>(
    db: &'a Database,
    config: &ExecConfig,
    udf: &'a GeneratedUdf,
    overhead: f64,
) -> Result<UdfEvalSpec<'a>> {
    let t = db.table(&udf.table)?;
    let cols =
        udf.input_columns.iter().map(|c| t.column(c)).collect::<Result<Vec<&'a Column>>>()?;
    UdfEvalSpec::prepare(
        udf,
        cols,
        config.udf_backend,
        config.udf_weights.clone(),
        config.udf_batch_size,
        overhead,
        config.rewrites,
    )
}
