//! Plan execution with exact work accounting.
//!
//! [`Executor::run`] dispatches on [`ExecConfig::mode`]: the default
//! [`ExecMode::Pipeline`] lowers the plan to the physical-operator pipeline
//! of [`crate::physical`] and streams batches through it, while
//! [`ExecMode::Materialize`] runs this module's original recursive
//! interpreter, which fully materializes every intermediate result. Both
//! produce bit-identical [`QueryRun`]s (values, cardinalities, accounted
//! work) — the differential suite enforces it — so the materializing path is
//! kept as the executable reference semantics.
//!
//! # Parallelism
//!
//! Every data-plane operator runs on the morsel-driven pool of
//! `graceful-runtime`: rows are split into `morsel_rows`-row morsels
//! (`GRACEFUL_MORSEL`), workers pull morsels from a shared queue, and
//! per-morsel results — scanned row ids, kept rows, projected values, join
//! output chunks, aggregate partials, accounted work — merge in
//! morsel-index order. Hash joins build and probe the radix-partitioned
//! index of `crate::join`; filters over identity scans skip whole morsels
//! via the zone maps of `crate::prune`. Work totals are grouped *per
//! morsel* regardless of the thread count, so every `QueryRun` field is
//! **bit-identical for any `GRACEFUL_THREADS` value** (enforced by
//! `tests/parallel_determinism.rs`).
//! Each worker owns its UDF evaluation state through the [`crate::udf_eval`]
//! layer: one tree-walking interpreter, or one batch VM whose register file
//! is preallocated once and reused across all morsels the worker pulls.

use crate::profile::ExecProfile;
use crate::udf_eval::{record_udf_metrics, UdfEvalSpec, UdfEvalStats};
use graceful_common::config::{self, ExecMode, PlanVerifyMode, UdfBackend};
use graceful_common::{GracefulError, Result};
use graceful_obs::registry::{counter, histogram, Counter, Histogram};
use graceful_obs::trace;
use graceful_plan::analysis::join_keep_lanes;
use graceful_plan::{AggFunc, ColRef, Plan, PlanOpKind, PredFold, RewriteSet};
use graceful_runtime::Pool;
use graceful_storage::{Database, Table, Value};
use graceful_udf::CostWeights;
use std::sync::OnceLock;
use std::time::Instant;

/// Per-row work-unit weights of the relational operators (≈ simulated
/// nanoseconds, calibrated to a vectorized engine's per-tuple costs with the
/// UDF weights of `graceful-udf::costs` — UDF invocation is ~20× a scanned
/// row, matching the DuckDB-with-Python-UDF regime the paper studies).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorWeights {
    pub scan_row: f64,
    pub filter_pred: f64,
    pub join_build_row: f64,
    pub join_probe_row: f64,
    pub join_out_row: f64,
    pub agg_row: f64,
    /// Comparison of the UDF output against the filter literal.
    pub udf_compare: f64,
    pub project_row: f64,
}

impl Default for OperatorWeights {
    fn default() -> Self {
        OperatorWeights {
            scan_row: 20.0,
            filter_pred: 14.0,
            join_build_row: 46.0,
            join_probe_row: 34.0,
            join_out_row: 12.0,
            agg_row: 9.0,
            udf_compare: 12.0,
            project_row: 14.0,
        }
    }
}

/// Executor configuration.
///
/// [`ExecConfig::base`] (also `Default`) is **pure** — fixed defaults, no
/// environment reads. [`ExecConfig::from_env`] resolves the documented
/// `GRACEFUL_*` defaults exactly once, surfacing invalid values as typed
/// [`GracefulError::Config`] errors. Prefer constructing through
/// [`crate::Session`] / [`crate::ExecOptions`], which validate every field.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    pub weights: OperatorWeights,
    pub udf_weights: CostWeights,
    /// Relative amplitude of the deterministic "measurement" jitter applied
    /// to total runtime (keyed by the seed passed to [`Executor::run`]).
    /// Mimics the irreducible noise of the paper's wall-clock labels without
    /// sacrificing reproducibility.
    pub jitter: f64,
    /// Safety cap on intermediate result sizes: any operator whose output
    /// exceeds it aborts the query with a typed error instead of eating the
    /// machine's memory.
    pub max_intermediate_rows: usize,
    /// Which UDF evaluation backend serves `UdfFilter` / `UdfProject`.
    /// All backends produce identical values and accounted work; see
    /// [`UdfBackend`].
    pub udf_backend: UdfBackend,
    /// Rows per batch fed to the UDF VM (ignored by the tree-walker).
    pub udf_batch_size: usize,
    /// Worker threads for the morsel-driven operator paths. Never changes
    /// results — only wall-clock time.
    pub threads: usize,
    /// Rows per morsel for the parallel operator paths. Fixes the
    /// work-accounting float grouping, so runs with the same morsel size are
    /// bit-identical at any thread count.
    pub morsel_rows: usize,
    /// Execution strategy; see [`ExecMode`]. Both modes are bit-identical.
    pub mode: ExecMode,
    /// Attach a per-operator [`ExecProfile`] to every [`QueryRun`]. Pure
    /// observability: never changes any contracted result field.
    pub profile: bool,
    /// Static plan verification before lowering; see [`PlanVerifyMode`].
    /// Under the default `Strict`, every plan handed to [`Executor::run`]
    /// goes through `graceful_plan::analysis::verify` and malformed plans
    /// are rejected with a typed [`GracefulError::PlanVerify`] naming the
    /// offending operator; the physical lowering additionally audits its
    /// own invariants (pipeline shape, charge placement, lane strides).
    pub plan_verify: PlanVerifyMode,
    /// Apply the analysis-driven verified rewrites (constant-predicate
    /// folding, dead UDF-parameter pruning, join-payload lane pruning).
    /// Rewrites are execution hints proven to leave every contracted
    /// `QueryRun` field bit-identical — this switch exists so the
    /// differential suite can prove exactly that. Programmatic only (no
    /// environment knob); defaults to on.
    pub rewrites: bool,
    /// Skip whole filter morsels whose storage zone maps prove no row can
    /// match (see `crate::prune`). Like `rewrites`, pruning is an
    /// execution shortcut proven to leave every contracted `QueryRun` field
    /// bit-identical — the switch exists so the differential suite can prove
    /// exactly that. Programmatic only (no environment knob); defaults to
    /// on.
    pub pruning: bool,
    /// Base-row multiplier for generated databases (`GRACEFUL_SCALE`).
    /// Execution itself never reads it — it rides on the session config so
    /// benches and experiment drivers size their `datagen::generate` calls
    /// from the same validated knob surface as every other setting.
    pub data_scale: f64,
}

impl ExecConfig {
    /// The pure baseline configuration: fixed defaults, no environment
    /// reads, machine thread count from `available_parallelism`.
    pub fn base() -> Self {
        ExecConfig {
            weights: OperatorWeights::default(),
            udf_weights: CostWeights::default(),
            jitter: 0.03,
            max_intermediate_rows: 20_000_000,
            udf_backend: UdfBackend::default(),
            udf_batch_size: config::DEFAULT_UDF_BATCH,
            threads: config::default_threads(),
            morsel_rows: config::DEFAULT_MORSEL_ROWS,
            mode: ExecMode::default(),
            profile: false,
            plan_verify: PlanVerifyMode::default(),
            rewrites: true,
            pruning: true,
            data_scale: 1.0,
        }
    }

    /// [`ExecConfig::base`] with the documented `GRACEFUL_*` environment
    /// defaults applied (`GRACEFUL_UDF_BACKEND`, `GRACEFUL_UDF_BATCH`,
    /// `GRACEFUL_THREADS`, `GRACEFUL_MORSEL`, `GRACEFUL_EXEC`,
    /// `GRACEFUL_PROFILE`, `GRACEFUL_PLAN_VERIFY`, `GRACEFUL_SCALE`).
    /// Invalid values are a typed [`GracefulError::Config`], not a panic.
    ///
    /// `GRACEFUL_TRACE` and `GRACEFUL_FLIGHT` are also resolved here: a
    /// valid path arms the global span-trace collector / query flight
    /// recorder (`graceful-obs`) so the process can flush Chrome-trace JSON
    /// / per-query JSONL on demand; an invalid value is a config error like
    /// every other knob.
    pub fn from_env() -> Result<Self> {
        let cfg = GracefulError::Config;
        if let Some(path) = config::try_trace_from_env().map_err(cfg)? {
            trace::configure(&path);
        }
        if let Some(path) = config::try_flight_from_env().map_err(cfg)? {
            graceful_obs::flight::configure(&path);
        }
        Ok(ExecConfig {
            udf_backend: UdfBackend::try_from_env().map_err(cfg)?,
            udf_batch_size: config::try_udf_batch_from_env().map_err(cfg)?,
            threads: config::try_threads_from_env().map_err(cfg)?,
            morsel_rows: config::try_morsel_from_env().map_err(cfg)?,
            mode: ExecMode::try_from_env().map_err(cfg)?,
            profile: config::try_profile_from_env().map_err(cfg)?,
            plan_verify: PlanVerifyMode::try_from_env().map_err(cfg)?,
            data_scale: config::try_scale_from_env().map_err(cfg)?,
            ..ExecConfig::base()
        })
    }

    /// Check the numeric invariants the engine relies on, returning `self`
    /// unchanged. [`crate::ExecOptions::build`] funnels every construction
    /// path through here.
    pub fn validated(self) -> Result<Self> {
        let bad = |m: String| Err(GracefulError::Config(m));
        if self.udf_batch_size == 0 {
            return bad("udf_batch_size must be >= 1".into());
        }
        if self.morsel_rows == 0 {
            return bad("morsel_rows must be >= 1".into());
        }
        if self.threads == 0 {
            return bad("threads must be >= 1".into());
        }
        if self.max_intermediate_rows == 0 {
            return bad("max_intermediate_rows must be >= 1".into());
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return bad(format!("jitter must be a finite fraction in [0, 1], got {}", self.jitter));
        }
        if !self.data_scale.is_finite() || self.data_scale <= 0.0 {
            return bad(format!("data_scale must be a finite float > 0, got {}", self.data_scale));
        }
        Ok(self)
    }
}

impl Default for ExecConfig {
    /// Same as [`ExecConfig::base`] — pure, no environment reads.
    fn default() -> Self {
        ExecConfig::base()
    }
}

/// Result of executing one plan.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Total simulated runtime in nanoseconds (after jitter).
    pub runtime_ns: f64,
    /// Actual output cardinality per plan operator (same indexing as
    /// `plan.ops`).
    pub out_rows: Vec<usize>,
    /// Work units spent per plan operator (before jitter).
    pub op_work: Vec<f64>,
    /// Aggregate result value.
    pub agg_value: f64,
    /// Rows fed into the UDF operator (0 when the plan has none).
    pub udf_input_rows: usize,
    /// Approximate peak number of intermediate rows resident at once — the
    /// memory-footprint gauge the pipeline-vs-materialized bench records.
    /// This is an execution-strategy metric, **not** part of the
    /// bit-identity contract: the pipeline executor's whole point is that it
    /// stays far below the materializing executor's peak.
    pub peak_inter_rows: usize,
    /// Per-operator execution profile, attached when
    /// [`ExecConfig::profile`] is on. Like `peak_inter_rows`, this is pure
    /// observability — wall-clock times, batch counts — and **not** part of
    /// the bit-identity contract.
    pub profile: Option<ExecProfile>,
}

impl QueryRun {
    /// Runtime in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.runtime_ns * 1e-9
    }
}

/// Intermediate relation: per output row, one row-id per bound base table.
struct Inter {
    tables: Vec<String>,
    /// Flat row-id matrix, `rows.len() == n_rows * tables.len()`.
    rows: Vec<u32>,
    /// UDF-projected output column, if a UdfProject ran.
    computed: Option<Vec<Value>>,
    /// True while `rows` is still the scan's identity fill (`rows[r] == r`
    /// over one base table): set by Scan, preserved by row-preserving
    /// operators (identity filters, UDF projections), cleared by anything
    /// that selects or recombines rows. Zone pruning is only sound on
    /// identity row ids, where morsel `m` covers the contiguous base-table
    /// range the zone maps summarize.
    identity: bool,
}

impl Inter {
    fn n_rows(&self) -> usize {
        if self.tables.is_empty() {
            0
        } else {
            self.rows.len() / self.tables.len()
        }
    }

    fn table_pos(&self, table: &str) -> Option<usize> {
        self.tables.iter().position(|t| t == table)
    }

    fn row_id(&self, row: usize, table_pos: usize) -> u32 {
        self.rows[row * self.tables.len() + table_pos]
    }
}

/// The execution engine.
pub struct Executor<'a> {
    db: &'a Database,
    pub config: ExecConfig,
}

impl<'a> Executor<'a> {
    pub fn new(db: &'a Database) -> Self {
        Executor { db, config: ExecConfig::default() }
    }

    pub fn with_config(db: &'a Database, config: ExecConfig) -> Self {
        Executor { db, config }
    }

    /// Execute `plan`; `seed` keys the deterministic runtime jitter (pass the
    /// query id so re-running the same query gives the same "measurement").
    ///
    /// Dispatches on [`ExecConfig::mode`]; both modes return bit-identical
    /// `QueryRun`s (aside from the [`QueryRun::peak_inter_rows`] gauge and
    /// the opt-in [`QueryRun::profile`]).
    ///
    /// Every call increments the registry counter `exec.queries` and records
    /// its wall time into the `exec.query_wall_ns` histogram.
    pub fn run(&self, plan: &Plan, seed: u64) -> Result<QueryRun> {
        struct ExecMetrics {
            queries: Counter,
            wall_ns: Histogram,
        }
        static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
        let m = METRICS.get_or_init(|| ExecMetrics {
            queries: counter("exec.queries"),
            wall_ns: histogram("exec.query_wall_ns"),
        });
        let _span = trace::span("exec", "query").arg("seed", seed).arg("ops", plan.ops.len());
        let started = Instant::now();
        // The plan-verification gate: under the default strict mode, every
        // plan is statically checked against the catalog before any lowering
        // or execution, so malformed plans fail as one typed PlanVerify
        // error naming the operator instead of as a mid-execution surprise.
        if self.config.plan_verify == PlanVerifyMode::Strict {
            graceful_plan::analysis::verify(plan, self.db)?;
        }
        let run = match self.config.mode {
            ExecMode::Pipeline => self.run_pipelined(plan, seed),
            ExecMode::Materialize => self.run_materialized(plan, seed),
        };
        m.queries.incr();
        m.wall_ns.record(started.elapsed().as_nanos() as f64);
        // Estimator-quality telemetry (q-error histograms, flight record) —
        // write-only observability, one atomic load when everything is off.
        if let Ok(r) = &run {
            crate::analyze::observe_run(plan, &self.config, r, seed);
        }
        run
    }

    /// Execute through the physical-operator pipeline (see
    /// [`crate::physical`]), regardless of the configured mode.
    pub fn run_pipelined(&self, plan: &Plan, seed: u64) -> Result<QueryRun> {
        crate::physical::execute(self.db, plan, &self.config, seed)
    }

    /// Execute with the original materializing interpreter, regardless of
    /// the configured mode: every operator fully materializes its output
    /// before its parent runs. Kept as the differential-testing reference.
    pub fn run_materialized(&self, plan: &Plan, seed: u64) -> Result<QueryRun> {
        plan.validate()?;
        let started = Instant::now();
        let profiling = self.config.profile;
        let mut out_rows = vec![0usize; plan.ops.len()];
        let mut op_work = vec![0f64; plan.ops.len()];
        let mut wall_ns = vec![0u64; plan.ops.len()];
        let mut udf_stats: Vec<Option<UdfEvalStats>> = vec![None; plan.ops.len()];
        let mut udf_input_rows = 0usize;
        let mut agg_value = 0.0;
        let mut peak_inter_rows = 0usize;
        let mut results: Vec<Option<Inter>> = (0..plan.ops.len()).map(|_| None).collect();
        // Rewrite hints (constant folds, dead params, live lanes), computed
        // once per query. Conservative and infallible: when disabled (or
        // unprovable) everything degrades to the unrewritten path.
        let rewrites = if self.config.rewrites {
            RewriteSet::analyze(plan, self.db)
        } else {
            RewriteSet::none(plan)
        };
        for idx in 0..plan.ops.len() {
            let op = &plan.ops[idx];
            let op_started = profiling.then(Instant::now);
            // Rows resident while this operator runs: every live
            // intermediate (its inputs included — they are only dropped
            // when the operator returns) plus the output it materializes.
            let live_before: usize = results.iter().flatten().map(Inter::n_rows).sum();
            let inter = match &op.kind {
                PlanOpKind::Scan { table } => {
                    let t = self.db.table(table)?;
                    let n = t.num_rows();
                    op_work[idx] += n as f64 * self.config.weights.scan_row;
                    // Morsel-parallel identity fill: each morsel writes its
                    // own contiguous row-id range and the per-morsel chunks
                    // concatenate in morsel-index order, reproducing the
                    // sequential 0..n fill exactly.
                    let morsel = self.config.morsel_rows.max(1);
                    let rows = self.pool().ordered_reduce(
                        Pool::morsel_count(n, morsel),
                        || (),
                        |_, m| {
                            Pool::morsel_range(m, n, morsel).map(|r| r as u32).collect::<Vec<_>>()
                        },
                        Vec::with_capacity(n),
                        |mut acc: Vec<u32>, chunk| {
                            acc.extend_from_slice(&chunk);
                            acc
                        },
                    );
                    Inter { tables: vec![table.clone()], rows, computed: None, identity: true }
                }
                PlanOpKind::Filter { preds } => {
                    let child = take_child(&mut results, op.children[0], idx)?;
                    self.exec_filter(preds, &rewrites.pred_folds[idx], child, &mut op_work[idx])?
                }
                PlanOpKind::Join { left_col, right_col } => {
                    let left = take_child(&mut results, op.children[0], idx)?;
                    let right = take_child(&mut results, op.children[1], idx)?;
                    self.exec_join(
                        left_col,
                        right_col,
                        left,
                        right,
                        &rewrites.live_above[idx],
                        &mut op_work[idx],
                    )?
                }
                PlanOpKind::UdfFilter { udf, op: cmp, literal } => {
                    let child = take_child(&mut results, op.children[0], idx)?;
                    udf_input_rows = child.n_rows();
                    let stats = udf_stats[idx].insert(UdfEvalStats::default());
                    self.exec_udf_filter(udf, *cmp, *literal, child, &mut op_work[idx], stats)?
                }
                PlanOpKind::UdfProject { udf } => {
                    let child = take_child(&mut results, op.children[0], idx)?;
                    udf_input_rows = child.n_rows();
                    let stats = udf_stats[idx].insert(UdfEvalStats::default());
                    self.exec_udf_project(udf, child, &mut op_work[idx], stats)?
                }
                PlanOpKind::Agg { func, column } => {
                    let child = take_child(&mut results, op.children[0], idx)?;
                    let n = child.n_rows();
                    op_work[idx] += n as f64 * self.config.weights.agg_row;
                    agg_value = self.exec_agg(*func, column.as_ref(), &child)?;
                    Inter {
                        tables: child.tables,
                        rows: Vec::new(),
                        computed: None,
                        identity: false,
                    }
                }
            };
            out_rows[idx] =
                if matches!(op.kind, PlanOpKind::Agg { .. }) { 1 } else { inter.n_rows() };
            if out_rows[idx] > self.config.max_intermediate_rows {
                return Err(GracefulError::InvalidPlan(format!(
                    "intermediate result exceeds cap: {} rows",
                    out_rows[idx]
                )));
            }
            peak_inter_rows = peak_inter_rows.max(live_before + inter.n_rows());
            results[idx] = Some(inter);
            if let Some(t) = op_started {
                wall_ns[idx] = t.elapsed().as_nanos() as u64;
            }
        }
        let total: f64 = op_work.iter().sum();
        let runtime_ns = total * jitter_factor(seed, self.config.jitter);
        let profile = profiling.then(|| {
            // Every operator fully materializes in one pass here, so each
            // counts as one batch.
            let batches = vec![1u64; plan.ops.len()];
            ExecProfile::assemble(
                plan,
                &self.config,
                started.elapsed().as_nanos() as u64,
                &wall_ns,
                &batches,
                &out_rows,
                &op_work,
                &udf_stats,
            )
        });
        Ok(QueryRun {
            runtime_ns,
            out_rows,
            op_work,
            agg_value,
            udf_input_rows,
            peak_inter_rows,
            profile,
        })
    }

    /// Lower `plan` into its physical-operator pipelines without executing
    /// — the EXPLAIN-level view of what [`ExecMode::Pipeline`] will run.
    pub fn physical_plan<'p>(&self, plan: &'p Plan) -> Result<crate::physical::PhysicalPlan<'p>> {
        crate::physical::lower(plan)
    }

    /// Execute and write the actual cardinalities back onto the plan.
    pub fn run_and_annotate(&self, plan: &mut Plan, seed: u64) -> Result<QueryRun> {
        let run = self.run(plan, seed)?;
        for (op, &n) in plan.ops.iter_mut().zip(run.out_rows.iter()) {
            op.actual_out_rows = n as f64;
        }
        Ok(run)
    }

    fn table(&self, name: &str) -> Result<&'a Table> {
        self.db.table(name)
    }

    /// The morsel pool for this executor's thread budget. `Pool` is a
    /// trivial handle, so building it per parallel region keeps it in sync
    /// with the (public, mutable) config.
    fn pool(&self) -> Pool {
        Pool::new(self.config.threads)
    }

    fn exec_filter(
        &self,
        preds: &[graceful_plan::Pred],
        folds: &[PredFold],
        child: Inter,
        work: &mut f64,
    ) -> Result<Inter> {
        let n = child.n_rows();
        let stride = child.tables.len();
        // Work is charged closed-form over the full conjunction — folded
        // predicates cost the same as evaluated ones, which is exactly what
        // makes folding invisible to the accounting contract.
        *work += n as f64 * preds.len() as f64 * self.config.weights.filter_pred;
        // A provably-false predicate empties the output without evaluation.
        if folds.contains(&PredFold::AlwaysFalse) {
            return Ok(Inter {
                tables: child.tables,
                rows: Vec::new(),
                computed: None,
                identity: false,
            });
        }
        // Resolve predicate table positions once, skipping provably-true
        // predicates (statistics guarantee every row passes them).
        let mut resolved = Vec::with_capacity(preds.len());
        for (k, p) in preds.iter().enumerate() {
            if folds.get(k) == Some(&PredFold::AlwaysTrue) {
                continue;
            }
            let pos = child.table_pos(&p.col.table).ok_or_else(|| {
                GracefulError::InvalidPlan(format!("filter on unbound table {}", p.col.table))
            })?;
            resolved.push((p, pos, self.table(&p.col.table)?));
        }
        // Everything folded to true: the filter is the identity.
        if resolved.is_empty() {
            return Ok(Inter {
                tables: child.tables,
                rows: child.rows,
                computed: None,
                identity: child.identity,
            });
        }
        // Over identity row ids, morsel `m` covers the contiguous base-table
        // range the storage zone maps summarize, so a conjunct that provably
        // fails on every covering zone empties the morsel without touching a
        // row. The filter's work was already charged closed-form above, so
        // pruning shortcuts execution without moving a single contracted bit
        // (the differential suite proves it against `pruning: false`).
        let prune_scan = self.config.pruning && child.identity;
        // Evaluate predicates morsel-parallel; concatenating per-morsel
        // keep-lists in morsel order reproduces the sequential row order.
        let morsel = self.config.morsel_rows.max(1);
        let rows = self.pool().ordered_reduce(
            Pool::morsel_count(n, morsel),
            || (),
            |_, m| {
                let range = Pool::morsel_range(m, n, morsel);
                if prune_scan
                    && resolved
                        .iter()
                        .any(|(p, _, t)| crate::prune::pred_prunes_range(t, p, range.clone()))
                {
                    crate::prune::pruned_morsels_counter().incr();
                    return Vec::new();
                }
                let mut kept = Vec::new();
                for r in range {
                    let keep = resolved
                        .iter()
                        .all(|(p, pos, t)| p.matches(t, child.row_id(r, *pos) as usize));
                    if keep {
                        kept.extend_from_slice(&child.rows[r * stride..(r + 1) * stride]);
                    }
                }
                kept
            },
            Vec::new(),
            |mut acc: Vec<u32>, kept| {
                acc.extend_from_slice(&kept);
                acc
            },
        );
        Ok(Inter { tables: child.tables, rows, computed: None, identity: false })
    }

    fn exec_join(
        &self,
        left_col: &ColRef,
        right_col: &ColRef,
        left: Inter,
        right: Inter,
        live_above: &std::collections::BTreeSet<String>,
        work: &mut f64,
    ) -> Result<Inter> {
        let w = &self.config.weights;
        let lpos = left.table_pos(&left_col.table).ok_or_else(|| {
            GracefulError::InvalidPlan(format!("join col {left_col} not on left side"))
        })?;
        let rpos = right.table_pos(&right_col.table).ok_or_else(|| {
            GracefulError::InvalidPlan(format!("join col {right_col} not on right side"))
        })?;
        let ltable = self.table(&left_col.table)?;
        let rtable = self.table(&right_col.table)?;
        let lcol = ltable.column(&left_col.column)?;
        let rcol = rtable.column(&right_col.column)?;
        let (ln, rn) = (left.n_rows(), right.n_rows());
        *work += rn as f64 * w.join_build_row + ln as f64 * w.join_probe_row;
        // Payload pruning: output lanes whose tables nothing above the join
        // reads are dropped. Key lanes are read here from the *inputs*
        // (before the output is formed), so even they can be pruned. Row
        // counts — and with them every work charge and the peak gauge, which
        // count rows, not lanes — are untouched. With rewrites off (or when
        // duplicate table names make positional pruning ambiguous) the keep
        // sets cover every lane and the path below is the identity.
        let lstride = left.tables.len();
        let rstride = right.tables.len();
        let (keep_l, keep_r) = if self.config.rewrites {
            let lrefs: Vec<&str> = left.tables.iter().map(String::as_str).collect();
            let rrefs: Vec<&str> = right.tables.iter().map(String::as_str).collect();
            join_keep_lanes(live_above, &lrefs, &rrefs)
                .unwrap_or(((0..lstride).collect(), (0..rstride).collect()))
        } else {
            ((0..lstride).collect(), (0..rstride).collect())
        };
        // Build on the right side (the newly joined table): a radix-
        // partitioned index whose per-key match lists are exactly the
        // row-ascending lists the old sequential HashMap build produced
        // (see `crate::join`), built morsel-parallel.
        let morsel = self.config.morsel_rows.max(1);
        let pool = self.pool();
        let build = crate::join::PartitionedIndex::build(&pool, rn, morsel, |r| {
            rcol.get_i64(right.row_id(r, rpos) as usize)
        });
        // Probe morsel-parallel over the left side. Each morsel emits its
        // own output chunk; merging chunks in morsel-index order reproduces
        // the sequential probe's output row order exactly. The intermediate
        // cap is enforced per morsel (bounding memory mid-probe) and again
        // cumulatively on merge — a query errors iff its total output
        // exceeds the cap, the same outcome the sequential row-by-row check
        // produced.
        let cap = self.config.max_intermediate_rows;
        let parts = pool.map_init(
            Pool::morsel_count(ln, morsel),
            || (),
            |_, m| -> Result<(Vec<u32>, usize)> {
                let mut chunk: Vec<u32> = Vec::new();
                let mut emitted = 0usize;
                for l in Pool::morsel_range(m, ln, morsel) {
                    let lid = left.row_id(l, lpos) as usize;
                    let Some(k) = lcol.get_i64(lid) else { continue };
                    if let Some(matches) = build.get(k) {
                        for &r in matches {
                            let lrow = &left.rows[l * lstride..(l + 1) * lstride];
                            let rrow =
                                &right.rows[r as usize * rstride..(r as usize + 1) * rstride];
                            chunk.extend(keep_l.iter().map(|&i| lrow[i]));
                            chunk.extend(keep_r.iter().map(|&i| rrow[i]));
                            emitted += 1;
                            if emitted > cap {
                                return Err(GracefulError::InvalidPlan(
                                    "join output exceeds intermediate cap".into(),
                                ));
                            }
                        }
                    }
                }
                Ok((chunk, emitted))
            },
        );
        let mut rows: Vec<u32> = Vec::new();
        let mut n_out = 0usize;
        for part in parts {
            let (chunk, emitted) = part?;
            n_out += emitted;
            if n_out > cap {
                return Err(GracefulError::InvalidPlan(
                    "join output exceeds intermediate cap".into(),
                ));
            }
            rows.extend_from_slice(&chunk);
        }
        *work += n_out as f64 * w.join_out_row;
        let mut tables: Vec<String> = keep_l.iter().map(|&i| left.tables[i].clone()).collect();
        tables.extend(keep_r.iter().map(|&i| right.tables[i].clone()));
        debug_assert_eq!(rows.len() % tables.len(), 0);
        Ok(Inter { tables, rows, computed: None, identity: false })
    }

    fn udf_args(
        &self,
        udf: &graceful_udf::GeneratedUdf,
        inter: &Inter,
    ) -> Result<(usize, Vec<&'a graceful_storage::Column>)> {
        let pos = inter.table_pos(&udf.table).ok_or_else(|| {
            GracefulError::InvalidPlan(format!("UDF table {} not bound", udf.table))
        })?;
        let t = self.table(&udf.table)?;
        let cols = udf.input_columns.iter().map(|c| t.column(c)).collect::<Result<Vec<_>>>()?;
        Ok((pos, cols))
    }

    /// Evaluate `udf` over every row of `child`, invoking `consume(row, value)`
    /// for each output in row order. `per_row_overhead` is the operator's own
    /// per-row work (comparison against the filter literal, projection
    /// bookkeeping).
    ///
    /// Rows are split into `morsel_rows`-row morsels executed on the pool;
    /// each worker owns one [`UdfEval`] instance (tree-walking interpreter,
    /// or batch VM warmed once and reused across its morsels). Work is
    /// summed per morsel and merged in morsel-index order, so the accounted
    /// totals are bit-identical for any thread count. The backends still
    /// only differ in float summation *grouping* (per row vs per batch
    /// within a morsel), which changes `op_work` by at most rounding in the
    /// last ulps.
    fn exec_udf_rows(
        &self,
        udf: &graceful_udf::GeneratedUdf,
        child: &Inter,
        work: &mut f64,
        stats: &mut UdfEvalStats,
        per_row_overhead: f64,
        mut consume: impl FnMut(usize, Value),
    ) -> Result<()> {
        let (pos, cols) = self.udf_args(udf, child)?;
        let n = child.n_rows();
        let spec = UdfEvalSpec::prepare(
            udf,
            cols,
            self.config.udf_backend,
            self.config.udf_weights.clone(),
            self.config.udf_batch_size,
            per_row_overhead,
            self.config.rewrites,
        )?;
        let morsel = self.config.morsel_rows.max(1);
        let parts = spec.eval_morsels(&self.pool(), n, morsel, |r| child.row_id(r, pos) as usize);
        // Ordered merge: work totals and output rows in morsel-index order
        // (== row order); the first failing morsel wins deterministically.
        for (m, part) in parts.into_iter().enumerate() {
            let (morsel_work, values, morsel_stats) = part?;
            *work += morsel_work;
            stats.merge(&morsel_stats);
            let base = m * morsel;
            for (j, value) in values.into_iter().enumerate() {
                consume(base + j, value);
            }
        }
        record_udf_metrics(stats);
        Ok(())
    }

    fn exec_udf_filter(
        &self,
        udf: &graceful_udf::GeneratedUdf,
        cmp: graceful_udf::ast::CmpOp,
        literal: f64,
        child: Inter,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<Inter> {
        let stride = child.tables.len();
        let mut rows = Vec::new();
        self.exec_udf_rows(
            udf,
            &child,
            work,
            stats,
            self.config.weights.udf_compare,
            |r, value| {
                let keep = match value.as_f64() {
                    Some(v) => cmp_f64(cmp, v, literal),
                    None => false, // NULL and text outputs never pass the filter
                };
                if keep {
                    rows.extend_from_slice(&child.rows[r * stride..(r + 1) * stride]);
                }
            },
        )?;
        Ok(Inter { tables: child.tables, rows, computed: None, identity: false })
    }

    fn exec_udf_project(
        &self,
        udf: &graceful_udf::GeneratedUdf,
        child: Inter,
        work: &mut f64,
        stats: &mut UdfEvalStats,
    ) -> Result<Inter> {
        let n = child.n_rows();
        let mut computed = Vec::with_capacity(n);
        self.exec_udf_rows(
            udf,
            &child,
            work,
            stats,
            self.config.weights.project_row,
            |_, value| computed.push(value),
        )?;
        Ok(Inter {
            tables: child.tables,
            rows: child.rows,
            computed: Some(computed),
            identity: child.identity,
        })
    }

    fn exec_agg(&self, func: AggFunc, column: Option<&ColRef>, child: &Inter) -> Result<f64> {
        let n = child.n_rows();
        if func == AggFunc::CountStar {
            return Ok(n as f64);
        }
        // Fold each morsel into its own partial AggState, then merge
        // partials in morsel-index order (see `AggState::merge`). The float
        // grouping is fixed by the morsel size alone, so the result is
        // bit-identical at any thread count — and matches the pipeline
        // executor, which rebatches its agg input to the same morsel
        // boundaries.
        let morsel = self.config.morsel_rows.max(1);
        let fold = |observe_of: &(dyn Fn(usize) -> Option<f64> + Sync)| {
            self.pool().ordered_reduce(
                Pool::morsel_count(n, morsel),
                || (),
                |_, m| {
                    let mut part = AggState::new(func);
                    for r in Pool::morsel_range(m, n, morsel) {
                        part.observe(observe_of(r));
                    }
                    part
                },
                AggState::new(func),
                |mut acc: AggState, part| {
                    acc.merge(&part);
                    acc
                },
            )
        };
        let state = match column {
            Some(c) => {
                let pos = child.table_pos(&c.table).ok_or_else(|| {
                    GracefulError::InvalidPlan(format!("agg on unbound table {}", c.table))
                })?;
                let col = self.table(&c.table)?.column(&c.column)?;
                fold(&|r| col.get_f64(child.row_id(r, pos) as usize))
            }
            None => {
                // Aggregate the UDF-projected column.
                let computed = child.computed.as_ref().ok_or_else(|| {
                    GracefulError::InvalidPlan(
                        "agg over UDF output requires a UdfProject below".into(),
                    )
                })?;
                fold(&|r| computed[r].as_f64())
            }
        };
        Ok(state.finish())
    }
}

/// Streaming aggregate accumulator shared by both executor modes, so their
/// float fold order is identical by construction. Values are observed **in
/// row order** within a morsel-sized partial; `Sum`/`Avg` left-fold
/// `sum += v`, `Min`/`Max` left-fold through `f64::min`/`f64::max` (NaN
/// inputs are absorbed per IEEE min/max). Partials combine via
/// [`AggState::merge`] in morsel-index order, so the full fold shape is a
/// function of the morsel size alone — identical for any thread count and
/// in both executors.
///
/// Empty-input semantics are pinned: `COUNT(*)` of zero rows is 0, and
/// `SUM`/`AVG`/`MIN`/`MAX` over zero observed values are 0.0 (the engine's
/// aggregate channel is a plain `f64`; there is no NULL).
pub(crate) struct AggState {
    func: AggFunc,
    /// Input rows seen (including NULLs) — the `COUNT(*)` tally.
    rows: usize,
    sum: f64,
    /// Non-NULL values observed.
    count: usize,
    extreme: f64,
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> Self {
        AggState { func, rows: 0, sum: 0.0, count: 0, extreme: 0.0 }
    }

    /// Count `n` input rows without touching values (the `COUNT(*)` path,
    /// which never reads a column).
    pub(crate) fn count_rows(&mut self, n: usize) {
        self.rows += n;
    }

    /// Observe one row's value in row order (`None` = NULL / non-numeric).
    #[inline]
    pub(crate) fn observe(&mut self, v: Option<f64>) {
        self.rows += 1;
        let Some(v) = v else { return };
        match self.func {
            AggFunc::CountStar => {}
            AggFunc::Sum | AggFunc::Avg => {
                self.sum += v;
                self.count += 1;
            }
            AggFunc::Min => {
                self.extreme = if self.count == 0 { v } else { self.extreme.min(v) };
                self.count += 1;
            }
            AggFunc::Max => {
                self.extreme = if self.count == 0 { v } else { self.extreme.max(v) };
                self.count += 1;
            }
        }
    }

    /// Fold another accumulator's state into this one. Partials are built
    /// per morsel and merged **in morsel-index order**, so the float chain
    /// is `((m0 ⊕ m1) ⊕ m2) …` — fixed by the morsel boundaries, never by
    /// thread count. `Sum`/`Avg` merge by `sum += o.sum`; `Min`/`Max`
    /// replay the same `f64::min`/`f64::max` left-fold the observes use
    /// (IEEE min/max ignore NaN, which keeps the fold associative across
    /// morsel splits).
    pub(crate) fn merge(&mut self, o: &AggState) {
        debug_assert_eq!(self.func, o.func);
        self.rows += o.rows;
        if o.count == 0 {
            return;
        }
        match self.func {
            AggFunc::CountStar => {}
            AggFunc::Sum | AggFunc::Avg => self.sum += o.sum,
            AggFunc::Min => {
                self.extreme = if self.count == 0 { o.extreme } else { self.extreme.min(o.extreme) }
            }
            AggFunc::Max => {
                self.extreme = if self.count == 0 { o.extreme } else { self.extreme.max(o.extreme) }
            }
        }
        self.count += o.count;
    }

    pub(crate) fn finish(&self) -> f64 {
        match self.func {
            AggFunc::CountStar => self.rows as f64,
            AggFunc::Sum => self.sum,
            AggFunc::Avg => {
                if self.count > 0 {
                    self.sum / self.count as f64
                } else {
                    0.0
                }
            }
            AggFunc::Min | AggFunc::Max => {
                if self.count > 0 {
                    self.extreme
                } else {
                    0.0
                }
            }
        }
    }
}

/// Take a child's materialized result, promoting the former "child executed"
/// panic into a typed error. Reachable only with `GRACEFUL_PLAN_VERIFY=off`
/// — the strict gate rejects dangling children and non-topological arenas
/// before execution starts — and bounds-safe even for out-of-range indices.
fn take_child(results: &mut [Option<Inter>], child: usize, parent: usize) -> Result<Inter> {
    results.get_mut(child).and_then(Option::take).ok_or_else(|| {
        GracefulError::PlanVerify(format!(
            "op {parent} consumes child {child}, which has not produced a result \
             (malformed DAG reached the engine; run with GRACEFUL_PLAN_VERIFY=strict \
             to reject it before execution)"
        ))
    })
}

pub(crate) fn cmp_f64(op: graceful_udf::ast::CmpOp, a: f64, b: f64) -> bool {
    use graceful_udf::ast::CmpOp::*;
    match op {
        Lt => a < b,
        Le => a <= b,
        Gt => a > b,
        Ge => a >= b,
        Eq => a == b,
        Ne => a != b,
    }
}

/// Deterministic multiplicative jitter in `[1-amp, 1+amp]`, keyed by `seed`.
pub(crate) fn jitter_factor(seed: u64, amp: f64) -> f64 {
    // SplitMix64 scramble → uniform in [0,1).
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let u = (z >> 11) as f64 / (1u64 << 53) as f64;
    1.0 + amp * (2.0 * u - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_common::rng::Rng;
    use graceful_plan::{build_plan, QueryGenerator, UdfPlacement, UdfUsage};
    use graceful_storage::datagen::{generate, schema};
    use graceful_udf::generator::apply_adaptations;

    fn db() -> Database {
        generate(&schema("tpc_h"), 0.03, 5)
    }

    #[test]
    fn count_star_scan() {
        let db = db();
        use graceful_plan::{Plan, PlanOp};
        let plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![0]),
            ],
            root: 1,
        };
        let run = Executor::new(&db).run(&plan, 1).unwrap();
        assert_eq!(run.agg_value, db.table("orders_t").unwrap().num_rows() as f64);
        assert_eq!(run.out_rows[1], 1);
        assert!(run.runtime_ns > 0.0);
    }

    #[test]
    fn join_cardinality_matches_fk_semantics() {
        // orders_t ⋈ customer_t on cust_id=id: every order matches exactly
        // one customer, so |join| == |orders|.
        let db = db();
        use graceful_plan::{ColRef, Plan, PlanOp};
        let plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("orders_t", "cust_id"),
                        right_col: ColRef::new("customer_t", "id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        let run = Executor::new(&db).run(&plan, 1).unwrap();
        assert_eq!(run.out_rows[2], db.table("orders_t").unwrap().num_rows());
    }

    #[test]
    fn pushdown_and_pullup_agree_on_results() {
        // The core semantic invariant behind the whole paper: moving the UDF
        // filter must not change the query answer, only its cost.
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(7);
        let mut checked = 0;
        for id in 0..40 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if !spec.has_udf() || spec.udf_usage != UdfUsage::Filter || spec.joins.is_empty() {
                continue;
            }
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            let exec = Executor::new(&database);
            let pd = build_plan(&spec, UdfPlacement::PushDown).unwrap();
            let pu = build_plan(&spec, UdfPlacement::PullUp).unwrap();
            let r1 = exec.run(&pd, id).unwrap();
            let r2 = exec.run(&pu, id).unwrap();
            let rel = (r1.agg_value - r2.agg_value).abs() / r1.agg_value.abs().max(1e-9);
            assert!(rel < 1e-9, "results differ: {} vs {}", r1.agg_value, r2.agg_value);
            // Final cardinalities agree too.
            assert_eq!(r1.out_rows[pd.root], r2.out_rows[pu.root]);
            checked += 1;
        }
        assert!(checked >= 5, "only {checked} UDF-filter queries generated");
    }

    #[test]
    fn udf_position_changes_cost_not_semantics() {
        // With a selective plain filter above the UDF table, pull-up should
        // process fewer UDF rows than push-down whenever joins filter rows.
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(11);
        for id in 100..160 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if !spec.has_udf() || spec.udf_usage != UdfUsage::Filter || spec.joins.len() < 2 {
                continue;
            }
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            let exec = Executor::new(&database);
            let pd = build_plan(&spec, UdfPlacement::PushDown).unwrap();
            let pu = build_plan(&spec, UdfPlacement::PullUp).unwrap();
            let r_pd = exec.run(&pd, id).unwrap();
            let r_pu = exec.run(&pu, id).unwrap();
            // UDF input rows recorded for both runs.
            assert!(r_pd.udf_input_rows > 0 || r_pu.udf_input_rows > 0);
            return;
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let f1 = jitter_factor(42, 0.03);
        let f2 = jitter_factor(42, 0.03);
        assert_eq!(f1, f2);
        for seed in 0..100 {
            let f = jitter_factor(seed, 0.03);
            assert!((0.97..=1.03).contains(&f));
        }
        assert_ne!(jitter_factor(1, 0.03), jitter_factor(2, 0.03));
    }

    #[test]
    fn actual_cards_annotated() {
        let db = db();
        use graceful_plan::{Plan, PlanOp};
        let mut plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "nation_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![0]),
            ],
            root: 1,
        };
        Executor::new(&db).run_and_annotate(&mut plan, 3).unwrap();
        assert_eq!(plan.ops[0].actual_out_rows, db.table("nation_t").unwrap().num_rows() as f64);
        assert_eq!(plan.ops[1].actual_out_rows, 1.0);
    }

    #[test]
    fn sum_and_avg() {
        let db = db();
        use graceful_plan::{ColRef, Plan, PlanOp};
        let mk = |func| Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Agg { func, column: Some(ColRef::new("lineitem_t", "quantity")) },
                    vec![0],
                ),
            ],
            root: 1,
        };
        let exec = Executor::new(&db);
        let sum = exec.run(&mk(AggFunc::Sum), 1).unwrap().agg_value;
        let avg = exec.run(&mk(AggFunc::Avg), 1).unwrap().agg_value;
        let n = db.table("lineitem_t").unwrap().num_rows() as f64;
        assert!((sum / n - avg).abs() < 1e-9);
        assert!((1.0..=50.0).contains(&avg));
    }

    #[test]
    fn vm_backend_matches_tree_walker_on_generated_queries() {
        // Same plans, same data, both backends: identical answers and
        // cardinalities, and runtimes equal up to float-summation grouping.
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(23);
        let mut checked = 0;
        for id in 0..60 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if !spec.has_udf() {
                continue;
            }
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            let tree = Executor::with_config(
                &database,
                ExecConfig { udf_backend: UdfBackend::TreeWalk, ..ExecConfig::default() },
            );
            let vm = Executor::with_config(
                &database,
                ExecConfig {
                    udf_backend: UdfBackend::Vm,
                    udf_batch_size: 7, // deliberately awkward batch boundary
                    ..ExecConfig::default()
                },
            );
            for placement in graceful_plan::valid_placements(&spec) {
                let plan = build_plan(&spec, placement).unwrap();
                let a = tree.run(&plan, id).unwrap();
                let b = vm.run(&plan, id).unwrap();
                assert_eq!(a.out_rows, b.out_rows, "cardinalities differ (query {id})");
                assert_eq!(a.agg_value, b.agg_value, "answers differ (query {id})");
                assert_eq!(a.udf_input_rows, b.udf_input_rows);
                let rel = (a.runtime_ns - b.runtime_ns).abs() / a.runtime_ns.max(1.0);
                assert!(rel < 1e-9, "runtimes diverge: {} vs {}", a.runtime_ns, b.runtime_ns);
                checked += 1;
            }
        }
        assert!(checked >= 10, "only {checked} UDF plans compared");
    }

    #[test]
    fn simd_backend_matches_vm_bit_exactly_on_generated_queries() {
        // The columnar fast path merges the same per-row costs in the same
        // order as the batch VM, so the whole QueryRun — runtime included —
        // must be bit-identical, not merely close.
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(31);
        let mut checked = 0;
        for id in 0..60 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if !spec.has_udf() {
                continue;
            }
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            for batch in [7usize, 1024] {
                let vm = Executor::with_config(
                    &database,
                    ExecConfig {
                        udf_backend: UdfBackend::Vm,
                        udf_batch_size: batch,
                        ..ExecConfig::default()
                    },
                );
                let simd = Executor::with_config(
                    &database,
                    ExecConfig {
                        udf_backend: UdfBackend::Simd,
                        udf_batch_size: batch,
                        ..ExecConfig::default()
                    },
                );
                for placement in graceful_plan::valid_placements(&spec) {
                    let plan = build_plan(&spec, placement).unwrap();
                    let a = vm.run(&plan, id).unwrap();
                    let b = simd.run(&plan, id).unwrap();
                    assert_eq!(a.out_rows, b.out_rows, "cardinalities differ (query {id})");
                    assert_eq!(
                        a.agg_value.to_bits(),
                        b.agg_value.to_bits(),
                        "answers differ (query {id})"
                    );
                    assert_eq!(
                        a.runtime_ns.to_bits(),
                        b.runtime_ns.to_bits(),
                        "runtimes differ (query {id}): {} vs {}",
                        a.runtime_ns,
                        b.runtime_ns
                    );
                    for (x, y) in a.op_work.iter().zip(b.op_work.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "op_work differs (query {id})");
                    }
                    checked += 1;
                }
            }
        }
        assert!(checked >= 10, "only {checked} UDF plans compared");
    }

    #[test]
    fn vm_backend_batch_size_does_not_change_results() {
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(29);
        for id in 200..260 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if !spec.has_udf() {
                continue;
            }
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            let plan = build_plan(&spec, graceful_plan::UdfPlacement::PushDown).unwrap();
            let mut previous: Option<QueryRun> = None;
            for batch in [1usize, 3, 1024] {
                let exec = Executor::with_config(
                    &database,
                    ExecConfig {
                        udf_backend: UdfBackend::Vm,
                        udf_batch_size: batch,
                        ..ExecConfig::default()
                    },
                );
                let run = exec.run(&plan, id).unwrap();
                if let Some(p) = &previous {
                    assert_eq!(p.out_rows, run.out_rows);
                    assert_eq!(p.agg_value, run.agg_value);
                }
                previous = Some(run);
            }
            return;
        }
        panic!("no UDF query generated");
    }

    #[test]
    fn pipeline_is_bit_identical_to_materialized_on_generated_queries() {
        // The pipeline executor must reproduce the materializing engine
        // exactly: every QueryRun value, cardinality and per-operator work
        // total, bit for bit, across UDF backends × thread counts × batch
        // sizes, in every valid UDF placement.
        let mut database = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(47);
        let mut checked = 0;
        for id in 0..80 {
            let spec = g.generate(&database, id, &mut rng).unwrap();
            if let Some(u) = &spec.udf {
                apply_adaptations(&mut database, &u.adaptations).unwrap();
            }
            for backend in [UdfBackend::TreeWalk, UdfBackend::Vm, UdfBackend::Simd] {
                for threads in [1usize, 4] {
                    let cfg = |mode| ExecConfig {
                        udf_backend: backend,
                        udf_batch_size: 37,
                        threads,
                        morsel_rows: 64,
                        mode,
                        ..ExecConfig::default()
                    };
                    let mat = Executor::with_config(&database, cfg(ExecMode::Materialize));
                    let pipe = Executor::with_config(&database, cfg(ExecMode::Pipeline));
                    for placement in graceful_plan::valid_placements(&spec) {
                        let plan = match build_plan(&spec, placement) {
                            Ok(p) => p,
                            Err(_) => continue,
                        };
                        let a = mat.run(&plan, id).unwrap();
                        let b = pipe.run(&plan, id).unwrap();
                        assert_eq!(a.out_rows, b.out_rows, "cardinalities (query {id})");
                        assert_eq!(a.udf_input_rows, b.udf_input_rows, "udf rows (query {id})");
                        assert_eq!(
                            a.agg_value.to_bits(),
                            b.agg_value.to_bits(),
                            "answers (query {id}): {} vs {}",
                            a.agg_value,
                            b.agg_value
                        );
                        assert_eq!(
                            a.runtime_ns.to_bits(),
                            b.runtime_ns.to_bits(),
                            "runtimes (query {id}, {backend:?}, {threads} threads): {} vs {}",
                            a.runtime_ns,
                            b.runtime_ns
                        );
                        for (i, (x, y)) in a.op_work.iter().zip(b.op_work.iter()).enumerate() {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "op_work[{i}] (query {id}): {x} vs {y}"
                            );
                        }
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked >= 100, "only {checked} plans compared");
    }

    #[test]
    fn pipeline_peaks_below_materialized_on_join_plans() {
        // The memory story: a join + filter chain must keep fewer rows
        // resident in the pipeline than under full materialization.
        let db = db();
        use graceful_plan::{ColRef, Plan, PlanOp};
        let plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "lineitem_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("lineitem_t", "order_id"),
                        right_col: ColRef::new("orders_t", "id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        let cfg = |mode| ExecConfig { threads: 1, morsel_rows: 256, mode, ..ExecConfig::default() };
        let mat = Executor::with_config(&db, cfg(ExecMode::Materialize)).run(&plan, 1).unwrap();
        let pipe = Executor::with_config(&db, cfg(ExecMode::Pipeline)).run(&plan, 1).unwrap();
        assert_eq!(mat.agg_value, pipe.agg_value);
        assert!(
            pipe.peak_inter_rows < mat.peak_inter_rows,
            "pipeline resident rows {} should undercut materialized {}",
            pipe.peak_inter_rows,
            mat.peak_inter_rows
        );
    }

    #[test]
    fn physical_plan_explains_pipeline_structure() {
        let db = db();
        use graceful_plan::{ColRef, Plan, PlanOp};
        let plan = Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(PlanOpKind::Scan { table: "customer_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::Join {
                        left_col: ColRef::new("orders_t", "cust_id"),
                        right_col: ColRef::new("customer_t", "id"),
                    },
                    vec![0, 1],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
            ],
            root: 3,
        };
        let phys = Executor::new(&db).physical_plan(&plan).unwrap();
        assert_eq!(phys.pipelines.len(), 2, "build pipeline + probe pipeline");
        let text = phys.explain();
        assert!(text.contains("HASH_BUILD customer_t.id"), "{text}");
        assert!(text.contains("HASH_PROBE orders_t.cust_id"), "{text}");
        assert!(text.contains("AGG COUNT(*)"), "{text}");
    }

    #[test]
    fn more_expensive_udfs_cost_more() {
        use graceful_udf::parse_udf;
        use graceful_udf::GeneratedUdf;
        use std::sync::Arc;
        let db = db();
        let cheap_udf = parse_udf("def f(x0):\n    return x0 + 1\n").unwrap();
        let pricey_udf = parse_udf(
            "def f(x0):\n    z = 0\n    for i in range(40):\n        z = z + math.sqrt(x0) * np.log(x0 + 1)\n    return z + x0\n",
        )
        .unwrap();
        let mk = |def: graceful_udf::UdfDef| {
            let source = graceful_udf::print_udf(&def);
            Arc::new(GeneratedUdf {
                def,
                source,
                table: "orders_t".into(),
                input_columns: vec!["totalprice".into()],
                adaptations: vec![],
            })
        };
        use graceful_plan::{Plan, PlanOp};
        let plan_for = |udf: Arc<GeneratedUdf>| Plan {
            ops: vec![
                PlanOp::new(PlanOpKind::Scan { table: "orders_t".into() }, vec![]),
                PlanOp::new(
                    PlanOpKind::UdfFilter { udf, op: graceful_udf::ast::CmpOp::Ge, literal: 0.0 },
                    vec![0],
                ),
                PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![1]),
            ],
            root: 2,
        };
        let exec = Executor::new(&db);
        let cheap = exec.run(&plan_for(mk(cheap_udf)), 1).unwrap();
        let pricey = exec.run(&plan_for(mk(pricey_udf)), 1).unwrap();
        assert!(
            pricey.runtime_ns > 5.0 * cheap.runtime_ns,
            "loop-heavy UDF should dominate: {} vs {}",
            pricey.runtime_ns,
            cheap.runtime_ns
        );
    }
}
