//! Radix-partitioned parallel hash-join build and probe.
//!
//! Both executors (the materializing engine and the pipeline) share this
//! index so their join semantics cannot drift. The build side is split into
//! a fixed [`JOIN_PARTITIONS`] partitions by a pure hash of the key — the
//! layout depends only on key values, never on thread count or arrival
//! order — and each partition's hash table is built independently, so the
//! three build phases parallelize without locks:
//!
//! 1. **Scatter** (parallel, per build morsel): bucket `(key, row)` pairs
//!    by partition.
//! 2. **Merge** (sequential, morsel-index order): concatenate each
//!    partition's buckets in morsel order, restoring global row order
//!    within every partition.
//! 3. **Index** (parallel, per partition): insert in that order, so every
//!    key's match list is exactly the row-ascending list the sequential
//!    `HashMap` build produced.
//!
//! Probes then read identical match lists regardless of `GRACEFUL_THREADS`,
//! which is what keeps join output — and everything downstream of it —
//! bit-identical. Each build reports its non-empty partition count to the
//! registry counter `join.partitions`.

use graceful_obs::registry::{counter, Counter};
use graceful_runtime::Pool;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Fixed partition fan-out. A power of two so the hash folds with a mask;
/// small enough that phase-2 merge stays cheap on tiny build sides.
pub(crate) const JOIN_PARTITIONS: usize = 16;

/// Registry counter for non-empty partitions across all join builds.
fn join_partitions_counter() -> &'static Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    C.get_or_init(|| counter("join.partitions"))
}

/// Partition of a join key: SplitMix64 finalizer folded to the fan-out.
/// Pure function of the key so the partition layout is reproducible.
#[inline]
pub(crate) fn partition_of(key: i64) -> usize {
    let mut z = (key as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z & (JOIN_PARTITIONS as u64 - 1)) as usize
}

/// Partitioned build-side index: key → build-row ids ascending.
pub(crate) struct PartitionedIndex {
    parts: Vec<HashMap<i64, Vec<u32>>>,
}

impl PartitionedIndex {
    /// Build from `n` build-side rows chunked into `morsel`-row morsels.
    /// `key_of(r)` returns row `r`'s join key, or `None` for NULL keys
    /// (which never match and are dropped here).
    pub(crate) fn build(
        pool: &Pool,
        n: usize,
        morsel: usize,
        key_of: impl Fn(usize) -> Option<i64> + Sync,
    ) -> Self {
        // Phase 1: scatter each morsel's keys into per-partition buckets.
        let scattered = pool.map_init(
            Pool::morsel_count(n, morsel),
            || (),
            |_, m| {
                let mut buckets: Vec<Vec<(i64, u32)>> = vec![Vec::new(); JOIN_PARTITIONS];
                for r in Pool::morsel_range(m, n, morsel) {
                    if let Some(k) = key_of(r) {
                        buckets[partition_of(k)].push((k, r as u32));
                    }
                }
                buckets
            },
        );
        // Phase 2: concatenate per partition in morsel-index order. Rows
        // within a partition come out globally ascending.
        let mut per_part: Vec<Vec<(i64, u32)>> = vec![Vec::new(); JOIN_PARTITIONS];
        for buckets in scattered {
            for (p, b) in buckets.into_iter().enumerate() {
                per_part[p].extend(b);
            }
        }
        // Phase 3: index each partition independently.
        let parts = pool.ordered_map(&per_part, |_, entries| {
            let mut map: HashMap<i64, Vec<u32>> = HashMap::with_capacity(entries.len());
            for &(k, r) in entries {
                map.entry(k).or_default().push(r);
            }
            map
        });
        join_partitions_counter().add(parts.iter().filter(|m| !m.is_empty()).count() as u64);
        PartitionedIndex { parts }
    }

    /// Build-row ids matching `key`, ascending; `None` when absent.
    #[inline]
    pub(crate) fn get(&self, key: i64) -> Option<&[u32]> {
        self.parts[partition_of(key)].get(&key).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Option<i64>> {
        // Duplicates, NULLs, negatives, and extremes across partitions.
        let mut ks: Vec<Option<i64>> = (0..997).map(|i| Some((i * 37) % 101 - 50)).collect();
        ks[13] = None;
        ks[500] = None;
        ks.push(Some(i64::MIN));
        ks.push(Some(i64::MAX));
        ks
    }

    fn index_with(threads: usize, morsel: usize) -> PartitionedIndex {
        let ks = keys();
        let pool = Pool::new(threads);
        PartitionedIndex::build(&pool, ks.len(), morsel, move |r| ks[r])
    }

    #[test]
    fn matches_sequential_hashmap_build_exactly() {
        let ks = keys();
        let mut reference: HashMap<i64, Vec<u32>> = HashMap::new();
        for (r, k) in ks.iter().enumerate() {
            if let Some(k) = k {
                reference.entry(*k).or_default().push(r as u32);
            }
        }
        for threads in [1, 2, 4] {
            for morsel in [1, 64, 10_000] {
                let idx = index_with(threads, morsel);
                for (k, rows) in &reference {
                    assert_eq!(
                        idx.get(*k),
                        Some(rows.as_slice()),
                        "key {k} at threads={threads} morsel={morsel}"
                    );
                }
                assert!(idx.get(999_999).is_none());
            }
        }
    }

    #[test]
    fn partition_of_covers_fanout_and_is_stable() {
        let mut seen = [false; JOIN_PARTITIONS];
        for k in -2000i64..2000 {
            let p = partition_of(k);
            assert!(p < JOIN_PARTITIONS);
            assert_eq!(p, partition_of(k), "pure function of the key");
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "4k consecutive keys should touch all partitions");
    }
}
