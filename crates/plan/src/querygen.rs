//! The SPJA+UDF workload generator (Section V, component 2).
//!
//! Queries are generated per database: a foreign-key random walk builds a
//! join tree of 1–5 tables, plain filters are drawn from column statistics,
//! one synthetic UDF is attached (as a filter predicate or a projection), and
//! the UDF-filter literal is chosen by *sampling the UDF's output
//! distribution* so the filter selectivity lands on a log-uniform target in
//! `[0.0001, 1.0]` — Table II's selectivity range.

use crate::logical::{AggFunc, ColRef};
use crate::predicate::Pred;
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use graceful_storage::{DataType, Database, Value};
use graceful_udf::ast::CmpOp;
use graceful_udf::{GeneratedUdf, Interpreter, UdfGenerator};
use std::sync::Arc;

/// How the UDF appears in the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdfUsage {
    /// `WHERE udf(args) <= literal` — movable by the advisor.
    Filter,
    /// `SELECT AGG(udf(args))` — always computed after joins.
    Projection,
}

/// One join step of the FK walk.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// Newly joined table.
    pub table: String,
    /// Join column on the already-bound side.
    pub left_col: ColRef,
    /// Join column on the new table.
    pub right_col: ColRef,
}

/// A generated query specification (independent of UDF placement).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    pub id: u64,
    pub database: String,
    pub base_table: String,
    pub joins: Vec<JoinStep>,
    pub filters: Vec<Pred>,
    pub udf: Option<Arc<GeneratedUdf>>,
    pub udf_usage: UdfUsage,
    pub udf_filter_op: CmpOp,
    pub udf_filter_literal: f64,
    /// Selectivity the literal was calibrated for (ground truth may differ).
    pub target_udf_selectivity: f64,
    pub agg: AggFunc,
    pub agg_col: Option<ColRef>,
}

impl QuerySpec {
    pub fn has_udf(&self) -> bool {
        self.udf.is_some()
    }

    /// All tables bound by the query (base + joined).
    pub fn tables(&self) -> Vec<&str> {
        let mut out = vec![self.base_table.as_str()];
        out.extend(self.joins.iter().map(|j| j.table.as_str()));
        out
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Probability weights for 0..=5 joins.
    pub join_weights: [f64; 6],
    /// Max plain filter predicates per bound table.
    pub max_filters_per_table: usize,
    /// Probability that the UDF is a filter (vs. projection) —
    /// Table II: 72k filter vs 21k projection queries.
    pub udf_filter_prob: f64,
    /// Probability that a query has a UDF at all (the paper trains with
    /// <10% non-UDF queries).
    pub udf_prob: f64,
    /// Rows sampled to calibrate the UDF-filter literal.
    pub calibration_sample: usize,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            join_weights: [0.12, 0.24, 0.26, 0.2, 0.12, 0.06],
            max_filters_per_table: 3,
            udf_filter_prob: 0.77,
            udf_prob: 0.9,
            calibration_sample: 240,
        }
    }
}

/// The workload generator.
#[derive(Debug, Clone, Default)]
pub struct QueryGenerator {
    pub config: QueryGenConfig,
    pub udf_gen: UdfGenerator,
}

impl QueryGenerator {
    pub fn new(config: QueryGenConfig, udf_gen: UdfGenerator) -> Self {
        QueryGenerator { config, udf_gen }
    }

    /// Generate one query over `db`.
    ///
    /// Returns the spec and the adaptation actions of its UDF (to be applied
    /// to the database before the query is labelled).
    pub fn generate(&self, db: &Database, id: u64, rng: &mut Rng) -> Result<QuerySpec> {
        let cfg = &self.config;
        // --- join tree via FK walk ---
        let want_joins = rng.choose_weighted(&cfg.join_weights);
        let (base_table, joins) = fk_walk(db, want_joins, rng)?;
        let mut bound: Vec<String> = vec![base_table.clone()];
        bound.extend(joins.iter().map(|j| j.table.clone()));
        // --- plain filters ---
        let mut filters = Vec::new();
        for t in &bound {
            let n = rng.range(0..=cfg.max_filters_per_table);
            for _ in 0..n {
                if let Some(p) = gen_filter(db, t, rng) {
                    filters.push(p);
                }
            }
        }
        // --- UDF ---
        let (udf, udf_usage) = if rng.chance(cfg.udf_prob) {
            // The UDF must read from a bound table with numeric columns.
            let mut candidates: Vec<&String> = bound.iter().collect();
            rng.shuffle(&mut candidates);
            let mut generated = None;
            for t in candidates {
                if let Ok(u) = self.udf_gen.generate_for_table(db, t, rng) {
                    generated = Some(u);
                    break;
                }
            }
            let usage = if rng.chance(cfg.udf_filter_prob) {
                UdfUsage::Filter
            } else {
                UdfUsage::Projection
            };
            (generated.map(Arc::new), usage)
        } else {
            (None, UdfUsage::Filter)
        };
        // --- UDF filter literal calibration ---
        let (op, literal, target_sel) = match (&udf, udf_usage) {
            (Some(u), UdfUsage::Filter) => {
                // Log-uniform selectivity in [1e-4, 1].
                let target = 10f64.powf(rng.range(-4.0..0.0));
                let (op, lit) = calibrate_literal(db, u, target, cfg.calibration_sample, rng)?;
                (op, lit, target)
            }
            _ => (CmpOp::Le, 0.0, 1.0),
        };
        // --- aggregate ---
        let (agg, agg_col) = gen_agg(db, &bound, &udf, udf_usage, rng);
        Ok(QuerySpec {
            id,
            database: db.name.clone(),
            base_table,
            joins,
            filters,
            udf,
            udf_usage,
            udf_filter_op: op,
            udf_filter_literal: literal,
            target_udf_selectivity: target_sel,
            agg,
            agg_col,
        })
    }
}

/// Random walk over the FK graph: start anywhere, extend with FK edges
/// (either direction) to unbound tables.
fn fk_walk(db: &Database, want_joins: usize, rng: &mut Rng) -> Result<(String, Vec<JoinStep>)> {
    let tables = db.tables();
    if tables.is_empty() {
        return Err(GracefulError::Benchmark("empty database".into()));
    }
    // Collect undirected FK edges: (child, child_col, parent, parent_col).
    let mut edges: Vec<(String, String, String, String)> = Vec::new();
    for t in tables {
        for fk in &t.foreign_keys {
            edges.push((
                t.name.clone(),
                fk.column.clone(),
                fk.ref_table.clone(),
                fk.ref_column.clone(),
            ));
        }
    }
    let start = tables[rng.range(0..tables.len())].name.clone();
    let mut bound = vec![start.clone()];
    let mut joins = Vec::new();
    for _ in 0..want_joins {
        // Candidate edges touching exactly one bound table.
        let mut candidates: Vec<JoinStep> = Vec::new();
        for (child, ccol, parent, pcol) in &edges {
            let child_bound = bound.contains(child);
            let parent_bound = bound.contains(parent);
            if child_bound && !parent_bound {
                candidates.push(JoinStep {
                    table: parent.clone(),
                    left_col: ColRef::new(child, ccol),
                    right_col: ColRef::new(parent, pcol),
                });
            } else if parent_bound && !child_bound {
                candidates.push(JoinStep {
                    table: child.clone(),
                    left_col: ColRef::new(parent, pcol),
                    right_col: ColRef::new(child, ccol),
                });
            }
        }
        if candidates.is_empty() {
            break;
        }
        let step = candidates[rng.range(0..candidates.len())].clone();
        bound.push(step.table.clone());
        joins.push(step);
    }
    Ok((start, joins))
}

/// A plain filter predicate on a random column of `table`.
fn gen_filter(db: &Database, table: &str, rng: &mut Rng) -> Option<Pred> {
    let t = db.table(table).ok()?;
    let stats = db.stats(table).ok()?;
    // Skip key columns: filtering PKs/FKs produces degenerate joins.
    let cols: Vec<_> = t
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            Some(*i) != t.primary_key && !t.foreign_keys.iter().any(|fk| fk.column == c.name)
        })
        .map(|(_, c)| c)
        .collect();
    if cols.is_empty() {
        return None;
    }
    let col = cols[rng.range(0..cols.len())];
    let cs = stats.column(&col.name).ok()?;
    match cs.data_type {
        DataType::Int | DataType::Float => {
            let q = rng.range(0.08..0.92);
            let raw = cs.min + q * (cs.max - cs.min);
            let op = *rng.choose(&[CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]);
            let value = if cs.data_type == DataType::Int {
                Value::Int(raw.round() as i64)
            } else {
                Value::Float(raw)
            };
            Some(Pred::new(table, &col.name, op, value))
        }
        DataType::Text => {
            // Equality on a most-common value (selective but non-empty).
            let (v, _) = cs.mcv.first()?.clone();
            let pick = if cs.mcv.len() > 1 && rng.chance(0.5) {
                cs.mcv[rng.range(0..cs.mcv.len())].0.clone()
            } else {
                v
            };
            Some(Pred::new(table, &col.name, CmpOp::Eq, pick))
        }
        DataType::Bool => {
            Some(Pred::new(table, &col.name, CmpOp::Eq, Value::Bool(rng.chance(0.5))))
        }
    }
}

/// Choose the UDF-filter literal so that `udf(args) <= literal` keeps
/// roughly `target` of the rows: evaluate the UDF on a sample of its base
/// table and take the target-quantile of the numeric outputs.
fn calibrate_literal(
    db: &Database,
    udf: &GeneratedUdf,
    target: f64,
    sample: usize,
    rng: &mut Rng,
) -> Result<(CmpOp, f64)> {
    let t = db.table(&udf.table)?;
    let n = t.num_rows();
    if n == 0 {
        return Ok((CmpOp::Le, 0.0));
    }
    let cols: Vec<_> = udf.input_columns.iter().map(|c| t.column(c)).collect::<Result<Vec<_>>>()?;
    let mut interp = Interpreter::default();
    let mut outputs: Vec<f64> = Vec::with_capacity(sample.min(n));
    for _ in 0..sample.min(n) {
        let row = rng.range(0..n);
        let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
        // Adaptations are applied by the corpus builder before labelling;
        // during calibration a NULL arg simply yields a NULL output we skip.
        if let Ok(out) = interp.eval(&udf.def, &args) {
            if let Some(v) = out.value.as_f64() {
                outputs.push(v);
            }
        }
    }
    if outputs.is_empty() {
        return Ok((CmpOp::Le, 0.0));
    }
    outputs.sort_by(|a, b| a.partial_cmp(b).expect("finite udf outputs"));
    let idx = ((outputs.len() - 1) as f64 * target).round() as usize;
    Ok((CmpOp::Le, outputs[idx.min(outputs.len() - 1)]))
}

fn gen_agg(
    db: &Database,
    bound: &[String],
    udf: &Option<Arc<GeneratedUdf>>,
    usage: UdfUsage,
    rng: &mut Rng,
) -> (AggFunc, Option<ColRef>) {
    // SUM/AVG dominate (the paper's workloads aggregate magnitudes);
    // MIN/MAX appear with a small weight so extremes stay represented in
    // every corpus.
    let value_aggs =
        [AggFunc::Sum, AggFunc::Sum, AggFunc::Avg, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
    if udf.is_some() && usage == UdfUsage::Projection {
        // Aggregate over the UDF output column.
        return (*rng.choose(&value_aggs), None);
    }
    if rng.chance(0.5) {
        return (AggFunc::CountStar, None);
    }
    // SUM/AVG/MIN/MAX over a random numeric column of a bound table.
    for _ in 0..8 {
        let t = &bound[rng.range(0..bound.len())];
        if let Ok(table) = db.table(t) {
            let numeric: Vec<_> =
                table.columns().iter().filter(|c| c.data_type().is_numeric()).collect();
            if !numeric.is_empty() {
                let c = numeric[rng.range(0..numeric.len())];
                let f = *rng.choose(&value_aggs);
                return (f, Some(ColRef::new(t, &c.name)));
            }
        }
    }
    (AggFunc::CountStar, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::{build_plan, UdfPlacement};
    use graceful_storage::datagen::{generate, schema};

    fn db() -> Database {
        generate(&schema("tpc_h"), 0.03, 5)
    }

    #[test]
    fn generates_valid_specs() {
        let db = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(1);
        let mut saw_udf = false;
        let mut saw_joins = false;
        for id in 0..50 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            assert!(spec.joins.len() <= 5);
            saw_udf |= spec.has_udf();
            saw_joins |= !spec.joins.is_empty();
            // Join steps connect bound tables to new ones.
            let mut bound = vec![spec.base_table.clone()];
            for j in &spec.joins {
                assert!(bound.contains(&j.left_col.table), "left side must be bound");
                assert_eq!(j.right_col.table, j.table);
                bound.push(j.table.clone());
            }
        }
        assert!(saw_udf && saw_joins);
    }

    #[test]
    fn udf_reads_from_bound_table() {
        let db = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(2);
        for id in 0..40 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            if let Some(u) = &spec.udf {
                assert!(spec.tables().contains(&u.table.as_str()));
            }
        }
    }

    #[test]
    fn all_placements_build_valid_plans() {
        let db = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(3);
        let mut built = 0;
        for id in 0..60 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            for placement in crate::variants::valid_placements(&spec) {
                let plan = build_plan(&spec, placement).unwrap();
                plan.validate().unwrap();
                if spec.has_udf() && spec.udf_usage == UdfUsage::Filter {
                    assert!(plan.udf_op().is_some());
                }
                built += 1;
            }
        }
        assert!(built > 60);
    }

    #[test]
    fn pullup_has_all_joins_below_udf() {
        let db = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(4);
        for id in 0..80 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            if !spec.has_udf() || spec.udf_usage != UdfUsage::Filter || spec.joins.is_empty() {
                continue;
            }
            let plan = build_plan(&spec, UdfPlacement::PullUp).unwrap();
            let udf_idx = plan.udf_op().unwrap();
            // Every join is in the subtree below the UDF filter.
            let below = plan.subtree_size(plan.ops[udf_idx].children[0]);
            let joins_below = (0..plan.ops.len())
                .filter(|&i| {
                    matches!(plan.ops[i].kind, crate::logical::PlanOpKind::Join { .. })
                        && i < udf_idx
                })
                .count();
            assert_eq!(joins_below, spec.joins.len());
            assert!(below > spec.joins.len());
            // And for push-down, no join sits below the UDF filter.
            let pd = build_plan(&spec, UdfPlacement::PushDown).unwrap();
            let pd_udf = pd.udf_op().unwrap();
            let mut stack = vec![pd.ops[pd_udf].children[0]];
            while let Some(i) = stack.pop() {
                assert!(
                    !matches!(pd.ops[i].kind, crate::logical::PlanOpKind::Join { .. }),
                    "push-down must keep joins above the UDF"
                );
                stack.extend(pd.ops[i].children.iter().copied());
            }
        }
    }

    #[test]
    fn calibrated_literal_is_quantile_like() {
        let db = db();
        let g = QueryGenerator::default();
        let mut rng = Rng::seed(5);
        // Find a UDF filter query and verify the literal keeps roughly the
        // target fraction on a fresh sample.
        for id in 0..40 {
            let spec = g.generate(&db, id, &mut rng).unwrap();
            let (u, target) = match (&spec.udf, spec.udf_usage) {
                (Some(u), UdfUsage::Filter) => (u, spec.target_udf_selectivity),
                _ => continue,
            };
            if target < 0.2 {
                continue; // need a coarse target for a 200-row check
            }
            let t = db.table(&u.table).unwrap();
            let cols: Vec<_> = u.input_columns.iter().map(|c| t.column(c).unwrap()).collect();
            let mut interp = Interpreter::default();
            let mut kept = 0usize;
            let mut total = 0usize;
            for row in 0..t.num_rows().min(300) {
                let args: Vec<Value> = cols.iter().map(|c| c.value(row)).collect();
                if let Ok(out) = interp.eval(&u.def, &args) {
                    if let Some(v) = out.value.as_f64() {
                        total += 1;
                        if v <= spec.udf_filter_literal {
                            kept += 1;
                        }
                    }
                }
            }
            if total < 50 {
                continue;
            }
            let sel = kept as f64 / total as f64;
            // Near-constant outputs make the quantile trick all-or-nothing;
            // skip those (they are legitimate UDFs, just uncontrollable).
            if sel == 0.0 || sel == 1.0 {
                continue;
            }
            assert!((sel - target).abs() < 0.35, "selectivity {sel} too far from target {target}");
            return;
        }
    }

    #[test]
    fn determinism() {
        let db = db();
        let g = QueryGenerator::default();
        let a = g.generate(&db, 7, &mut Rng::seed(99)).unwrap();
        let b = g.generate(&db, 7, &mut Rng::seed(99)).unwrap();
        assert_eq!(a.base_table, b.base_table);
        assert_eq!(a.joins, b.joins);
        assert_eq!(a.udf_filter_literal, b.udf_filter_literal);
    }
}
