//! Logical query plans and workload generation.
//!
//! The paper's workload is SPJA queries (1–5 joins, up to 21 filters, one
//! aggregate) that invoke a scalar UDF either inside a filter predicate or in
//! the projection/aggregation (Section V). This crate provides:
//!
//! * [`predicate`] — simple column-vs-literal predicates,
//! * [`logical`] — the plan arena ([`logical::Plan`]) with per-operator
//!   cardinality annotation slots (estimated *and* actual),
//! * [`querygen`] — the workload generator: FK-walk join trees, filters from
//!   column statistics, UDF placement, and selectivity-controlled UDF filter
//!   literals (Table II's 0.0001–1.0 range),
//! * [`variants`] — the pull-up / intermediate / push-down rewrites the
//!   advisor of Section IV chooses between,
//! * [`analysis`] — static analysis over the plan DAG: the pre-execution
//!   verifier ([`analysis::verify`]), schema/type inference, liveness,
//!   monotone cardinality bounds, and the verified rewrite hints
//!   ([`analysis::RewriteSet`]) both executors consume.

pub mod analysis;
pub mod logical;
pub mod predicate;
pub mod querygen;
pub mod variants;

pub use analysis::{PredFold, RewriteSet};
pub use logical::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind};
pub use predicate::Pred;
pub use querygen::{QueryGenConfig, QueryGenerator, QuerySpec, UdfUsage};
pub use variants::{build_plan, valid_placements, UdfPlacement};
