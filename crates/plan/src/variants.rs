//! UDF placement variants: push-down, intermediate positions, pull-up.
//!
//! The advisor of Section IV chooses between a plan that evaluates the UDF
//! filter directly above its base table (push-down — what every DBMS does by
//! default) and one that defers it to the top of the join tree (pull-up).
//! Table III additionally evaluates *intermediate* positions. All variants
//! share the same join order, mirroring the paper's Exp 5 setup where only
//! the UDF position is forced via optimizer hints.

use crate::logical::{AggFunc, Plan, PlanOp, PlanOpKind};
use crate::querygen::{QuerySpec, UdfUsage};
use graceful_common::{GracefulError, Result};

/// Where the UDF filter sits in the join tree: the number of joins executed
/// *below* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdfPlacement {
    /// Directly above the UDF's base table (0 joins below).
    PushDown,
    /// After `k` joins (1 ≤ k < total joins).
    Intermediate(usize),
    /// Above all joins.
    PullUp,
}

impl UdfPlacement {
    /// Joins below the UDF filter for a plan with `n_joins` joins.
    pub fn joins_below(self, n_joins: usize) -> usize {
        match self {
            UdfPlacement::PushDown => 0,
            UdfPlacement::Intermediate(k) => k.min(n_joins),
            UdfPlacement::PullUp => n_joins,
        }
    }

    /// All distinct placements available for a query with `n_joins` joins.
    pub fn available(n_joins: usize) -> Vec<UdfPlacement> {
        let mut out = vec![UdfPlacement::PushDown];
        for k in 1..n_joins {
            out.push(UdfPlacement::Intermediate(k));
        }
        if n_joins > 0 {
            out.push(UdfPlacement::PullUp);
        }
        out
    }

    pub fn label(self) -> &'static str {
        match self {
            UdfPlacement::PushDown => "Push-Down",
            UdfPlacement::Intermediate(_) => "Intermediate",
            UdfPlacement::PullUp => "Pull-Up",
        }
    }
}

/// Placements that are actually valid for `spec`.
///
/// `Intermediate(k)` requires the UDF's base table to be bound after `k`
/// joins: if the table only enters the walk at join `j`, positions `k < j`
/// do not exist (push-down still does — the filter then sits directly above
/// that table's scan, before its join).
pub fn valid_placements(spec: &QuerySpec) -> Vec<UdfPlacement> {
    let n = spec.joins.len();
    let udf = match &spec.udf {
        Some(u) => u,
        None => return vec![UdfPlacement::PushDown],
    };
    if spec.udf_usage == UdfUsage::Projection {
        return vec![UdfPlacement::PushDown];
    }
    let entry = if udf.table == spec.base_table {
        0
    } else {
        spec.joins.iter().position(|j| j.table == udf.table).map(|j| j + 1).unwrap_or(0)
    };
    let mut out = vec![UdfPlacement::PushDown];
    for k in entry.max(1)..n {
        out.push(UdfPlacement::Intermediate(k));
    }
    if n > 0 {
        out.push(UdfPlacement::PullUp);
    }
    out
}

/// Build the logical plan for `spec` with the UDF filter at `placement`.
///
/// The join order is the spec's FK-walk order (identical across
/// placements). Non-UDF filters are always pushed to their scans — the
/// paper only ever moves the *UDF* filter.
pub fn build_plan(spec: &QuerySpec, placement: UdfPlacement) -> Result<Plan> {
    let mut ops: Vec<PlanOp> = Vec::new();
    // Scan + pushed-down plain filters for one table; returns op index.
    let scan_of = |ops: &mut Vec<PlanOp>, table: &str| -> usize {
        ops.push(PlanOp::new(PlanOpKind::Scan { table: table.to_string() }, vec![]));
        let mut top = ops.len() - 1;
        let preds: Vec<_> = spec.filters.iter().filter(|p| p.col.table == table).cloned().collect();
        if !preds.is_empty() {
            ops.push(PlanOp::new(PlanOpKind::Filter { preds }, vec![top]));
            top = ops.len() - 1;
        }
        top
    };

    let udf_table = spec.udf.as_ref().map(|u| u.table.clone());
    let n_joins = spec.joins.len();
    let udf_after_joins = match (&spec.udf, spec.udf_usage) {
        (Some(_), UdfUsage::Filter) => Some(placement.joins_below(n_joins)),
        _ => None,
    };

    let mut current = scan_of(&mut ops, &spec.base_table);
    let mut bound = vec![spec.base_table.clone()];
    // Push-down placement: UDF filter goes right above its table's scan —
    // which must be a bound table. If the UDF table enters later in the walk,
    // the filter attaches to that table's scan subtree instead.
    let mut udf_placed = false;
    let place_udf = |ops: &mut Vec<PlanOp>, child: usize| -> usize {
        let u = spec.udf.as_ref().expect("placement only for UDF filters");
        ops.push(PlanOp::new(
            PlanOpKind::UdfFilter {
                udf: u.clone(),
                op: spec.udf_filter_op,
                literal: spec.udf_filter_literal,
            },
            vec![child],
        ));
        ops.len() - 1
    };

    if udf_after_joins == Some(0) && udf_table.as_deref() == Some(spec.base_table.as_str()) {
        current = place_udf(&mut ops, current);
        udf_placed = true;
    }
    for (j, step) in spec.joins.iter().enumerate() {
        let mut right = scan_of(&mut ops, &step.table);
        // Push-down onto a table that joins in later.
        if udf_after_joins == Some(0)
            && !udf_placed
            && udf_table.as_deref() == Some(step.table.as_str())
        {
            right = place_udf(&mut ops, right);
            udf_placed = true;
        }
        ops.push(PlanOp::new(
            PlanOpKind::Join { left_col: step.left_col.clone(), right_col: step.right_col.clone() },
            vec![current, right],
        ));
        current = ops.len() - 1;
        bound.push(step.table.clone());
        if let Some(k) = udf_after_joins {
            if k == j + 1 && !udf_placed {
                // The UDF's table must already be bound below this point.
                if !bound.iter().any(|t| Some(t.as_str()) == udf_table.as_deref()) {
                    return Err(GracefulError::InvalidPlan(format!(
                        "UDF table {:?} not bound after {} joins",
                        udf_table,
                        j + 1
                    )));
                }
                current = place_udf(&mut ops, current);
                udf_placed = true;
            }
        }
    }
    if udf_after_joins.is_some() && !udf_placed {
        // 0-join query or the requested position never materialised: place now.
        if !bound.iter().any(|t| Some(t.as_str()) == udf_table.as_deref()) {
            return Err(GracefulError::InvalidPlan(format!(
                "UDF table {udf_table:?} is not part of the join tree"
            )));
        }
        current = place_udf(&mut ops, current);
    }
    // Projection UDFs always compute after all joins/filters.
    if let (Some(u), UdfUsage::Projection) = (&spec.udf, spec.udf_usage) {
        ops.push(PlanOp::new(PlanOpKind::UdfProject { udf: u.clone() }, vec![current]));
        current = ops.len() - 1;
    }
    let agg_col = match (spec.udf_usage, &spec.udf) {
        (UdfUsage::Projection, Some(_)) => None, // aggregate the UDF output
        _ => spec.agg_col.clone(),
    };
    let func =
        if agg_col.is_none() && !(spec.udf_usage == UdfUsage::Projection && spec.udf.is_some()) {
            AggFunc::CountStar
        } else {
            spec.agg
        };
    ops.push(PlanOp::new(PlanOpKind::Agg { func, column: agg_col }, vec![current]));
    let root = ops.len() - 1;
    let plan = Plan { ops, root };
    plan.validate()?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_enumeration() {
        assert_eq!(UdfPlacement::available(0), vec![UdfPlacement::PushDown]);
        assert_eq!(
            UdfPlacement::available(3),
            vec![
                UdfPlacement::PushDown,
                UdfPlacement::Intermediate(1),
                UdfPlacement::Intermediate(2),
                UdfPlacement::PullUp
            ]
        );
    }

    #[test]
    fn joins_below() {
        assert_eq!(UdfPlacement::PushDown.joins_below(4), 0);
        assert_eq!(UdfPlacement::Intermediate(2).joins_below(4), 2);
        assert_eq!(UdfPlacement::PullUp.joins_below(4), 4);
    }
}
