//! The logical plan arena.
//!
//! Plans are stored as a flat operator arena ([`Plan::ops`]) with child
//! indices — the representation the executor walks, the cardinality
//! estimators annotate, and the featurizer turns into query-graph nodes.
//! Children always have smaller indices than their parents (the arena is in
//! topological order), which both the executor and the GNN's topological
//! message passing rely on.

use crate::predicate::Pred;
use graceful_common::Result;
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::fmt::Write as _;
use std::sync::Arc;

/// A fully qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColRef {
    pub table: String,
    pub column: String,
}

impl ColRef {
    pub fn new(table: &str, column: &str) -> Self {
        ColRef { table: table.to_string(), column: column.to_string() }
    }
}

impl std::fmt::Display for ColRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Aggregate functions (plans are single-aggregate SPJA, no GROUP BY).
///
/// Over an empty input every aggregate is pinned to a number (the engine's
/// `QueryRun::agg_value` is a plain `f64`, so there is no NULL): `COUNT(*)`
/// is 0, and `SUM`/`AVG`/`MIN`/`MAX` are 0.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    CountStar,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    pub const ALL: [AggFunc; 5] =
        [AggFunc::CountStar, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&a| a == self).expect("agg in ALL")
    }

    pub fn name(self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Operator kinds.
#[derive(Debug, Clone)]
pub enum PlanOpKind {
    /// Base-table scan.
    Scan { table: String },
    /// Conjunctive filter of simple predicates.
    Filter { preds: Vec<Pred> },
    /// Equi hash join (`left_col = right_col`); children `[left, right]`.
    Join { left_col: ColRef, right_col: ColRef },
    /// Filter on a UDF's output: `udf(args...) OP literal`.
    UdfFilter { udf: Arc<GeneratedUdf>, op: CmpOp, literal: f64 },
    /// Compute the UDF per row as a projected column (consumed by Agg).
    UdfProject { udf: Arc<GeneratedUdf> },
    /// Final aggregate. `column: None` aggregates the UDF-projected column
    /// when a UdfProject is below, otherwise it is COUNT(*).
    Agg { func: AggFunc, column: Option<ColRef> },
}

impl PlanOpKind {
    /// Operator-type index for featurization (one-hot over 6 kinds).
    pub fn type_index(&self) -> usize {
        match self {
            PlanOpKind::Scan { .. } => 0,
            PlanOpKind::Filter { .. } => 1,
            PlanOpKind::Join { .. } => 2,
            PlanOpKind::UdfFilter { .. } => 3,
            PlanOpKind::UdfProject { .. } => 4,
            PlanOpKind::Agg { .. } => 5,
        }
    }

    pub const TYPE_COUNT: usize = 6;

    pub fn name(&self) -> &'static str {
        match self {
            PlanOpKind::Scan { .. } => "SCAN",
            PlanOpKind::Filter { .. } => "FILTER",
            PlanOpKind::Join { .. } => "JOIN",
            PlanOpKind::UdfFilter { .. } => "UDF_FILTER",
            PlanOpKind::UdfProject { .. } => "UDF_PROJECT",
            PlanOpKind::Agg { .. } => "AGG",
        }
    }
}

/// One operator with its annotation slots.
#[derive(Debug, Clone)]
pub struct PlanOp {
    pub kind: PlanOpKind,
    pub children: Vec<usize>,
    /// Estimated output cardinality (filled by a cardinality estimator).
    pub est_out_rows: f64,
    /// Actual output cardinality (filled by the executor).
    pub actual_out_rows: f64,
}

impl PlanOp {
    pub fn new(kind: PlanOpKind, children: Vec<usize>) -> Self {
        PlanOp { kind, children, est_out_rows: 0.0, actual_out_rows: 0.0 }
    }

    /// True for `UdfFilter` / `UdfProject`.
    pub fn is_udf_op(&self) -> bool {
        matches!(self.kind, PlanOpKind::UdfFilter { .. } | PlanOpKind::UdfProject { .. })
    }
}

/// A logical plan: operator arena in topological order plus the root index.
#[derive(Debug, Clone)]
pub struct Plan {
    pub ops: Vec<PlanOp>,
    pub root: usize,
}

impl Plan {
    /// Validate arena invariants. A thin wrapper over
    /// [`crate::analysis::verify_structure`] — the single source of truth
    /// for structural checks (child bounds, operator arity, genuine
    /// cycle/unreachability detection, parent counts, topological order).
    /// Violations surface as
    /// [`GracefulError::PlanVerify`](graceful_common::GracefulError::PlanVerify).
    /// Catalog-backed
    /// checks (schema, types, estimate sanity) live in
    /// [`crate::analysis::verify`].
    pub fn validate(&self) -> Result<()> {
        crate::analysis::verify_structure(self)
    }

    /// Index of the UDF operator, if the plan has one.
    pub fn udf_op(&self) -> Option<usize> {
        self.ops.iter().position(PlanOp::is_udf_op)
    }

    /// Number of joins in the plan.
    pub fn join_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o.kind, PlanOpKind::Join { .. })).count()
    }

    /// All base tables scanned.
    pub fn tables(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter_map(|o| match &o.kind {
                PlanOpKind::Scan { table } => Some(table.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Operators on the path from `from` (exclusive) up to the root
    /// (inclusive) — the operators "above" an op, whose cardinalities the
    /// advisor scales when enumerating UDF-filter selectivities.
    pub fn ops_above(&self, from: usize) -> Vec<usize> {
        let mut parent = vec![usize::MAX; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            for &c in &op.children {
                parent[c] = i;
            }
        }
        let mut out = Vec::new();
        let mut cur = parent[from];
        while cur != usize::MAX {
            out.push(cur);
            cur = parent[cur];
        }
        out
    }

    /// Number of operators in the subtree rooted at `op` (inclusive).
    pub fn subtree_size(&self, op: usize) -> usize {
        let mut count = 0;
        let mut stack = vec![op];
        while let Some(i) = stack.pop() {
            count += 1;
            stack.extend(self.ops[i].children.iter().copied());
        }
        count
    }

    /// A stable structural fingerprint of the plan: FNV-1a over every
    /// operator's kind, arguments (tables, predicates, join columns, UDF
    /// name + source, comparison + literal bits, aggregate) and child
    /// indices. Annotation slots (`est_out_rows` / `actual_out_rows`) are
    /// deliberately **excluded**, so the fingerprint identifies the plan
    /// *shape* across annotated and unannotated copies — the key the flight
    /// recorder and featurization caches join on. The hash is a fixed
    /// algorithm over explicit bytes (not `std::hash`), so it is stable
    /// across runs, platforms and compiler versions.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            // Separator so concatenated fields cannot alias.
            h ^= 0xff;
            h = h.wrapping_mul(FNV_PRIME);
        };
        eat(&(self.ops.len() as u64).to_le_bytes());
        eat(&(self.root as u64).to_le_bytes());
        for op in &self.ops {
            eat(op.kind.name().as_bytes());
            for &c in &op.children {
                eat(&(c as u64).to_le_bytes());
            }
            match &op.kind {
                PlanOpKind::Scan { table } => eat(table.as_bytes()),
                PlanOpKind::Filter { preds } => {
                    for p in preds {
                        eat(p.display().as_bytes());
                    }
                }
                PlanOpKind::Join { left_col, right_col } => {
                    eat(left_col.to_string().as_bytes());
                    eat(right_col.to_string().as_bytes());
                }
                PlanOpKind::UdfFilter { udf, op, literal } => {
                    eat(udf.def.name.as_bytes());
                    eat(udf.source.as_bytes());
                    eat(op.symbol().as_bytes());
                    eat(&literal.to_bits().to_le_bytes());
                }
                PlanOpKind::UdfProject { udf } => {
                    eat(udf.def.name.as_bytes());
                    eat(udf.source.as_bytes());
                }
                PlanOpKind::Agg { func, column } => {
                    eat(func.name().as_bytes());
                    if let Some(c) = column {
                        eat(c.to_string().as_bytes());
                    }
                }
            }
        }
        h
    }

    /// [`Plan::fingerprint`] rendered as 16 lowercase hex digits — the form
    /// stored in flight-recorder records.
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.fingerprint())
    }

    /// EXPLAIN-style rendering with cardinality annotations.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_rec(self.root, 0, &mut out);
        out
    }

    fn explain_rec(&self, idx: usize, depth: usize, out: &mut String) {
        let op = &self.ops[idx];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = match &op.kind {
            PlanOpKind::Scan { table } => format!("SCAN {table}"),
            PlanOpKind::Filter { preds } => {
                let ps: Vec<String> = preds.iter().map(Pred::display).collect();
                format!("FILTER {}", ps.join(" AND "))
            }
            PlanOpKind::Join { left_col, right_col } => {
                format!("JOIN {left_col} = {right_col}")
            }
            PlanOpKind::UdfFilter { udf, op, literal } => {
                format!("UDF_FILTER {}(...) {} {literal}", udf.def.name, op.symbol())
            }
            PlanOpKind::UdfProject { udf } => format!("UDF_PROJECT {}(...)", udf.def.name),
            PlanOpKind::Agg { func, column } => match column {
                Some(c) => format!("AGG {}({c})", func.name()),
                None => format!("AGG {}", func.name()),
            },
        };
        let _ = writeln!(
            out,
            "{label}  [est={:.0}, actual={:.0}]",
            op.est_out_rows, op.actual_out_rows
        );
        for &c in &op.children {
            self.explain_rec(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_plan() -> Plan {
        // AGG <- JOIN <- (SCAN a, SCAN b)
        let ops = vec![
            PlanOp::new(PlanOpKind::Scan { table: "a".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "b".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("a", "id"),
                    right_col: ColRef::new("b", "a_id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(PlanOpKind::Agg { func: AggFunc::CountStar, column: None }, vec![2]),
        ];
        Plan { ops, root: 3 }
    }

    #[test]
    fn validate_accepts_well_formed() {
        two_table_plan().validate().unwrap();
    }

    #[test]
    fn validate_rejects_forward_children() {
        let mut p = two_table_plan();
        p.ops[2].children = vec![0, 3];
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_shared_children() {
        let mut p = two_table_plan();
        p.ops[3].children = vec![2, 2];
        assert!(p.validate().is_err());
    }

    #[test]
    fn ops_above_walks_to_root() {
        let p = two_table_plan();
        assert_eq!(p.ops_above(0), vec![2, 3]);
        assert_eq!(p.ops_above(2), vec![3]);
        assert!(p.ops_above(3).is_empty());
    }

    #[test]
    fn fingerprint_is_structural_and_annotation_invariant() {
        let p = two_table_plan();
        let fp = p.fingerprint();
        assert_eq!(p.fingerprint(), fp, "deterministic");
        assert_eq!(p.fingerprint_hex(), format!("{fp:016x}"));
        assert_eq!(p.fingerprint_hex().len(), 16);

        // Annotations do not move the fingerprint...
        let mut annotated = p.clone();
        annotated.ops[0].est_out_rows = 123.0;
        annotated.ops[2].actual_out_rows = 45.0;
        assert_eq!(annotated.fingerprint(), fp);

        // ...but structural changes do.
        let mut other_table = p.clone();
        other_table.ops[1].kind = PlanOpKind::Scan { table: "c".into() };
        assert_ne!(other_table.fingerprint(), fp);
        let mut other_agg = p.clone();
        other_agg.ops[3].kind =
            PlanOpKind::Agg { func: AggFunc::Sum, column: Some(ColRef::new("a", "id")) };
        assert_ne!(other_agg.fingerprint(), fp);
        let mut other_shape = p.clone();
        other_shape.ops[2].children = vec![1, 0];
        assert_ne!(other_shape.fingerprint(), fp);
    }

    #[test]
    fn metadata_helpers() {
        let p = two_table_plan();
        assert_eq!(p.join_count(), 1);
        assert_eq!(p.tables(), vec!["a", "b"]);
        assert_eq!(p.udf_op(), None);
        assert_eq!(p.subtree_size(p.root), 4);
        assert!(p.explain().contains("JOIN a.id = b.a_id"));
    }
}
