//! Simple predicates: `table.column CMP literal`.
//!
//! The workload generator only emits predicates of this shape (plus
//! conjunctions of them on FILTER operators), matching the workloads of the
//! zero-shot cost model line of work the paper builds on. The same shape is
//! reused by the hit-ratio estimator when UDF branch conditions are rewritten
//! back into SQL.

use crate::logical::ColRef;
use graceful_storage::{Table, Value};
use graceful_udf::ast::CmpOp;

/// A column-vs-literal comparison predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    pub col: ColRef,
    pub op: CmpOp,
    pub value: Value,
}

impl Pred {
    pub fn new(table: &str, column: &str, op: CmpOp, value: Value) -> Self {
        Pred { col: ColRef::new(table, column), op, value }
    }

    /// Evaluate against a base-table row. NULL never satisfies a predicate.
    pub fn matches(&self, table: &Table, row: usize) -> bool {
        let col = match table.column(&self.col.column) {
            Ok(c) => c,
            Err(_) => return false,
        };
        let v = col.value(row);
        match v.compare(&self.value) {
            None => false,
            Some(ord) => {
                use std::cmp::Ordering::*;
                match self.op {
                    CmpOp::Lt => ord == Less,
                    CmpOp::Le => ord != Greater,
                    CmpOp::Gt => ord == Greater,
                    CmpOp::Ge => ord != Less,
                    CmpOp::Eq => ord == Equal,
                    CmpOp::Ne => ord != Equal,
                }
            }
        }
    }

    /// SQL-ish rendering for EXPLAIN output and debugging.
    pub fn display(&self) -> String {
        format!("{}.{} {} {}", self.col.table, self.col.column, self.op.symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_storage::{Column, ColumnData, Table};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            vec![
                Column::new("x", ColumnData::Int(vec![1, 5, 9])),
                Column::with_nulls(
                    "y",
                    ColumnData::Float(vec![0.5, 1.5, 2.5]),
                    vec![false, true, false],
                ),
            ],
        )
        .unwrap();
        t.set_primary_key("x").unwrap();
        t
    }

    #[test]
    fn comparisons() {
        let t = table();
        let p = Pred::new("t", "x", CmpOp::Lt, Value::Int(6));
        assert!(p.matches(&t, 0));
        assert!(p.matches(&t, 1));
        assert!(!p.matches(&t, 2));
    }

    #[test]
    fn null_never_matches() {
        let t = table();
        let p = Pred::new("t", "y", CmpOp::Gt, Value::Float(0.0));
        assert!(p.matches(&t, 0));
        assert!(!p.matches(&t, 1), "NULL must not match");
        let ne = Pred::new("t", "y", CmpOp::Ne, Value::Float(0.0));
        assert!(!ne.matches(&t, 1), "NULL must not match even !=");
    }

    #[test]
    fn missing_column_is_false() {
        let t = table();
        let p = Pred::new("t", "nope", CmpOp::Eq, Value::Int(1));
        assert!(!p.matches(&t, 0));
    }

    #[test]
    fn display_is_sqlish() {
        let p = Pred::new("t", "x", CmpOp::Ge, Value::Int(3));
        assert_eq!(p.display(), "t.x >= 3");
    }
}
