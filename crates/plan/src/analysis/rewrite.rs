//! Verified rewrites: execution hints proven not to change results.
//!
//! A [`RewriteSet`] is computed once per query from the plan and the
//! catalog's statistics, then consumed by both executors. Rewrites never
//! transform the logical plan — `Plan::fingerprint` is taken over the
//! untouched plan, so flight-recorder and featurization-cache joins stay
//! stable — and they never change `QueryRun` values or accounted work:
//!
//! * **Constant-predicate folding**: work for a conjunctive filter is
//!   charged as `rows × preds × weight` regardless of evaluation, so a
//!   predicate statistics prove always-true can skip per-row evaluation and
//!   an always-false one can short-circuit the whole filter, bit-identically.
//! * **Dead-parameter pruning**: a UDF parameter the body never reads is
//!   gathered as a typed placeholder instead of from storage. Invocation
//!   cost depends only on the argument *count* and Text argument lengths, so
//!   pruning is restricted to non-Text parameters, keeping cost bit-exact.
//! * **Join-payload pruning**: a join output lane whose table no ancestor
//!   reads is dropped. Row counts (and therefore every closed-form work
//!   charge and `peak_inter_rows`, which counts rows not lanes) are
//!   unchanged.
//!
//! Everything degrades conservatively: a failed stats lookup, a Text
//! column, a NaN boundary — all fold to "keep".

use crate::analysis::liveness::live_tables_above;
use crate::logical::{Plan, PlanOpKind};
use crate::predicate::Pred;
use graceful_storage::{DataType, Database, Value};
use graceful_udf::ast::CmpOp;
use graceful_udf::GeneratedUdf;
use std::collections::BTreeSet;

/// The verdict for one filter predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredFold {
    /// Not provable either way — evaluate per row.
    Keep,
    /// Every row (NULLs included, which never match) fails the predicate.
    AlwaysFalse,
    /// Every row passes: proven from min/max only when the column has no
    /// NULLs (a NULL row would fail any predicate).
    AlwaysTrue,
}

/// Fold one predicate against column statistics.
///
/// Sound only for **Int** columns: `ColumnStats` folds Int values through
/// exactly the `as f64` view that `Value::compare` uses at runtime, so the
/// stats min/max range over precisely the values rows compare as. Float
/// columns are excluded — their stats silently drop NaN and clamp non-finite
/// extremes to 0.0, so min/max may not cover every stored value. Statistics
/// are recomputed whenever a table mutates (`Database::update_table`), so a
/// fold can never outlive the data it was proven on.
pub fn fold_pred(db: &Database, pred: &Pred) -> PredFold {
    let Ok(stats) = db.stats(&pred.col.table) else { return PredFold::Keep };
    let Ok(cs) = stats.column(&pred.col.column) else { return PredFold::Keep };
    if cs.data_type != DataType::Int {
        return PredFold::Keep;
    }
    let lit = match &pred.value {
        Value::Int(i) => *i as f64,
        Value::Float(f) => {
            if f.is_nan() {
                // NaN compares to nothing: no row ever matches.
                return PredFold::AlwaysFalse;
            }
            *f
        }
        _ => return PredFold::Keep,
    };
    let (min, max) = (cs.min, cs.max);
    if cs.num_rows == 0 {
        // Vacuously false over zero rows; the short-circuit emits zero rows
        // just like evaluation would.
        return PredFold::AlwaysFalse;
    }
    let always_false = match pred.op {
        CmpOp::Lt => min >= lit,
        CmpOp::Le => min > lit,
        CmpOp::Gt => max <= lit,
        CmpOp::Ge => max < lit,
        CmpOp::Eq => lit < min || lit > max,
        CmpOp::Ne => min == max && min == lit,
    };
    if always_false {
        return PredFold::AlwaysFalse;
    }
    // AlwaysTrue additionally requires no NULLs: min/max only describe the
    // non-NULL rows, and a NULL row fails every predicate.
    if cs.null_fraction == 0.0 {
        let always_true = match pred.op {
            CmpOp::Lt => max < lit,
            CmpOp::Le => max <= lit,
            CmpOp::Gt => min > lit,
            CmpOp::Ge => min >= lit,
            CmpOp::Eq => min == max && min == lit,
            CmpOp::Ne => lit < min || lit > max,
        };
        if always_true {
            return PredFold::AlwaysTrue;
        }
    }
    PredFold::Keep
}

/// Which of a UDF's parameters are provably dead **and** safely prunable.
///
/// A parameter is prunable when the body never reads its name
/// (`UdfDef::param_read_set`) and its input column is non-Text (invocation
/// cost counts Text argument characters, so pruning a Text column — even a
/// dead one — would change accounted work). Arity mismatches (rejected by
/// the verifier, but reachable with verification off) prune nothing.
pub fn dead_params(db: &Database, udf: &GeneratedUdf) -> Vec<bool> {
    let n = udf.input_columns.len();
    if n != udf.def.params.len() {
        return vec![false; n];
    }
    let Ok(table) = db.table(&udf.table) else { return vec![false; n] };
    let read = udf.def.param_read_set();
    udf.def
        .params
        .iter()
        .zip(udf.input_columns.iter())
        .map(|(p, c)| {
            !read.contains(p)
                && table.column(c).map(|col| col.data_type() != DataType::Text).unwrap_or(false)
        })
        .collect()
}

/// Decide which input lanes a join's output must carry.
///
/// `live` is the set of tables read strictly above the join
/// ([`live_tables_above`]). Returns `(keep_left, keep_right)` lane indices
/// into the left/right input tuples, or `None` when pruning must be skipped
/// because a table name appears twice across the inputs (lane resolution is
/// by first-occurrence table name, so duplicate names make positional
/// pruning ambiguous). When every lane is dead, the first left lane is kept
/// as a row-count carrier — downstream operators still need `rows.len() /
/// stride` to mean the row count.
pub fn join_keep_lanes(
    live: &BTreeSet<String>,
    ltables: &[&str],
    rtables: &[&str],
) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut seen = BTreeSet::new();
    for t in ltables.iter().chain(rtables.iter()) {
        if !seen.insert(*t) {
            return None;
        }
    }
    let keep_l: Vec<usize> = (0..ltables.len()).filter(|&i| live.contains(ltables[i])).collect();
    let keep_r: Vec<usize> = (0..rtables.len()).filter(|&i| live.contains(rtables[i])).collect();
    if keep_l.is_empty() && keep_r.is_empty() {
        return Some((vec![0], Vec::new()));
    }
    Some((keep_l, keep_r))
}

/// All rewrite decisions for one plan, computed up front and consumed by
/// both executors. Construction is infallible: anything unprovable simply
/// isn't rewritten.
#[derive(Debug, Clone)]
pub struct RewriteSet {
    /// Per operator: per-predicate fold verdicts (empty for non-Filter ops).
    pub pred_folds: Vec<Vec<PredFold>>,
    /// Per operator: which UDF parameters to prune (empty for non-UDF ops).
    pub dead_params: Vec<Vec<bool>>,
    /// Per operator: tables read strictly above it (drives join-lane
    /// pruning via [`join_keep_lanes`]).
    pub live_above: Vec<BTreeSet<String>>,
}

impl RewriteSet {
    /// Analyze a plan against the catalog. Infallible and conservative —
    /// a structurally broken plan yields an all-`Keep` set (the verifier,
    /// not the rewriter, is responsible for rejecting it).
    pub fn analyze(plan: &Plan, db: &Database) -> RewriteSet {
        if crate::analysis::verify_structure(plan).is_err() {
            return RewriteSet::none(plan);
        }
        let n = plan.ops.len();
        let mut pred_folds: Vec<Vec<PredFold>> = vec![Vec::new(); n];
        let mut dead: Vec<Vec<bool>> = vec![Vec::new(); n];
        for (i, op) in plan.ops.iter().enumerate() {
            match &op.kind {
                PlanOpKind::Filter { preds } => {
                    pred_folds[i] = preds.iter().map(|p| fold_pred(db, p)).collect();
                }
                PlanOpKind::UdfFilter { udf, .. } | PlanOpKind::UdfProject { udf } => {
                    dead[i] = dead_params(db, udf);
                }
                _ => {}
            }
        }
        RewriteSet { pred_folds, dead_params: dead, live_above: live_tables_above(plan) }
    }

    /// The identity rewrite set: nothing folds, nothing prunes.
    pub fn none(plan: &Plan) -> RewriteSet {
        let n = plan.ops.len();
        RewriteSet {
            pred_folds: vec![Vec::new(); n],
            dead_params: vec![Vec::new(); n],
            live_above: vec![BTreeSet::new(); n],
        }
    }

    /// Fold verdicts for op `idx`'s predicates, padded/defaulted to `Keep`.
    pub fn fold_for(&self, idx: usize, k: usize) -> PredFold {
        self.pred_folds.get(idx).and_then(|f| f.get(k)).copied().unwrap_or(PredFold::Keep)
    }

    /// True when any predicate of op `idx` is provably always false.
    pub fn always_false(&self, idx: usize) -> bool {
        self.pred_folds.get(idx).is_some_and(|f| f.contains(&PredFold::AlwaysFalse))
    }
}
