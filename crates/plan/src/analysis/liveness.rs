//! Required-column and required-lane liveness.
//!
//! Intermediate tuples in both executors carry one row-id lane per bound
//! base table, and operators read those lanes positionally (resolved by
//! table name). Liveness asks, for each operator, what the operators
//! *strictly above* it can still read: a lane whose table no ancestor reads
//! can be dropped from a join's output, and a column no ancestor reads never
//! constrains a rewrite.
//!
//! The plan is a tree (verified: every op has exactly one parent), so the
//! live set below an operator is simply the parent's live set plus the
//! parent's own reads — one top-down pass over the topologically ordered
//! arena.

use crate::logical::{ColRef, Plan, PlanOpKind};
use std::collections::BTreeSet;

/// Base tables operator `idx` reads from its **input** tuples.
///
/// Scans read nothing (they are sources); filters read their predicate
/// columns' tables; joins read both key tables; UDF operators read the UDF's
/// input table; aggregates read the aggregate column's table if any.
pub fn op_tables_read(plan: &Plan, idx: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    match &plan.ops[idx].kind {
        PlanOpKind::Scan { .. } => {}
        PlanOpKind::Filter { preds } => {
            for p in preds {
                out.insert(p.col.table.clone());
            }
        }
        PlanOpKind::Join { left_col, right_col } => {
            out.insert(left_col.table.clone());
            out.insert(right_col.table.clone());
        }
        PlanOpKind::UdfFilter { udf, .. } | PlanOpKind::UdfProject { udf } => {
            out.insert(udf.table.clone());
        }
        PlanOpKind::Agg { column, .. } => {
            if let Some(c) = column {
                out.insert(c.table.clone());
            }
        }
    }
    out
}

/// Fully qualified columns operator `idx` reads from its input tuples.
pub fn op_columns_read(plan: &Plan, idx: usize) -> BTreeSet<ColRef> {
    let mut out = BTreeSet::new();
    match &plan.ops[idx].kind {
        PlanOpKind::Scan { .. } => {}
        PlanOpKind::Filter { preds } => {
            for p in preds {
                out.insert(p.col.clone());
            }
        }
        PlanOpKind::Join { left_col, right_col } => {
            out.insert(left_col.clone());
            out.insert(right_col.clone());
        }
        PlanOpKind::UdfFilter { udf, .. } | PlanOpKind::UdfProject { udf } => {
            for c in &udf.input_columns {
                out.insert(ColRef::new(&udf.table, c));
            }
        }
        PlanOpKind::Agg { column, .. } => {
            if let Some(c) = column {
                out.insert(c.clone());
            }
        }
    }
    out
}

/// For every operator, the base tables read by its strict ancestors — the
/// lanes its **output** must still carry (beyond what the operator's own
/// parent consumes structurally).
///
/// `live[root]` is empty: nothing sits above the root. A join output lane
/// whose table is absent from `live[join]` can be pruned — the join itself
/// reads its key lanes from its *inputs*, before the output is formed.
///
/// Assumes a structurally valid plan (topological arena, single parents);
/// callers go through [`verify`](crate::analysis::verify) or
/// [`RewriteSet::analyze`](crate::analysis::RewriteSet::analyze), which do.
pub fn live_tables_above(plan: &Plan) -> Vec<BTreeSet<String>> {
    let n = plan.ops.len();
    let mut live: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    // Parents have larger indices than children, so a reverse index walk
    // visits every parent before its children.
    for i in (0..n).rev() {
        if plan.ops[i].children.is_empty() {
            continue;
        }
        let mut below = live[i].clone();
        below.extend(op_tables_read(plan, i));
        for &c in &plan.ops[i].children {
            live[c] = below.clone();
        }
    }
    live
}

/// For every operator, the fully qualified columns read by its strict
/// ancestors. The column-level analogue of [`live_tables_above`], used by
/// the plan lint to cross-check lane pruning (every column on a pruned lane
/// must be dead) and by rewrite diagnostics.
pub fn columns_read_above(plan: &Plan) -> Vec<BTreeSet<ColRef>> {
    let n = plan.ops.len();
    let mut live: Vec<BTreeSet<ColRef>> = vec![BTreeSet::new(); n];
    for i in (0..n).rev() {
        if plan.ops[i].children.is_empty() {
            continue;
        }
        let mut below = live[i].clone();
        below.extend(op_columns_read(plan, i));
        for &c in &plan.ops[i].children {
            live[c] = below.clone();
        }
    }
    live
}
