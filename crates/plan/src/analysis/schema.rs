//! Schema and type inference over the plan DAG.
//!
//! A bottom-up dataflow pass that computes, for every operator, which base
//! tables its output tuples bind (in lane order — the same order the
//! executors' intermediate tuples use) and whether the output carries a
//! UDF-projected value column. Along the way it resolves every name against
//! the storage catalog and checks the type rules the engine's runtime
//! comparisons rely on.

use crate::logical::{AggFunc, Plan, PlanOpKind};
use graceful_common::{GracefulError, Result};
use graceful_storage::{DataType, Database, Value};

/// What one operator's output looks like to the operators above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSchema {
    /// Base tables bound in the output tuples, in lane order.
    pub tables: Vec<String>,
    /// Whether the output carries a UDF-projected value column (true only
    /// directly above a `UdfProject`; no other operator forwards it).
    pub computed: bool,
}

fn err(i: usize, kind: &str, msg: String) -> GracefulError {
    GracefulError::PlanVerify(format!("op {i} ({kind}): {msg}"))
}

/// Infer per-operator output schemas, verifying every catalog reference.
///
/// Checks performed, each reported as a typed `PlanVerify` error naming the
/// operator index, kind and column:
///
/// * scans name a known table;
/// * filter predicates reference a table bound below them and a column that
///   exists, with a literal the column can ever compare to (no NULL
///   literals; Text columns compare only to Text, non-Text only to
///   non-Text — mirroring `Value::compare`);
/// * join keys are bound on their respective sides, exist, are non-Text
///   (the hash join keys on an integer view) and have identical types on
///   both sides (Int-vs-Float would hash truncated floats against ints);
/// * UDF operators name a bound table, existing input columns, and exactly
///   as many input columns as the UDF has parameters;
/// * aggregates over a column require it bound, existing and numeric, and
///   `SUM`/`AVG`/`MIN`/`MAX` without a column require a `UdfProject`
///   directly below (the engine aggregates the projected value column,
///   which no other operator forwards).
///
/// Assumes nothing about the arena: [`verify_structure`] runs first so the
/// bottom-up walk can index children freely.
///
/// [`verify_structure`]: crate::analysis::verify_structure
pub fn infer_schemas(plan: &Plan, db: &Database) -> Result<Vec<OpSchema>> {
    crate::analysis::verify_structure(plan)?;
    let mut out: Vec<OpSchema> = Vec::with_capacity(plan.ops.len());
    for (i, op) in plan.ops.iter().enumerate() {
        let kind = op.kind.name();
        let schema = match &op.kind {
            PlanOpKind::Scan { table } => {
                db.table(table).map_err(|_| err(i, kind, format!("unknown table {table}")))?;
                OpSchema { tables: vec![table.clone()], computed: false }
            }
            PlanOpKind::Filter { preds } => {
                let child = &out[op.children[0]];
                for p in preds {
                    if !child.tables.contains(&p.col.table) {
                        return Err(err(
                            i,
                            kind,
                            format!(
                                "predicate column {} is not bound below (bound: {})",
                                p.col,
                                child.tables.join(", ")
                            ),
                        ));
                    }
                    let col = db
                        .table(&p.col.table)
                        .and_then(|t| t.column(&p.col.column))
                        .map_err(|_| err(i, kind, format!("unknown column {}", p.col)))?;
                    check_pred_literal(i, kind, &p.col.to_string(), col.data_type(), &p.value)?;
                }
                OpSchema { tables: child.tables.clone(), computed: false }
            }
            PlanOpKind::Join { left_col, right_col } => {
                let (li, ri) = (op.children[0], op.children[1]);
                let ldt = join_key_type(db, i, kind, &out[li], left_col, "left")?;
                let rdt = join_key_type(db, i, kind, &out[ri], right_col, "right")?;
                if ldt != rdt {
                    return Err(err(
                        i,
                        kind,
                        format!(
                            "join keys {left_col} ({ldt:?}) and {right_col} ({rdt:?}) \
                             have mismatched types"
                        ),
                    ));
                }
                let mut tables = out[li].tables.clone();
                tables.extend(out[ri].tables.iter().cloned());
                OpSchema { tables, computed: false }
            }
            PlanOpKind::UdfFilter { udf, .. } | PlanOpKind::UdfProject { udf } => {
                let child = &out[op.children[0]];
                if !child.tables.iter().any(|t| *t == udf.table) {
                    return Err(err(
                        i,
                        kind,
                        format!(
                            "UDF {} input table {} is not bound below (bound: {})",
                            udf.def.name,
                            udf.table,
                            child.tables.join(", ")
                        ),
                    ));
                }
                let t = db
                    .table(&udf.table)
                    .map_err(|_| err(i, kind, format!("unknown table {}", udf.table)))?;
                if udf.input_columns.len() != udf.def.params.len() {
                    return Err(err(
                        i,
                        kind,
                        format!(
                            "UDF {} arity mismatch: {} input columns for {} parameters",
                            udf.def.name,
                            udf.input_columns.len(),
                            udf.def.params.len()
                        ),
                    ));
                }
                for c in &udf.input_columns {
                    t.column(c)
                        .map_err(|_| err(i, kind, format!("unknown column {}.{c}", udf.table)))?;
                }
                let computed = matches!(op.kind, PlanOpKind::UdfProject { .. });
                OpSchema { tables: child.tables.clone(), computed }
            }
            PlanOpKind::Agg { func, column } => {
                let child = &out[op.children[0]];
                if let Some(c) = column {
                    if !child.tables.contains(&c.table) {
                        return Err(err(
                            i,
                            kind,
                            format!(
                                "aggregate column {c} is not bound below (bound: {})",
                                child.tables.join(", ")
                            ),
                        ));
                    }
                    let col = db
                        .table(&c.table)
                        .and_then(|t| t.column(&c.column))
                        .map_err(|_| err(i, kind, format!("unknown column {c}")))?;
                    if col.data_type() == DataType::Text {
                        return Err(err(
                            i,
                            kind,
                            format!("aggregate column {c} has type Text (no numeric view)"),
                        ));
                    }
                } else if *func != AggFunc::CountStar && !child.computed {
                    return Err(err(
                        i,
                        kind,
                        format!(
                            "{} without a column requires a UDF_PROJECT directly below",
                            func.name()
                        ),
                    ));
                }
                OpSchema { tables: child.tables.clone(), computed: false }
            }
        };
        out.push(schema);
    }
    Ok(out)
}

/// A predicate literal the column can never compare to makes the predicate
/// constantly false in a way that is almost always a query-construction bug,
/// so the verifier rejects it. Mirrors `Value::compare`: NULL compares to
/// nothing, Text only to Text, numerics/bools to each other via `as_f64`.
fn check_pred_literal(i: usize, kind: &str, col: &str, dt: DataType, lit: &Value) -> Result<()> {
    let comparable = match lit {
        Value::Null => false,
        Value::Text(_) => dt == DataType::Text,
        Value::Int(_) | Value::Float(_) | Value::Bool(_) => dt != DataType::Text,
    };
    if comparable {
        Ok(())
    } else {
        Err(err(i, kind, format!("predicate on {col} ({dt:?}) can never compare to literal {lit}")))
    }
}

fn join_key_type(
    db: &Database,
    i: usize,
    kind: &str,
    side_schema: &OpSchema,
    key: &crate::logical::ColRef,
    side: &str,
) -> Result<DataType> {
    if !side_schema.tables.contains(&key.table) {
        return Err(err(
            i,
            kind,
            format!(
                "join key {key} is not bound on the {side} side (bound: {})",
                side_schema.tables.join(", ")
            ),
        ));
    }
    let col = db
        .table(&key.table)
        .and_then(|t| t.column(&key.column))
        .map_err(|_| err(i, kind, format!("unknown column {key}")))?;
    let dt = col.data_type();
    if dt == DataType::Text {
        return Err(err(
            i,
            kind,
            format!("join key {key} has type Text (hash join keys need an integer view)"),
        ));
    }
    Ok(dt)
}
