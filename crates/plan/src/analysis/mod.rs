//! Static analysis over the logical plan DAG.
//!
//! This module mirrors `graceful_udf::analysis` one layer up: where the UDF
//! framework runs dataflow over compiled bytecode, this one runs dataflow
//! over the [`Plan`](crate::Plan) operator arena. Three analyses share the
//! same bottom-up/top-down walks:
//!
//! * **Schema/type inference** ([`schema::infer_schemas`]) — resolves every
//!   table, column and UDF input against the storage catalog, checks that
//!   predicate literals are comparable to their columns, that join keys have
//!   an integer view and identical types on both sides, and that aggregates
//!   see the inputs the engine expects.
//! * **Liveness** ([`live_tables_above`] / [`columns_read_above`]) — for
//!   every operator, which base-table
//!   lanes and columns the operators *above* it can still read. A join
//!   output lane whose table is dead above the join never needs to be
//!   carried; a UDF parameter whose name the body never reads never needs
//!   to be gathered.
//! * **Cardinality bounds** ([`bounds::upper_bounds`]) — monotone upper
//!   bounds propagated bottom-up (scan ≤ table rows, filter ≤ input,
//!   join ≤ product, aggregate ≤ 1) that `est_out_rows` annotations can be
//!   cross-checked against ([`bounds::verify_bounds`]).
//!
//! Two clients sit on top:
//!
//! * [`verify`] — the **plan verifier** the execution engine runs before
//!   lowering (under the default `GRACEFUL_PLAN_VERIFY=strict`). It combines
//!   the catalog-free structural checks ([`verify_structure`]: bounds,
//!   arity, genuine cycle/unreachability detection, parent counts,
//!   topological order) with schema inference and estimate sanity, and
//!   rejects malformed plans as typed
//!   [`GracefulError::PlanVerify`](graceful_common::GracefulError::PlanVerify)
//!   diagnostics naming the operator index, kind and column — instead of
//!   letting them surface as engine panics mid-execution. Note that
//!   [`verify`] deliberately does **not** include [`bounds::verify_bounds`]:
//!   the cardinality advisor legitimately scales ancestor estimates past the
//!   monotone bound when enumerating hypothetical UDF selectivities, so the
//!   bound cross-check is a lint (see `examples/plan_lint.rs`), not a gate.
//! * [`RewriteSet`] — **verified rewrites** derived
//!   from the analyses: constant-predicate folding (a predicate statistics
//!   prove always/never true is not evaluated per row) and dead-column
//!   pruning (join payload lanes and UDF parameters liveness proves unused
//!   are not gathered). Rewrites are *execution hints*: they never change
//!   `QueryRun` values or accounted work (all work charges are closed-form
//!   over logical properties), and `Plan::fingerprint` is taken over the
//!   untouched logical plan, so flight-recorder joins stay stable.
//!
//! Like the bytecode analyses, everything here is conservative: any lookup
//! failure or unprovable fact degrades to "keep" (no fold, no prune), never
//! to an unsound transformation.

mod bounds;
mod liveness;
mod rewrite;
mod schema;
mod verify;

pub use bounds::{upper_bounds, verify_bounds};
pub use liveness::{columns_read_above, live_tables_above, op_columns_read, op_tables_read};
pub use rewrite::{dead_params, fold_pred, join_keep_lanes, PredFold, RewriteSet};
pub use schema::{infer_schemas, OpSchema};
pub use verify::{verify, verify_structure};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggFunc, ColRef, Plan, PlanOp, PlanOpKind};
    use crate::predicate::Pred;
    use graceful_common::GracefulError;
    use graceful_storage::{Column, ColumnData, Database, Table, Value};
    use graceful_udf::ast::CmpOp;

    /// Two small hand-built tables: `a(id, x, note)` (id 1..4, x has a
    /// NULL, note is Text) and `b(a_id, y)`.
    fn db() -> Database {
        let mut a = Table::new(
            "a",
            vec![
                Column::new("id", ColumnData::Int(vec![1, 2, 3, 4])),
                Column::with_nulls(
                    "x",
                    ColumnData::Int(vec![10, 20, 30, 40]),
                    vec![false, true, false, false],
                ),
                Column::new(
                    "note",
                    ColumnData::Text(vec!["p".into(), "q".into(), "r".into(), "s".into()]),
                ),
            ],
        )
        .unwrap();
        a.set_primary_key("id").unwrap();
        let mut b = Table::new(
            "b",
            vec![
                Column::new("a_id", ColumnData::Int(vec![1, 1, 2, 3, 3, 3])),
                Column::new("y", ColumnData::Float(vec![0.5, 1.5, 2.5, 3.5, 4.5, 5.5])),
            ],
        )
        .unwrap();
        b.add_foreign_key("a_id", "a", "id");
        Database::new("mini", vec![a, b])
    }

    fn join_plan() -> Plan {
        let ops = vec![
            PlanOp::new(PlanOpKind::Scan { table: "a".into() }, vec![]),
            PlanOp::new(PlanOpKind::Scan { table: "b".into() }, vec![]),
            PlanOp::new(
                PlanOpKind::Join {
                    left_col: ColRef::new("a", "id"),
                    right_col: ColRef::new("b", "a_id"),
                },
                vec![0, 1],
            ),
            PlanOp::new(
                PlanOpKind::Agg { func: AggFunc::Sum, column: Some(ColRef::new("b", "y")) },
                vec![2],
            ),
        ];
        Plan { ops, root: 3 }
    }

    fn assert_plan_verify(r: graceful_common::Result<()>, needle: &str) {
        match r {
            Err(GracefulError::PlanVerify(m)) => {
                assert!(m.contains(needle), "diagnostic {m:?} should contain {needle:?}")
            }
            other => panic!("expected PlanVerify({needle:?}), got {other:?}"),
        }
    }

    #[test]
    fn verifier_accepts_well_formed_plan() {
        verify(&join_plan(), &db()).unwrap();
    }

    #[test]
    fn structure_rejects_cycles_dangling_arity_and_unreachable() {
        let db = db();
        let mut cyc = join_plan();
        cyc.ops[3].children = vec![3];
        assert_plan_verify(verify(&cyc, &db), "cycle");

        let mut dangle = join_plan();
        dangle.ops[3].children = vec![99];
        assert_plan_verify(verify(&dangle, &db), "dangling child 99");

        let mut arity = join_plan();
        arity.ops[3].children = vec![2, 2];
        assert_plan_verify(verify(&arity, &db), "children (expected 1)");

        let mut unreachable = join_plan();
        unreachable.ops[3].children = vec![1];
        // op 2 (and 0) no longer reachable from the root.
        assert_plan_verify(verify(&unreachable, &db), "unreachable");

        let mut agg_mid = join_plan();
        agg_mid.ops.push(PlanOp::new(PlanOpKind::Filter { preds: vec![] }, vec![3]));
        agg_mid.root = 4;
        assert_plan_verify(verify(&agg_mid, &db), "must be the plan root");
    }

    #[test]
    fn schema_rejects_unknown_names_and_type_mismatches() {
        let db = db();
        let mut bad_table = join_plan();
        bad_table.ops[0].kind = PlanOpKind::Scan { table: "zzz".into() };
        assert_plan_verify(verify(&bad_table, &db), "unknown table zzz");

        let mut bad_col = join_plan();
        bad_col.ops[3].kind =
            PlanOpKind::Agg { func: AggFunc::Sum, column: Some(ColRef::new("b", "nope")) };
        assert_plan_verify(verify(&bad_col, &db), "unknown column b.nope");

        // Int-vs-Float join keys hash differently: rejected.
        let mut bad_keys = join_plan();
        bad_keys.ops[2].kind =
            PlanOpKind::Join { left_col: ColRef::new("a", "id"), right_col: ColRef::new("b", "y") };
        assert_plan_verify(verify(&bad_keys, &db), "mismatched types");

        // Text join key: rejected.
        let mut text_key = join_plan();
        text_key.ops[2].kind = PlanOpKind::Join {
            left_col: ColRef::new("a", "note"),
            right_col: ColRef::new("b", "a_id"),
        };
        assert_plan_verify(verify(&text_key, &db), "type Text");

        // Predicate on a table not bound below.
        let mut unbound = join_plan();
        unbound.ops.insert(
            1,
            PlanOp::new(
                PlanOpKind::Filter {
                    preds: vec![Pred::new("b", "y", CmpOp::Gt, Value::Float(0.0))],
                },
                vec![0],
            ),
        );
        // Re-wire the shifted indices: scan b is now 2, join 3, agg 4.
        unbound.ops[3] = PlanOp::new(
            PlanOpKind::Join {
                left_col: ColRef::new("a", "id"),
                right_col: ColRef::new("b", "a_id"),
            },
            vec![1, 2],
        );
        unbound.ops[4] = PlanOp::new(
            PlanOpKind::Agg { func: AggFunc::Sum, column: Some(ColRef::new("b", "y")) },
            vec![3],
        );
        unbound.root = 4;
        assert_plan_verify(verify(&unbound, &db), "not bound below");

        // NULL literal can never compare.
        let mut null_lit = join_plan();
        null_lit.ops.insert(
            1,
            PlanOp::new(
                PlanOpKind::Filter { preds: vec![Pred::new("a", "id", CmpOp::Eq, Value::Null)] },
                vec![0],
            ),
        );
        null_lit.ops[3] = PlanOp::new(
            PlanOpKind::Join {
                left_col: ColRef::new("a", "id"),
                right_col: ColRef::new("b", "a_id"),
            },
            vec![1, 2],
        );
        null_lit.ops[4] = PlanOp::new(
            PlanOpKind::Agg { func: AggFunc::Sum, column: Some(ColRef::new("b", "y")) },
            vec![3],
        );
        null_lit.root = 4;
        assert_plan_verify(verify(&null_lit, &db), "never compare");
    }

    #[test]
    fn verify_flags_bad_estimates_and_bounds() {
        let db = db();
        let mut nan = join_plan();
        nan.ops[2].est_out_rows = f64::NAN;
        assert_plan_verify(verify(&nan, &db), "est_out_rows");
        let mut neg = join_plan();
        neg.ops[2].est_out_rows = -5.0;
        assert_plan_verify(verify(&neg, &db), "est_out_rows");

        // Bounds: scan a ≤ 4, scan b ≤ 6, join ≤ 24, agg ≤ 1.
        let p = join_plan();
        assert_eq!(upper_bounds(&p, &db).unwrap(), vec![4.0, 6.0, 24.0, 1.0]);
        let mut over = join_plan();
        over.ops[2].est_out_rows = 25.0;
        verify(&over, &db).unwrap(); // gate does not bound-check...
        assert_plan_verify(verify_bounds(&over, &db), "monotone upper bound"); // ...the lint does
        let mut ok = join_plan();
        ok.ops[0].est_out_rows = 4.0;
        ok.ops[1].est_out_rows = 6.0;
        ok.ops[2].est_out_rows = 24.0;
        ok.ops[3].est_out_rows = 1.0;
        verify_bounds(&ok, &db).unwrap();
    }

    #[test]
    fn fold_rules_match_runtime_semantics() {
        let db = db();
        // a.id ∈ {1,2,3,4}, no NULLs.
        let fold = |col: &str, op, v| fold_pred(&db, &Pred::new("a", col, op, v));
        assert_eq!(fold("id", CmpOp::Ge, Value::Int(1)), PredFold::AlwaysTrue);
        assert_eq!(fold("id", CmpOp::Lt, Value::Int(1)), PredFold::AlwaysFalse);
        assert_eq!(fold("id", CmpOp::Le, Value::Int(4)), PredFold::AlwaysTrue);
        assert_eq!(fold("id", CmpOp::Gt, Value::Int(4)), PredFold::AlwaysFalse);
        assert_eq!(fold("id", CmpOp::Eq, Value::Int(9)), PredFold::AlwaysFalse);
        assert_eq!(fold("id", CmpOp::Ne, Value::Int(9)), PredFold::AlwaysTrue);
        assert_eq!(fold("id", CmpOp::Eq, Value::Int(2)), PredFold::Keep);
        assert_eq!(fold("id", CmpOp::Lt, Value::Float(4.5)), PredFold::AlwaysTrue);
        assert_eq!(fold("id", CmpOp::Lt, Value::Float(f64::NAN)), PredFold::AlwaysFalse);
        // a.x has a NULL: AlwaysTrue must never fire, AlwaysFalse still can.
        assert_eq!(fold("x", CmpOp::Ge, Value::Int(10)), PredFold::Keep);
        assert_eq!(fold("x", CmpOp::Gt, Value::Int(40)), PredFold::AlwaysFalse);
        // Float and Text columns never fold.
        assert_eq!(
            fold_pred(&db, &Pred::new("b", "y", CmpOp::Ge, Value::Float(0.0))),
            PredFold::Keep
        );
        assert_eq!(
            fold_pred(&db, &Pred::new("a", "note", CmpOp::Eq, Value::Text("p".into()))),
            PredFold::Keep
        );
        // Unknown column/table degrade to Keep, not an error.
        assert_eq!(fold_pred(&db, &Pred::new("a", "zz", CmpOp::Eq, Value::Int(1))), PredFold::Keep);
    }

    #[test]
    fn liveness_and_keep_lanes() {
        let p = join_plan();
        let live = live_tables_above(&p);
        // Above the join: only the AGG, which reads b.y.
        assert!(live[2].contains("b") && !live[2].contains("a"));
        // Above the scans: the join reads both key tables, the agg reads b.
        assert!(live[0].contains("a") && live[0].contains("b"));
        assert!(live[3].is_empty());

        let cols = columns_read_above(&p);
        assert!(cols[2].contains(&ColRef::new("b", "y")));
        assert!(!cols[2].contains(&ColRef::new("a", "id")));

        // The a-lane is dead above the join: keep only b's lane.
        let (kl, kr) = join_keep_lanes(&live[2], &["a"], &["b"]).unwrap();
        assert!(kl.is_empty());
        assert_eq!(kr, vec![0]);
        // All lanes dead: keep the first left lane as a row-count carrier.
        let none = std::collections::BTreeSet::new();
        assert_eq!(join_keep_lanes(&none, &["a"], &["b"]).unwrap(), (vec![0], vec![]));
        // Duplicate table names: pruning declines.
        assert!(join_keep_lanes(&live[2], &["a", "b"], &["b"]).is_none());
    }

    #[test]
    fn rewrite_set_is_conservative_on_broken_plans() {
        let db = db();
        let mut broken = join_plan();
        broken.ops[3].children = vec![99];
        let rw = RewriteSet::analyze(&broken, &db);
        assert!(rw.pred_folds.iter().all(Vec::is_empty));
        assert!(!rw.always_false(0));
        assert_eq!(rw.fold_for(0, 0), PredFold::Keep);

        let rw = RewriteSet::analyze(&join_plan(), &db);
        assert!(rw.live_above[2].contains("b"));
    }
}
