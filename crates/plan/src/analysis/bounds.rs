//! Monotone cardinality upper bounds.
//!
//! A bottom-up pass computing, per operator, a bound no correct execution
//! can exceed: scans emit at most the table's rows, filters and UDF
//! operators at most their input, joins at most the product of their inputs,
//! and the single-group aggregate exactly one value. Estimates above the
//! bound are *impossible*, not merely inaccurate — the cross-check
//! ([`verify_bounds`]) flags estimator bugs the q-error telemetry would
//! average away.

use crate::logical::{Plan, PlanOpKind};
use graceful_common::{GracefulError, Result};
use graceful_storage::Database;

/// Per-operator monotone output-cardinality upper bounds.
///
/// Runs [`verify_structure`](crate::analysis::verify_structure) first so the
/// bottom-up walk can index children freely; unknown scan tables are a
/// `PlanVerify` error.
pub fn upper_bounds(plan: &Plan, db: &Database) -> Result<Vec<f64>> {
    crate::analysis::verify_structure(plan)?;
    let mut bounds = vec![0.0f64; plan.ops.len()];
    for (i, op) in plan.ops.iter().enumerate() {
        bounds[i] = match &op.kind {
            PlanOpKind::Scan { table } => {
                let t = db.table(table).map_err(|_| {
                    GracefulError::PlanVerify(format!("op {i} (SCAN): unknown table {table}"))
                })?;
                t.num_rows() as f64
            }
            PlanOpKind::Filter { .. }
            | PlanOpKind::UdfFilter { .. }
            | PlanOpKind::UdfProject { .. } => bounds[op.children[0]],
            PlanOpKind::Join { .. } => bounds[op.children[0]] * bounds[op.children[1]],
            PlanOpKind::Agg { .. } => 1.0,
        };
    }
    Ok(bounds)
}

/// Cross-check `est_out_rows` annotations against the monotone bounds.
///
/// This is a *lint*, not part of the execution gate ([`verify`]): the
/// cardinality advisor's what-if scaling multiplies ancestor estimates by a
/// hypothetical UDF selectivity and can legitimately exceed the bound.
/// Estimators that annotate from actual data (`annotate`) must stay within
/// it — `examples/plan_lint.rs` holds them to that.
///
/// A small relative-plus-absolute slack absorbs float rounding in estimator
/// arithmetic (selectivity products over large row counts).
///
/// [`verify`]: crate::analysis::verify
pub fn verify_bounds(plan: &Plan, db: &Database) -> Result<()> {
    let bounds = upper_bounds(plan, db)?;
    for (i, op) in plan.ops.iter().enumerate() {
        let est = op.est_out_rows;
        let kind = op.kind.name();
        if !est.is_finite() || est < 0.0 {
            return Err(GracefulError::PlanVerify(format!(
                "op {i} ({kind}): est_out_rows {est} is not finite and non-negative"
            )));
        }
        let slack = bounds[i] * 1e-9 + 1e-6;
        if est > bounds[i] + slack {
            return Err(GracefulError::PlanVerify(format!(
                "op {i} ({kind}): est_out_rows {est} exceeds the monotone upper bound {}",
                bounds[i]
            )));
        }
    }
    Ok(())
}
