//! The plan verifier: structural checks plus catalog-backed checks.

use crate::analysis::schema::infer_schemas;
use crate::logical::{Plan, PlanOpKind};
use graceful_common::{GracefulError, Result};
use graceful_storage::Database;

fn fail<T>(msg: String) -> Result<T> {
    Err(GracefulError::PlanVerify(msg))
}

/// Catalog-free structural verification of the operator arena.
///
/// Rejects: an empty arena, an out-of-bounds root, dangling child indices,
/// wrong operator arity, cycles, operators unreachable from the root, shared
/// children / wrong parent counts, non-topological child order, and an
/// aggregate anywhere but the root. Every diagnostic names the offending
/// operator index and kind. [`Plan::validate`] forwards here, so this is the
/// single source of truth for structural checks.
pub fn verify_structure(plan: &Plan) -> Result<()> {
    let n = plan.ops.len();
    if n == 0 {
        return fail("plan has no operators".into());
    }
    if plan.root >= n {
        return fail(format!("root {} out of bounds (plan has {n} ops)", plan.root));
    }

    // Arity and child bounds first, so every later walk can index freely.
    for (i, op) in plan.ops.iter().enumerate() {
        let kind = op.kind.name();
        let expected = match op.kind {
            PlanOpKind::Scan { .. } => 0,
            PlanOpKind::Join { .. } => 2,
            _ => 1,
        };
        if op.children.len() != expected {
            return fail(format!(
                "op {i} ({kind}) has {} children (expected {expected})",
                op.children.len()
            ));
        }
        for &c in &op.children {
            if c >= n {
                return fail(format!("op {i} ({kind}) has dangling child {c} (plan has {n} ops)"));
            }
        }
    }

    // Genuine cycle + reachability detection: iterative three-color DFS from
    // the root. This works on arbitrary (even non-topological) arenas, so a
    // cycle is reported as a cycle rather than as a child-order violation.
    let mut color = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut stack: Vec<(usize, usize)> = vec![(plan.root, 0)];
    color[plan.root] = 1;
    while let Some(top) = stack.last_mut() {
        let (node, cursor) = (top.0, top.1);
        if cursor < plan.ops[node].children.len() {
            top.1 += 1;
            let c = plan.ops[node].children[cursor];
            match color[c] {
                0 => {
                    color[c] = 1;
                    stack.push((c, 0));
                }
                1 => {
                    return fail(format!(
                        "cycle through op {c} ({}) back to itself",
                        plan.ops[c].kind.name()
                    ));
                }
                _ => {}
            }
        } else {
            color[node] = 2;
            stack.pop();
        }
    }
    if let Some(i) = color.iter().position(|&c| c != 2) {
        return fail(format!("op {i} ({}) is unreachable from the root", plan.ops[i].kind.name()));
    }

    // Parent counts: the root has none, everyone else exactly one.
    let mut parents = vec![0usize; n];
    for op in &plan.ops {
        for &c in &op.children {
            parents[c] += 1;
        }
    }
    for (i, &p) in parents.iter().enumerate() {
        let kind = plan.ops[i].kind.name();
        if i == plan.root && p != 0 {
            return fail(format!("root op {i} ({kind}) has a parent"));
        }
        if i != plan.root && p != 1 {
            return fail(format!("op {i} ({kind}) has {p} parents (expected 1)"));
        }
    }

    // Topological order: children strictly precede parents. The executor's
    // single forward pass and the GNN's level schedule both rely on this.
    for (i, op) in plan.ops.iter().enumerate() {
        for &c in &op.children {
            if c >= i {
                return fail(format!(
                    "op {i} ({}) has child {c} >= itself (arena not topological)",
                    op.kind.name()
                ));
            }
        }
    }

    // Aggregates terminate the plan; the engine computes a single scalar.
    for (i, op) in plan.ops.iter().enumerate() {
        if matches!(op.kind, PlanOpKind::Agg { .. }) && i != plan.root {
            return fail(format!("op {i} (AGG) must be the plan root"));
        }
    }
    Ok(())
}

/// Full pre-execution verification: structural checks, schema/type inference
/// against the catalog, and `est_out_rows` sanity (finite and non-negative).
///
/// This is the gate the execution engine runs under the default
/// `GRACEFUL_PLAN_VERIFY=strict`. Cardinality *bound* cross-checking is
/// intentionally excluded (see [`crate::analysis::verify_bounds`]): the
/// advisor's what-if scaling legitimately pushes ancestor estimates past the
/// monotone bound, and an estimate — however wrong — never makes execution
/// unsound, whereas the malformations rejected here do.
pub fn verify(plan: &Plan, db: &Database) -> Result<()> {
    verify_structure(plan)?;
    infer_schemas(plan, db)?;
    for (i, op) in plan.ops.iter().enumerate() {
        let est = op.est_out_rows;
        if !est.is_finite() || est < 0.0 {
            return fail(format!(
                "op {i} ({}): est_out_rows {est} is not finite and non-negative",
                op.kind.name()
            ));
        }
    }
    Ok(())
}
