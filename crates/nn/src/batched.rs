//! Level-synchronous, graph-vectorized GNN execution.
//!
//! The node-at-a-time reference ([`GnnModel::train_batch`]) builds a fresh
//! tape per graph and runs every per-type MLP on `1×f` row tensors — for a
//! hidden width of 32 that means cloning a `64×32` weight matrix onto the
//! tape per node per layer and paying allocator overhead per op. This module
//! replaces that with a **batched** pass:
//!
//! 1. A whole mini-batch of [`TypedGraph`]s is packed into one
//!    [`GraphBatch`]: global node ids (graph-major), per-node topological
//!    *levels* (`0` for leaves, `1 + max(child level)` otherwise), child and
//!    parent adjacency, and node *groups* keyed by `(level, type)`.
//! 2. The forward pass walks levels bottom-up; each group runs its type's
//!    encoder/updater MLP **once** on an `N×f` matrix. Child aggregation
//!    sums child states in fixed child order (the pinned in-order reduction
//!    of [`Tensor::segment_sum`], fused into the joint-matrix assembly so no
//!    intermediate gather materializes; the standalone `Tensor`/`Tape`
//!    segment ops expose the same reduction as general-purpose API).
//! 3. The backward pass walks levels top-down, computing all row gradients
//!    with batched matmuls, then accumulates parameter gradients in a final
//!    pass that replays the reference's accumulation order exactly.
//!
//! # Why the result is bit-identical to the reference
//!
//! Every row of a matrix product is computed independently by the `Tensor`
//! kernels (same inner loops, same `a == 0.0` skips), so batching never
//! changes per-row values. The two places floats actually *reduce* across
//! rows are pinned to the reference's order:
//!
//! * **Child aggregation** sums child states in child-list order from zero —
//!   the same chain as the reference's `sum_rows`.
//! * **Parameter gradients**: the reference accumulates per-use
//!   contributions into the store in reverse-tape order per graph, graphs in
//!   batch order — i.e. for each parameter of node type `t`: graph 0's type-
//!   `t` nodes in *descending* node order, then graph 1's, and so on. The
//!   final pass here gathers each type's per-node gradient rows in exactly
//!   that `(graph ascending, node descending)` order and reduces them
//!   in-order via [`Tensor::transpose_a_matmul`] (whose accumulation loop is
//!   row-major) and in-order column sums. Gradient flow *into* a node state
//!   likewise folds parent contributions in descending parent order, readout
//!   first — matching the reference's reverse-tape accumulation.
//!
//! Nodes whose state cannot reach the loss (possible when a root is not the
//! last node) are skipped in backward, exactly as the reference's `None`
//! gradient slots skip them.

use crate::gnn::{huber, GnnModel, TypedGraph};
use crate::mlp::{AdamConfig, Linear, Mlp, ParamStore, LEAKY_SLOPE};
use crate::tensor::Tensor;
use graceful_common::{GracefulError, Result};
use std::collections::BTreeMap;

/// One `(level, type)` node group of a packed batch.
struct Group {
    ty: usize,
    /// Global node ids, ascending.
    nodes: Vec<usize>,
}

/// A mini-batch of graphs packed for level-synchronous execution.
///
/// Adjacency is CSR-shaped (offset + data arrays) — packing happens once
/// per training step, so it avoids per-node `Vec` allocations.
struct GraphBatch {
    /// Total node count across the batch.
    n: usize,
    /// First global node id per graph (length `graphs + 1`).
    offsets: Vec<usize>,
    /// Node type per global node.
    types: Vec<usize>,
    /// Owning graph per global node.
    node_graph: Vec<usize>,
    /// CSR offsets into `child_dat` (length `n + 1`).
    child_off: Vec<usize>,
    /// Children (global ids, edge order), all nodes concatenated.
    child_dat: Vec<usize>,
    /// CSR offsets into `parent_dat` (length `n + 1`).
    parent_off: Vec<usize>,
    /// Parents (global ids, descending, one entry per edge), concatenated.
    parent_dat: Vec<usize>,
    /// Global root node per graph.
    roots: Vec<usize>,
    /// Nodes per type (ascending) — the encoder grouping, which needs no
    /// levels because encodings depend only on the node's own features.
    type_nodes: Vec<Vec<usize>>,
    /// Groups ordered by (level ascending, type ascending) — the updater
    /// grouping.
    groups: Vec<Group>,
}

impl GraphBatch {
    fn pack(graphs: &[&TypedGraph], n_types: usize) -> GraphBatch {
        let n: usize = graphs.iter().map(|g| g.len()).sum();
        let n_edges: usize = graphs.iter().map(|g| g.edges.len()).sum();
        let mut offsets = Vec::with_capacity(graphs.len() + 1);
        let mut types = Vec::with_capacity(n);
        let mut node_graph = Vec::with_capacity(n);
        let mut roots = Vec::with_capacity(graphs.len());
        let mut off = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            offsets.push(off);
            types.extend_from_slice(&g.node_types);
            node_graph.extend(std::iter::repeat_n(gi, g.len()));
            roots.push(off + g.root);
            off += g.len();
        }
        offsets.push(off);
        // CSR adjacency: degree count, prefix sum, ordered fill (children
        // keep edge order; parents are sorted descending afterwards).
        let mut child_off = vec![0usize; n + 1];
        let mut parent_off = vec![0usize; n + 1];
        for (gi, g) in graphs.iter().enumerate() {
            let base = offsets[gi];
            for &(s, d) in &g.edges {
                child_off[base + d + 1] += 1;
                parent_off[base + s + 1] += 1;
            }
        }
        for v in 0..n {
            child_off[v + 1] += child_off[v];
            parent_off[v + 1] += parent_off[v];
        }
        let mut child_dat = vec![0usize; n_edges];
        let mut parent_dat = vec![0usize; n_edges];
        let mut child_cur = child_off.clone();
        let mut parent_cur = parent_off.clone();
        for (gi, g) in graphs.iter().enumerate() {
            let base = offsets[gi];
            for &(s, d) in &g.edges {
                child_dat[child_cur[base + d]] = base + s;
                child_cur[base + d] += 1;
                parent_dat[parent_cur[base + s]] = base + d;
                parent_cur[base + s] += 1;
            }
        }
        // Topological levels (children have smaller ids, so one forward scan
        // suffices); parents sorted descending for the backward fold.
        let mut levels = vec![0usize; n];
        for v in 0..n {
            levels[v] = child_dat[child_off[v]..child_off[v + 1]]
                .iter()
                .map(|&c| levels[c] + 1)
                .max()
                .unwrap_or(0);
            parent_dat[parent_off[v]..parent_off[v + 1]].sort_unstable_by(|a, b| b.cmp(a));
        }
        let mut type_nodes: Vec<Vec<usize>> = vec![Vec::new(); n_types];
        let mut buckets: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for v in 0..n {
            type_nodes[types[v]].push(v);
            buckets.entry((levels[v], types[v])).or_default().push(v);
        }
        let groups = buckets.into_iter().map(|((_, ty), nodes)| Group { ty, nodes }).collect();
        GraphBatch {
            n,
            offsets,
            types,
            node_graph,
            child_off,
            child_dat,
            parent_off,
            parent_dat,
            roots,
            type_nodes,
            groups,
        }
    }

    /// Children of `v` (edge order).
    fn children(&self, v: usize) -> &[usize] {
        &self.child_dat[self.child_off[v]..self.child_off[v + 1]]
    }

    /// Parents of `v` (descending, one entry per edge).
    fn parents(&self, v: usize) -> &[usize] {
        &self.parent_dat[self.parent_off[v]..self.parent_off[v + 1]]
    }
}

/// Forward trace of one batched MLP application (per-layer inputs and
/// pre-activation outputs, needed by backward).
struct MlpTrace {
    inputs: Vec<Tensor>,
    pre: Vec<Tensor>,
}

/// Mirror of [`Mlp::forward`] over an `N×in` matrix: LeakyReLU between
/// layers, none after the last. Returns the final pre-activation output.
fn mlp_forward(mlp: &Mlp, store: &ParamStore, x: Tensor) -> (Tensor, MlpTrace) {
    let mut trace = MlpTrace { inputs: Vec::new(), pre: Vec::new() };
    let last = mlp.layers.len() - 1;
    let mut cur = x;
    for (i, layer) in mlp.layers.iter().enumerate() {
        let mut y = cur.matmul(store.value(layer.w));
        y.add_row_broadcast(store.value(layer.b));
        trace.inputs.push(cur);
        trace.pre.push(y.clone());
        if i != last {
            y.leaky_relu_assign(LEAKY_SLOPE);
        }
        cur = y;
    }
    (cur, trace)
}

/// LeakyReLU adjoint: scale gradient entries whose pre-activation was
/// negative (same predicate as the reference's tape op).
fn leaky_mask(grad: &mut Tensor, pre: &Tensor) {
    debug_assert_eq!(grad.data.len(), pre.data.len());
    for (g, &x) in grad.data.iter_mut().zip(&pre.data) {
        if x < 0.0 {
            *g *= LEAKY_SLOPE;
        }
    }
}

/// [`leaky_mask`] with the pre-activation rows looked up in a stash matrix
/// (row `i` of `grad` masks against row `rows[i]` of `pre`), avoiding a
/// gather allocation.
fn leaky_mask_rows(grad: &mut Tensor, pre: &Tensor, rows: &[usize]) {
    debug_assert_eq!(grad.rows, rows.len());
    for (i, &v) in rows.iter().enumerate() {
        let g = &mut grad.data[i * grad.cols..(i + 1) * grad.cols];
        for (gi, &x) in g.iter_mut().zip(pre.row_slice(v)) {
            if x < 0.0 {
                *gi *= LEAKY_SLOPE;
            }
        }
    }
}

/// Accumulate one linear layer's parameter gradients from `x` (layer input,
/// canonical row order) and `gy` (gradient at the pre-activation output).
/// `transpose_a_matmul` reduces row-major, and the column sums scan rows
/// ascending, so the float chains equal the reference's per-use adds.
fn accumulate_linear(store: &mut ParamStore, layer: &Linear, x: &Tensor, gy: &Tensor) {
    let gw = x.transpose_a_matmul(gy);
    store.grad_mut(layer.w).add_assign(&gw);
    let mut gb = Tensor::zeros(1, gy.cols);
    for r in 0..gy.rows {
        for (b, &g) in gb.data.iter_mut().zip(gy.row_slice(r)) {
            *b += g;
        }
    }
    store.grad_mut(layer.b).add_assign(&gb);
}

/// Column-split a `N×(ca+cb)` matrix (the adjoint of a row-wise concat).
fn split_cols(m: &Tensor, ca: usize) -> (Tensor, Tensor) {
    let cb = m.cols - ca;
    let mut a = Tensor::zeros(m.rows, ca);
    let mut b = Tensor::zeros(m.rows, cb);
    for r in 0..m.rows {
        let row = m.row_slice(r);
        a.data[r * ca..(r + 1) * ca].copy_from_slice(&row[..ca]);
        b.data[r * cb..(r + 1) * cb].copy_from_slice(&row[ca..]);
    }
    (a, b)
}

/// Copy `src` rows into `dst` at the given row indices (plain overwrite).
fn scatter_copy(dst: &mut Tensor, rows: &[usize], src: &Tensor) {
    debug_assert_eq!(rows.len(), src.rows);
    debug_assert_eq!(dst.cols, src.cols);
    for (i, &r) in rows.iter().enumerate() {
        dst.data[r * dst.cols..(r + 1) * dst.cols].copy_from_slice(src.row_slice(i));
    }
}

/// Everything forward computes that backward (or prediction) needs.
struct BatchedForward {
    batch: GraphBatch,
    /// Encoder pre-activation per node (`n×h`).
    enc_pre: Tensor,
    /// Updater layer-1 input (`[enc, agg]`, `n×2h`).
    upd1_in: Tensor,
    /// Updater layer-1 pre-activation (`n×h`).
    upd1_pre: Tensor,
    /// Updater layer-2 input (`n×h`).
    upd2_in: Tensor,
    /// Updater layer-2 pre-activation (`n×h`).
    upd2_pre: Tensor,
    /// Readout trace over the `B×h` root-state matrix.
    readout: MlpTrace,
    /// Normalized log-space predictions, one per graph.
    preds: Vec<f32>,
}

/// Gather the feature rows of `nodes` (all of one type) into an `N×width`
/// matrix.
fn gather_features(
    batch: &GraphBatch,
    graphs: &[&TypedGraph],
    nodes: &[usize],
    width: usize,
) -> Tensor {
    let mut x = Tensor::zeros(nodes.len(), width);
    for (i, &v) in nodes.iter().enumerate() {
        let g = batch.node_graph[v];
        x.data[i * width..(i + 1) * width]
            .copy_from_slice(&graphs[g].features[v - batch.offsets[g]]);
    }
    x
}

/// Level-synchronous forward over a validated batch.
fn forward(model: &GnnModel, graphs: &[&TypedGraph]) -> BatchedForward {
    // The engine hard-codes the architecture `GnnModel::new` builds
    // (1-layer encoders, 2-layer updaters); fail loudly if that ever drifts
    // rather than silently dropping layers.
    assert!(
        model.encoders.iter().all(|e| e.layers.len() == 1)
            && model.updaters.iter().all(|u| u.layers.len() == 2),
        "batched GNN engine expects 1-layer encoders and 2-layer updaters"
    );
    let batch = GraphBatch::pack(graphs, model.config.feature_dims.len());
    let h = model.config.hidden;
    let n = batch.n;
    let store = &model.store;
    let mut enc_pre = Tensor::zeros(n, h);
    let mut enc_post = Tensor::zeros(n, h);
    let mut upd1_in = Tensor::zeros(n, 2 * h);
    let mut upd1_pre = Tensor::zeros(n, h);
    let mut upd2_in = Tensor::zeros(n, h);
    let mut upd2_pre = Tensor::zeros(n, h);
    let mut h_all = Tensor::zeros(n, h);
    // Encoders depend only on each node's own features, so they run once
    // per *type* over every node of that type — the largest matrices the
    // batch affords.
    for (ty, nodes) in batch.type_nodes.iter().enumerate() {
        if nodes.is_empty() {
            continue;
        }
        let width = model.config.feature_dims[ty];
        let x = gather_features(&batch, graphs, nodes, width);
        // Encoders are single-layer MLPs; apply the linear layer directly.
        let enc_layer = &model.encoders[ty].layers[0];
        let mut e_pre = x.matmul(store.value(enc_layer.w));
        e_pre.add_row_broadcast(store.value(enc_layer.b));
        scatter_copy(&mut enc_pre, nodes, &e_pre);
        let mut e_post = e_pre;
        e_post.leaky_relu_assign(LEAKY_SLOPE);
        scatter_copy(&mut enc_post, nodes, &e_post);
    }
    // Updaters run level-synchronously: one application per (level, type)
    // group, children always resolved at lower levels. The loop is written
    // allocation-lean (small batches make per-group overhead the bottleneck):
    // the joint input is assembled in place and every intermediate is moved
    // into its stash rather than cloned.
    for group in &batch.groups {
        let ty = group.ty;
        let rows = &group.nodes;
        let nrows = rows.len();
        // joint = [enc_post | agg]: the left half is copied, the right half
        // accumulates child states in fixed child order from zero — the
        // reference's `sum_rows` chain (leaves aggregate to zero rows,
        // matching the reference's shared zero input).
        let mut joint = Tensor::zeros(nrows, 2 * h);
        for (i, &v) in rows.iter().enumerate() {
            let row = &mut joint.data[i * 2 * h..(i + 1) * 2 * h];
            row[..h].copy_from_slice(enc_post.row_slice(v));
            for &c in batch.children(v) {
                for (d, &x) in row[h..].iter_mut().zip(h_all.row_slice(c)) {
                    *d += x;
                }
            }
        }
        let upd = &model.updaters[ty];
        let mut y1 = joint.matmul(store.value(upd.layers[0].w));
        y1.add_row_broadcast(store.value(upd.layers[0].b));
        scatter_copy(&mut upd1_in, rows, &joint);
        scatter_copy(&mut upd1_pre, rows, &y1);
        let mut z1 = y1;
        z1.leaky_relu_assign(LEAKY_SLOPE);
        let mut y2 = z1.matmul(store.value(upd.layers[1].w));
        y2.add_row_broadcast(store.value(upd.layers[1].b));
        scatter_copy(&mut upd2_in, rows, &z1);
        scatter_copy(&mut upd2_pre, rows, &y2);
        let mut state = y2;
        state.leaky_relu_assign(LEAKY_SLOPE);
        scatter_copy(&mut h_all, rows, &state);
    }
    let root_states = h_all.gather_rows(&batch.roots);
    let (r_out, readout) = mlp_forward(&model.readout, store, root_states);
    let preds = (0..graphs.len()).map(|g| r_out.get(g, 0)).collect();
    BatchedForward { batch, enc_pre, upd1_in, upd1_pre, upd2_in, upd2_pre, readout, preds }
}

/// Backward from per-graph loss-derivative seeds, accumulating parameter
/// gradients into the store in the reference's order.
fn backward(model: &mut GnnModel, fwd: &BatchedForward, graphs: &[&TypedGraph], seeds: &[f32]) {
    let batch = &fwd.batch;
    let n = batch.n;
    let h = model.config.hidden;
    let n_graphs = seeds.len();
    // Liveness: a node's state reaches the loss iff it is a root or has a
    // live parent (the reference's `None` gradient slots skip the rest).
    let mut live = vec![false; n];
    for &r in &batch.roots {
        live[r] = true;
    }
    for v in (0..n).rev() {
        if !live[v] {
            live[v] = batch.parents(v).iter().any(|&p| live[p]);
        }
    }
    // Readout backward over the B×h root matrix. Rows are graphs ascending,
    // which is the reference's store-accumulation order for readout params,
    // so parameters can be accumulated directly here.
    let mut g = Tensor::zeros(n_graphs, 1);
    for (i, &s) in seeds.iter().enumerate() {
        g.data[i] = s;
    }
    let last = model.readout.layers.len() - 1;
    for l in (0..=last).rev() {
        if l != last {
            leaky_mask(&mut g, &fwd.readout.pre[l]);
        }
        let layer = model.readout.layers[l];
        accumulate_linear(&mut model.store, &layer, &fwd.readout.inputs[l], &g);
        // `matmul` against the materialized transpose is bit-identical to
        // `matmul_transpose_b` (see `Tensor::transpose`) but vectorizes.
        g = g.matmul(&model.store.value(layer.w).transpose());
    }
    let g_roots = g; // B×h gradient at the root states
                     // Transpose every updater weight once per step; the level loop below
                     // reuses them for all groups of that type.
    let upd_t: Vec<(Tensor, Tensor)> = model
        .updaters
        .iter()
        .map(|u| {
            (
                model.store.value(u.layers[0].w).transpose(),
                model.store.value(u.layers[1].w).transpose(),
            )
        })
        .collect();
    // Per-node gradient rows (filled as levels are processed, top-down).
    let mut g_h = Tensor::zeros(n, h);
    let mut g_agg = Tensor::zeros(n, h);
    let mut g_upd1_pre = Tensor::zeros(n, h);
    let mut g_upd2_pre = Tensor::zeros(n, h);
    let mut g_enc_pre = Tensor::zeros(n, h);
    let mut seeded = vec![false; n];
    for (i, &r) in batch.roots.iter().enumerate() {
        // First contribution to a root state comes from the readout (pushed
        // last on the reference tape, so visited first).
        g_h.data[r * h..(r + 1) * h].copy_from_slice(g_roots.row_slice(i));
        seeded[r] = true;
    }
    for group in batch.groups.iter().rev() {
        let rows: Vec<usize> = group.nodes.iter().copied().filter(|&v| live[v]).collect();
        if rows.is_empty() {
            continue;
        }
        // Fold parent contributions into each state gradient, descending
        // parent order (reverse tape), after any readout seed.
        for &v in &rows {
            for &p in batch.parents(v) {
                if !live[p] {
                    continue;
                }
                let (dst, src) = (v * h, p * h);
                if !seeded[v] {
                    g_h.data[dst..dst + h].copy_from_slice(&g_agg.data[src..src + h]);
                    seeded[v] = true;
                } else {
                    for c in 0..h {
                        g_h.data[dst + c] += g_agg.data[src + c];
                    }
                }
            }
        }
        // Through the trailing state activation into updater layer 2.
        let mut gy2 = g_h.gather_rows(&rows);
        leaky_mask_rows(&mut gy2, &fwd.upd2_pre, &rows);
        let (w1t, w2t) = &upd_t[group.ty];
        let gz1 = gy2.matmul(w2t);
        scatter_copy(&mut g_upd2_pre, &rows, &gy2);
        // Through the inter-layer activation into updater layer 1.
        let mut gy1 = gz1;
        leaky_mask_rows(&mut gy1, &fwd.upd1_pre, &rows);
        let gjoint = gy1.matmul(w1t);
        scatter_copy(&mut g_upd1_pre, &rows, &gy1);
        // Split the joint gradient into encoder and aggregation parts.
        let (genc_post, gagg) = split_cols(&gjoint, h);
        scatter_copy(&mut g_agg, &rows, &gagg);
        // Through the encoder activation (features are inputs; flow stops).
        let mut gye = genc_post;
        leaky_mask_rows(&mut gye, &fwd.enc_pre, &rows);
        scatter_copy(&mut g_enc_pre, &rows, &gye);
    }
    // Final pass: parameter-gradient accumulation in the reference's
    // canonical order — for every type, live nodes sorted (graph ascending,
    // node descending).
    let n_types = model.config.feature_dims.len();
    for ty in 0..n_types {
        let mut canon: Vec<usize> = Vec::new();
        for gidx in 0..n_graphs {
            for v in (batch.offsets[gidx]..batch.offsets[gidx + 1]).rev() {
                if batch.types[v] == ty && live[v] {
                    canon.push(v);
                }
            }
        }
        if canon.is_empty() {
            continue;
        }
        let upd = model.updaters[ty].clone();
        accumulate_linear(
            &mut model.store,
            &upd.layers[1],
            &fwd.upd2_in.gather_rows(&canon),
            &g_upd2_pre.gather_rows(&canon),
        );
        accumulate_linear(
            &mut model.store,
            &upd.layers[0],
            &fwd.upd1_in.gather_rows(&canon),
            &g_upd1_pre.gather_rows(&canon),
        );
        // Encoder inputs are the raw feature rows (regathered from the
        // graphs; they are not stashed because widths vary per type).
        let enc = model.encoders[ty].clone();
        let x = gather_features(batch, graphs, &canon, model.config.feature_dims[ty]);
        accumulate_linear(&mut model.store, &enc.layers[0], &x, &g_enc_pre.gather_rows(&canon));
    }
}

/// Predict runtimes (ns) for a batch of graphs with the batched engine.
pub(crate) fn predict_batch(model: &GnnModel, graphs: &[&TypedGraph]) -> Result<Vec<f64>> {
    for g in graphs {
        g.validate(&model.config.feature_dims)?;
    }
    if graphs.is_empty() {
        return Ok(Vec::new());
    }
    let fwd = forward(model, graphs);
    Ok(fwd
        .preds
        .iter()
        .map(|&p| ((p * model.target_std + model.target_mean) as f64).exp())
        .collect())
}

/// One batched training step (bit-identical to the reference).
pub(crate) fn train_batch(
    model: &mut GnnModel,
    graphs: &[&TypedGraph],
    targets_ns: &[f64],
    adam: &AdamConfig,
    huber_delta: f32,
) -> Result<f32> {
    if graphs.is_empty() || graphs.len() != targets_ns.len() {
        return Err(GracefulError::Model("empty or mismatched batch".into()));
    }
    for g in graphs {
        g.validate(&model.config.feature_dims)?;
    }
    model.store.zero_grad();
    let fwd = forward(model, graphs);
    let bsz = graphs.len() as f32;
    let mut total_loss = 0.0f32;
    let mut seeds = Vec::with_capacity(graphs.len());
    for (i, &t_ns) in targets_ns.iter().enumerate() {
        let target = model.normalized_target(t_ns);
        let (loss, dloss) = huber(fwd.preds[i] - target, huber_delta);
        total_loss += loss;
        seeds.push(dloss / bsz);
    }
    backward(model, &fwd, graphs, &seeds);
    model.store.adam_step(adam);
    Ok(total_loss / bsz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gnn::{GnnConfig, GnnExecMode};
    use graceful_common::rng::Rng;

    /// Random typed DAG with heterogeneous fan-in, shared children, multiple
    /// levels and (sometimes) trailing nodes after the root — the shapes that
    /// stress level packing, liveness and gradient-fold order.
    fn random_graph(rng: &mut Rng, feature_dims: &[usize]) -> TypedGraph {
        let n = 2 + (rng.next_u64() % 14) as usize;
        let mut node_types = Vec::with_capacity(n);
        let mut features = Vec::with_capacity(n);
        for _ in 0..n {
            let t = (rng.next_u64() % feature_dims.len() as u64) as usize;
            node_types.push(t);
            features.push((0..feature_dims[t]).map(|_| rng.range(-1.0..1.0) as f32).collect());
        }
        let mut edges = Vec::new();
        for d in 1..n {
            // Between 0 and 3 children per node, duplicates allowed.
            let k = (rng.next_u64() % 4) as usize;
            for _ in 0..k.min(d) {
                edges.push(((rng.next_u64() % d as u64) as usize, d));
            }
        }
        // Root is usually the last node, sometimes interior (leaving dead
        // trailing nodes whose gradients must be skipped).
        let root = if rng.unit() < 0.8 { n - 1 } else { (rng.next_u64() % n as u64) as usize };
        TypedGraph { node_types, features, edges, root }
    }

    fn dims() -> Vec<usize> {
        vec![1, 3, 2, 5]
    }

    fn graphs_and_targets(seed: u64, count: usize) -> (Vec<TypedGraph>, Vec<f64>) {
        let mut rng = Rng::seed(seed);
        let graphs: Vec<TypedGraph> = (0..count).map(|_| random_graph(&mut rng, &dims())).collect();
        let targets: Vec<f64> = (0..count).map(|_| (3.0 + 10.0 * rng.unit()).exp()).collect();
        (graphs, targets)
    }

    #[test]
    fn batched_predictions_bit_identical_to_reference() {
        let cfg = GnnConfig { hidden: 9, feature_dims: dims(), readout_hidden: 7 };
        let mut model = GnnModel::new(cfg, 17).unwrap();
        let (graphs, targets) = graphs_and_targets(101, 64);
        model.fit_target_norm(&targets).unwrap();
        let refs: Vec<&TypedGraph> = graphs.iter().collect();
        let batched = model.predict_batch(&refs, GnnExecMode::Batched).unwrap();
        for (g, &b) in refs.iter().zip(&batched) {
            let r = model.predict(g).unwrap();
            assert_eq!(r.to_bits(), b.to_bits(), "prediction diverged");
        }
    }

    #[test]
    fn batched_training_bit_identical_to_reference_across_batch_sizes() {
        let (graphs, targets) = graphs_and_targets(555, 48);
        let adam = AdamConfig { lr: 3e-3, ..AdamConfig::default() };
        for bsz in [1usize, 2, 5, 16, 48] {
            let cfg = GnnConfig { hidden: 8, feature_dims: dims(), readout_hidden: 8 };
            let mut a = GnnModel::new(cfg.clone(), 23).unwrap();
            let mut b = GnnModel::new(cfg, 23).unwrap();
            a.fit_target_norm(&targets).unwrap();
            b.fit_target_norm(&targets).unwrap();
            for (chunk_g, chunk_t) in graphs.chunks(bsz).zip(targets.chunks(bsz)) {
                let refs: Vec<&TypedGraph> = chunk_g.iter().collect();
                let la =
                    a.train_batch_in(GnnExecMode::NodeAtATime, &refs, chunk_t, &adam, 1.0).unwrap();
                let lb =
                    b.train_batch_in(GnnExecMode::Batched, &refs, chunk_t, &adam, 1.0).unwrap();
                assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged at batch size {bsz}");
            }
            assert_eq!(
                a.param_checksum(),
                b.param_checksum(),
                "parameters diverged at batch size {bsz}"
            );
            // And the trained models still predict identically.
            let refs: Vec<&TypedGraph> = graphs.iter().take(8).collect();
            let pa = a.predict_batch(&refs, GnnExecMode::NodeAtATime).unwrap();
            let pb = b.predict_batch(&refs, GnnExecMode::Batched).unwrap();
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn dead_nodes_after_root_do_not_contribute_gradients() {
        // A graph whose root is node 0: every other node is dead weight.
        let g = TypedGraph {
            node_types: vec![0, 1, 2],
            features: vec![vec![0.4], vec![0.1, -0.2, 0.3], vec![0.9, -0.7]],
            edges: vec![(0, 1), (1, 2)],
            root: 0,
        };
        let cfg = GnnConfig { hidden: 6, feature_dims: dims(), readout_hidden: 4 };
        let mut a = GnnModel::new(cfg.clone(), 3).unwrap();
        let mut b = GnnModel::new(cfg, 3).unwrap();
        a.fit_target_norm(&[100.0]).unwrap();
        b.fit_target_norm(&[100.0]).unwrap();
        let adam = AdamConfig::default();
        for _ in 0..5 {
            let la = a.train_batch_in(GnnExecMode::NodeAtATime, &[&g], &[100.0], &adam, 1.0);
            let lb = b.train_batch_in(GnnExecMode::Batched, &[&g], &[100.0], &adam, 1.0);
            assert_eq!(la.unwrap().to_bits(), lb.unwrap().to_bits());
        }
        assert_eq!(a.param_checksum(), b.param_checksum());
    }

    #[test]
    fn empty_and_mismatched_batches_error() {
        let cfg = GnnConfig { hidden: 4, feature_dims: dims(), readout_hidden: 4 };
        let mut m = GnnModel::new(cfg, 1).unwrap();
        let adam = AdamConfig::default();
        assert!(m.train_batch_in(GnnExecMode::Batched, &[], &[], &adam, 1.0).is_err());
        let (graphs, _) = graphs_and_targets(9, 2);
        let refs: Vec<&TypedGraph> = graphs.iter().collect();
        assert!(m.train_batch_in(GnnExecMode::Batched, &refs, &[1.0], &adam, 1.0).is_err());
        assert!(m.predict_batch(&[], GnnExecMode::Batched).unwrap().is_empty());
    }
}
