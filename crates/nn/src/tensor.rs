//! Dense row-major `f32` matrices.

use serde::{Deserialize, Serialize};

/// A dense matrix (vectors are `1×n` or `n×1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(rows * cols, data.len(), "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Row vector from a slice.
    pub fn row(v: &[f32]) -> Self {
        Tensor { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` — the hot kernel; `ikj` loop order for cache locality.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Materialized transpose.
    ///
    /// `a.matmul(&b.transpose())` accumulates exactly the same products in
    /// exactly the same order as `a.matmul_transpose_b(&b)` (ascending inner
    /// index; the zero-skip only elides `±0.0` additions onto a never-`-0.0`
    /// accumulator), so the two are bit-identical — but the `matmul` inner
    /// loop vectorizes while the fused dot products cannot. The batched GNN
    /// backward transposes each weight matrix once per step and takes the
    /// fast path.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// `self · otherᵀ` (used in backward passes without materializing the
    /// transpose).
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_tb shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                let a_row = &self.data[i * k..(i + 1) * k];
                let b_row = &other.data[j * k..(j + 1) * k];
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other`.
    pub fn transpose_a_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_ta shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..k {
            for i in 0..m {
                let a = self.data[p * m + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Gather `rows` of `self` into a new `rows.len() × cols` matrix (the
    /// batched replacement for building many `1×c` row tensors).
    pub fn gather_rows(&self, rows: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row_slice(r));
        }
        Tensor::from_vec(rows.len(), self.cols, data)
    }

    /// Scatter-add `src`'s rows into `self` at `rows` (row `i` of `src` is
    /// added to row `rows[i]` of `self`), strictly in `src` row order — the
    /// deterministic adjoint of [`Tensor::gather_rows`].
    pub fn scatter_add_rows(&mut self, rows: &[usize], src: &Tensor) {
        assert_eq!(rows.len(), src.rows, "scatter row-count mismatch");
        assert_eq!(self.cols, src.cols, "scatter width mismatch");
        for (i, &r) in rows.iter().enumerate() {
            let dst = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(src.row_slice(i)) {
                *d += s;
            }
        }
    }

    /// Segment sum with a **pinned in-order reduction**: row `r` of `self`
    /// is added into output row `segments[r]`, scanning rows strictly in
    /// ascending `r`. Each output row therefore accumulates its members in
    /// input order starting from zero — the same float-addition chain as
    /// summing the member rows one by one, so results are bit-identical to a
    /// per-segment `sum_rows` over the same member order.
    pub fn segment_sum(&self, segments: &[usize], n_segments: usize) -> Tensor {
        assert_eq!(segments.len(), self.rows, "segment id per row required");
        let mut out = Tensor::zeros(n_segments, self.cols);
        for (r, &s) in segments.iter().enumerate() {
            let dst = &mut out.data[s * self.cols..(s + 1) * self.cols];
            for (d, &x) in dst.iter_mut().zip(self.row_slice(r)) {
                *d += x;
            }
        }
        out
    }

    /// Broadcast-add a `1×cols` bias row over every row (batched bias).
    pub fn add_row_broadcast(&mut self, bias: &Tensor) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(self.cols, bias.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Leaky-ReLU every element in place (batched activation).
    pub fn leaky_relu_assign(&mut self, alpha: f32) {
        for x in self.data.iter_mut() {
            if *x < 0.0 {
                *x *= alpha;
            }
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(
            4,
            3,
            vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 1.0, 1.0, 2.0, 2.0, 2.0],
        );
        // a · bᵀ the slow way: transpose b manually.
        let mut bt = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                bt.set(c, r, b.get(r, c));
            }
        }
        assert_eq!(a.matmul(&bt).data, a.matmul_transpose_b(&b).data);
        // aᵀ · x
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut at = Tensor::zeros(3, 2);
        for r in 0..2 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert_eq!(at.matmul(&x).data, a.transpose_a_matmul(&x).data);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::row(&[1.0, 2.0]);
        a.add_assign(&Tensor::row(&[0.5, -1.0]));
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![3.0, 2.0]);
        assert!((a.norm() - (13.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let m = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.rows, 3);
        assert_eq!(g.data, vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let mut acc = Tensor::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0, 2], &g);
        // Row 2 received two contributions, row 0 one, row 1 none.
        assert_eq!(acc.data, vec![1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    fn segment_sum_matches_manual_in_order_chain() {
        // Awkward summands: the in-order chain differs bitwise from other
        // orders, so this pins the reduction order as well as the values.
        let vals: Vec<f32> = (0..8).map(|i| ((i * 2654435761u64 as usize) as f32).sqrt()).collect();
        let m = Tensor::from_vec(4, 2, vals.clone());
        let segs = [1usize, 0, 1, 1];
        let out = m.segment_sum(&segs, 2);
        let mut want0 = Tensor::zeros(1, 2);
        want0.add_assign(&Tensor::row(m.row_slice(1)));
        let mut want1 = Tensor::zeros(1, 2);
        for r in [0usize, 2, 3] {
            want1.add_assign(&Tensor::row(m.row_slice(r)));
        }
        assert_eq!(out.row_slice(0), want0.data.as_slice());
        assert_eq!(
            out.row_slice(1).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want1.data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn broadcast_bias_and_activation() {
        let mut m = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        m.add_row_broadcast(&Tensor::row(&[1.0, 1.0]));
        m.leaky_relu_assign(0.5);
        assert_eq!(m.data, vec![2.0, -0.5, 4.0, -1.5]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
