//! Dense row-major `f32` matrices.

use serde::{Deserialize, Serialize};

/// A dense matrix (vectors are `1×n` or `n×1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(rows * cols, data.len(), "shape/data mismatch");
        Tensor { rows, cols, data }
    }

    /// Row vector from a slice.
    pub fn row(v: &[f32]) -> Self {
        Tensor { rows: 1, cols: v.len(), data: v.to_vec() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// `self · other` — the hot kernel; `ikj` loop order for cache locality.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (used in backward passes without materializing the
    /// transpose).
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_tb shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                let a_row = &self.data[i * k..(i + 1) * k];
                let b_row = &other.data[j * k..(j + 1) * k];
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other`.
    pub fn transpose_a_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_ta shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for p in 0..k {
            for i in 0..m {
                let a = self.data[p * m + i];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "add shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale in place.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data.iter_mut() {
            *a *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = Tensor::from_vec(
            4,
            3,
            vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 1.0, 1.0, 2.0, 2.0, 2.0],
        );
        // a · bᵀ the slow way: transpose b manually.
        let mut bt = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                bt.set(c, r, b.get(r, c));
            }
        }
        assert_eq!(a.matmul(&bt).data, a.matmul_transpose_b(&b).data);
        // aᵀ · x
        let x = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut at = Tensor::zeros(3, 2);
        for r in 0..2 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert_eq!(at.matmul(&x).data, a.transpose_a_matmul(&x).data);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::row(&[1.0, 2.0]);
        a.add_assign(&Tensor::row(&[0.5, -1.0]));
        a.scale_assign(2.0);
        assert_eq!(a.data, vec![3.0, 2.0]);
        assert!((a.norm() - (13.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
