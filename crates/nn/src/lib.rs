//! A small, dependency-free neural-network stack.
//!
//! The paper trains its GNN-MLP cost model in PyTorch. The repro hint for
//! this paper flags Rust's graph-NN support as thin (`tch`/`burn` bindings
//! exist but typed DAG message passing is not idiomatic in either), so this
//! crate implements exactly the stack GRACEFUL needs, from scratch:
//!
//! * [`tensor`] — dense row-major `f32` matrices with the handful of BLAS-1/2
//!   kernels the model uses, plus the batched building blocks (row
//!   gather/scatter, in-order segment sums, broadcast bias/activation),
//! * [`tape`] — reverse-mode automatic differentiation over a per-sample
//!   tape with a closed operation set (verified against finite differences),
//! * [`mlp`] — parameter store (Xavier init, Adam with gradient clipping),
//!   linear layers and MLPs,
//! * [`gnn`] — the typed **topological message-passing GNN**: per-node-type
//!   encoders, child-state sum aggregation in topological order, per-type
//!   update networks, and an MLP readout on the root state (Section III-D).
//!   Training and prediction run either node-at-a-time (the reference) or
//!   through the **batched level-synchronous engine** — bit-identical, with
//!   every MLP applied once per (level × type) group; see
//!   [`gnn::GnnExecMode`].
//!
//! Everything is deterministic given the seed, and models serialize with
//! `serde` so trained estimators can be saved and reloaded.

mod batched;
pub mod gnn;
pub mod mlp;
pub mod tape;
pub mod tensor;

pub use gnn::{GnnConfig, GnnExecMode, GnnModel, TypedGraph};
pub use mlp::{AdamConfig, Linear, Mlp, ParamId, ParamStore};
pub use tape::{Op, Tape, VarId};
pub use tensor::Tensor;
