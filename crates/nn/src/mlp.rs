//! Parameter store, linear layers, MLPs, and the Adam optimizer.

use crate::tape::{Tape, VarId};
use crate::tensor::Tensor;
use graceful_common::rng::Rng;
use serde::{Deserialize, Serialize};

/// Handle to a parameter tensor in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Global gradient-norm clip (0 disables).
    pub clip_norm: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip_norm: 5.0 }
    }
}

/// Owns all trainable tensors plus their gradient and Adam moment buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    seed: u64,
    values: Vec<Tensor>,
    #[serde(skip)]
    grads: Vec<Tensor>,
    #[serde(skip)]
    m: Vec<Tensor>,
    #[serde(skip)]
    v: Vec<Tensor>,
    #[serde(skip)]
    step: u64,
}

impl ParamStore {
    pub fn new(seed: u64) -> Self {
        ParamStore {
            seed,
            values: Vec::new(),
            grads: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            step: 0,
        }
    }

    /// Allocate a parameter with Xavier/Glorot uniform init.
    pub fn alloc(&mut self, rows: usize, cols: usize, rng: &mut Rng) -> ParamId {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data: Vec<f32> = (0..rows * cols).map(|_| (rng.range(-bound..bound)) as f32).collect();
        self.values.push(Tensor::from_vec(rows, cols, data));
        self.grads.push(Tensor::zeros(rows, cols));
        self.m.push(Tensor::zeros(rows, cols));
        self.v.push(Tensor::zeros(rows, cols));
        ParamId(self.values.len() - 1)
    }

    /// Allocate a zero-initialized parameter (biases).
    pub fn alloc_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.values.push(Tensor::zeros(rows, cols));
        self.grads.push(Tensor::zeros(rows, cols));
        self.m.push(Tensor::zeros(rows, cols));
        self.v.push(Tensor::zeros(rows, cols));
        ParamId(self.values.len() - 1)
    }

    pub fn value(&self, p: ParamId) -> &Tensor {
        &self.values[p.0]
    }

    /// Test-only mutable access (gradient checking perturbs parameters).
    pub fn value_mut_for_test(&mut self, p: ParamId) -> &mut Tensor {
        &mut self.values[p.0]
    }

    pub fn grad(&self, p: ParamId) -> &Tensor {
        &self.grads[p.0]
    }

    pub fn grad_mut(&mut self, p: ParamId) -> &mut Tensor {
        &mut self.grads[p.0]
    }

    pub fn zero_grad(&mut self) {
        for g in self.grads.iter_mut() {
            g.data.fill(0.0);
        }
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// FNV-1a digest over every parameter scalar's bit pattern (shape
    /// included), for bit-identity assertions in differential tests.
    pub fn param_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for t in &self.values {
            mix(t.rows as u64);
            mix(t.cols as u64);
            for &x in &t.data {
                mix(x.to_bits() as u64);
            }
        }
        h
    }

    /// Restore the transient buffers after deserialization.
    pub fn rebuild_buffers(&mut self) {
        self.grads = self.values.iter().map(|t| Tensor::zeros(t.rows, t.cols)).collect();
        self.m = self.grads.clone();
        self.v = self.grads.clone();
        self.step = 0;
    }

    /// One Adam step over all parameters (with global norm clipping).
    pub fn adam_step(&mut self, cfg: &AdamConfig) {
        self.step += 1;
        let t = self.step as f32;
        // Global gradient norm.
        if cfg.clip_norm > 0.0 {
            let norm: f32 = self.grads.iter().map(|g| g.norm().powi(2)).sum::<f32>().sqrt();
            if norm > cfg.clip_norm {
                let s = cfg.clip_norm / norm;
                for g in self.grads.iter_mut() {
                    g.scale_assign(s);
                }
            }
        }
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for i in 0..self.values.len() {
            let g = &self.grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let w = &mut self.values[i];
            for j in 0..g.data.len() {
                let gj = g.data[j];
                m.data[j] = cfg.beta1 * m.data[j] + (1.0 - cfg.beta1) * gj;
                v.data[j] = cfg.beta2 * v.data[j] + (1.0 - cfg.beta2) * gj * gj;
                let mh = m.data[j] / bc1;
                let vh = v.data[j] / bc2;
                w.data[j] -= cfg.lr * mh / (vh.sqrt() + cfg.eps);
            }
        }
    }
}

/// A linear layer `y = x·W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Linear {
            w: store.alloc(in_dim, out_dim, rng),
            b: store.alloc_zeros(1, out_dim),
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: VarId) -> VarId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let h = tape.matmul(x, w);
        tape.add_row(h, b)
    }
}

/// A multi-layer perceptron with LeakyReLU(0.05) between layers (none after
/// the last).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

/// Negative-side slope of the LeakyReLU activations.
pub const LEAKY_SLOPE: f32 = 0.05;

impl Mlp {
    /// `dims` lists layer widths, e.g. `[in, hidden, out]`.
    pub fn new(store: &mut ParamStore, dims: &[usize], rng: &mut Rng) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least one layer");
        let layers = dims.windows(2).map(|w| Linear::new(store, w[0], w[1], rng)).collect();
        Mlp { layers }
    }

    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, mut x: VarId) -> VarId {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(tape, store, x);
            if i != last {
                x = tape.leaky_relu(x, LEAKY_SLOPE);
            }
        }
        x
    }

    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Train a 2-layer MLP to fit y = 2a - 3b + 1; verifies the full stack
    /// (forward, backward, Adam) converges.
    #[test]
    fn mlp_fits_linear_function() {
        let mut rng = Rng::seed(7);
        let mut store = ParamStore::new(7);
        let mlp = Mlp::new(&mut store, &[2, 16, 1], &mut rng);
        let cfg = AdamConfig { lr: 5e-3, ..AdamConfig::default() };
        let samples: Vec<([f32; 2], f32)> = (0..256)
            .map(|_| {
                let a = rng.range(-1.0..1.0) as f32;
                let b = rng.range(-1.0..1.0) as f32;
                ([a, b], 2.0 * a - 3.0 * b + 1.0)
            })
            .collect();
        let mut last_loss = f32::INFINITY;
        // Generous epoch cap: convergence speed depends on the init stream,
        // and the early break below exits as soon as the loss is small.
        for epoch in 0..900 {
            let mut loss = 0.0;
            store.zero_grad();
            for (x, y) in &samples {
                let mut tape = Tape::new();
                let input = tape.input(Tensor::row(x));
                let out = mlp.forward(&mut tape, &store, input);
                let pred = tape.value(out).data[0];
                let err = pred - y;
                loss += err * err;
                tape.backward(
                    out,
                    Tensor::from_vec(1, 1, vec![2.0 * err / samples.len() as f32]),
                    &mut store,
                );
            }
            store.adam_step(&cfg);
            last_loss = loss / samples.len() as f32;
            if epoch > 50 && last_loss < 1e-3 {
                break;
            }
        }
        assert!(last_loss < 1e-2, "MLP failed to fit: loss={last_loss}");
    }

    #[test]
    fn adam_clips_gradients() {
        let mut rng = Rng::seed(1);
        let mut store = ParamStore::new(1);
        let p = store.alloc(1, 4, &mut rng);
        store.grad_mut(p).data.copy_from_slice(&[100.0, 100.0, 100.0, 100.0]);
        let before = store.value(p).clone();
        store.adam_step(&AdamConfig { lr: 0.1, clip_norm: 1.0, ..AdamConfig::default() });
        let after = store.value(p);
        // With clipping the per-step move is bounded by ~lr.
        for (b, a) in before.data.iter().zip(&after.data) {
            assert!((b - a).abs() < 0.11);
        }
    }

    #[test]
    fn serde_round_trip_rebuilds_buffers() {
        let mut rng = Rng::seed(3);
        let mut store = ParamStore::new(3);
        let mlp = Mlp::new(&mut store, &[3, 8, 1], &mut rng);
        let json = serde_json::to_string(&(&store, &mlp)).unwrap();
        let (mut store2, mlp2): (ParamStore, Mlp) = serde_json::from_str(&json).unwrap();
        store2.rebuild_buffers();
        // Same prediction before/after.
        let x = Tensor::row(&[0.1, -0.2, 0.3]);
        let mut t1 = Tape::new();
        let i1 = t1.input(x.clone());
        let o1 = mlp.forward(&mut t1, &store, i1);
        let mut t2 = Tape::new();
        let i2 = t2.input(x);
        let o2 = mlp2.forward(&mut t2, &store2, i2);
        assert_eq!(t1.value(o1).data, t2.value(o2).data);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed(4);
        let mut store = ParamStore::new(4);
        let _ = Mlp::new(&mut store, &[5, 7, 2], &mut rng);
        // (5*7 + 7) + (7*2 + 2) = 42 + 16
        assert_eq!(store.param_count(), 58);
    }
}
