//! The typed topological message-passing GNN (Section III-D).
//!
//! "Each node type in our graph directly translates into a node type of the
//! GNN and a final MLP produces the cost prediction based on the embedding
//! the GNN produces." The model has three stages:
//!
//! 1. **Node encoding** — a per-type encoder MLP embeds the node's feature
//!    vector into the hidden dimension.
//! 2. **Topological message passing** — nodes are processed in topological
//!    order; each node's state is `U_t([enc(x_v), mean(h_children)])` where
//!    `U_t` is the per-type update MLP and the children are the nodes with
//!    edges *into* `v`. Because the graph is a DAG processed bottom-up, one
//!    pass aggregates the whole graph into the root (as in the zero-shot
//!    cost model line of work the paper builds on).
//! 3. **Readout** — an MLP on the root state yields the (normalized log)
//!    runtime prediction.
//!
//! Targets are trained in normalized log space with a Huber loss, which is
//! what makes the Q-error metric well behaved across 6 orders of magnitude
//! of runtimes.
//!
//! # Execution modes
//!
//! The forward/backward pass comes in two bit-identical implementations,
//! selected by [`GnnExecMode`]:
//!
//! * [`GnnExecMode::NodeAtATime`] — the reference: a fresh [`Tape`] per
//!   graph, every per-type MLP applied to `1×f` row tensors in topological
//!   order. Simple, obviously correct, slow.
//! * [`GnnExecMode::Batched`] — the level-synchronous engine in the
//!   crate-private `batched` module: a whole mini-batch of graphs packed
//!   together, nodes
//!   grouped by (topological level × node type), every MLP applied once per
//!   group on an `N×f` matrix. Child aggregation and parameter-gradient
//!   accumulation replay the reference's float-addition chains exactly, so
//!   predictions, losses and trained parameters are **bit-identical** to the
//!   reference at every batch size (the differential suite enforces it).

use crate::batched;
use crate::mlp::{AdamConfig, Mlp, ParamStore};
use crate::tape::{Tape, VarId};
use crate::tensor::Tensor;
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use serde::{Deserialize, Serialize};

/// Which forward/backward implementation the GNN uses. Both are
/// bit-identical; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GnnExecMode {
    /// Level-synchronous graph-vectorized execution (the fast path).
    #[default]
    Batched,
    /// The kept node-at-a-time reference (one tape per graph).
    NodeAtATime,
}

impl GnnExecMode {
    /// Parse a mode name (`batched` | `node-at-a-time`, case insensitive).
    /// Unknown names are an error listing the valid options.
    pub fn parse(value: &str) -> std::result::Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "batched" | "batch" | "level" => Ok(GnnExecMode::Batched),
            "node-at-a-time" | "node_at_a_time" | "reference" | "node" => {
                Ok(GnnExecMode::NodeAtATime)
            }
            other => Err(format!(
                "invalid GNN exec mode `{other}`: valid values are `batched` \
                 (aliases `batch`, `level`) and `node-at-a-time` (aliases \
                 `node_at_a_time`, `node`, `reference`)"
            )),
        }
    }
}

/// A typed DAG instance ready for the GNN.
///
/// Invariant: `edges` are `(src, dst)` with `src < dst` (topological index
/// order), and messages flow from `src` to `dst`; `root` is the node whose
/// state feeds the readout.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedGraph {
    /// Node type id per node (indexes the encoder/updater lists).
    pub node_types: Vec<usize>,
    /// Per-node feature vector; length must equal the type's feature dim.
    pub features: Vec<Vec<f32>>,
    pub edges: Vec<(usize, usize)>,
    pub root: usize,
}

impl TypedGraph {
    pub fn len(&self) -> usize {
        self.node_types.len()
    }

    pub fn is_empty(&self) -> bool {
        self.node_types.is_empty()
    }

    /// Validate the topological-index invariant and feature dims.
    pub fn validate(&self, feature_dims: &[usize]) -> Result<()> {
        if self.features.len() != self.node_types.len() {
            return Err(GracefulError::Model("features/types length mismatch".into()));
        }
        if self.root >= self.len() {
            return Err(GracefulError::Model("root out of bounds".into()));
        }
        for (i, (&t, f)) in self.node_types.iter().zip(&self.features).enumerate() {
            let dim = *feature_dims
                .get(t)
                .ok_or_else(|| GracefulError::Model(format!("unknown node type {t}")))?;
            if f.len() != dim {
                return Err(GracefulError::Model(format!(
                    "node {i} (type {t}) has {} features, expected {dim}",
                    f.len()
                )));
            }
        }
        for &(s, d) in &self.edges {
            if s >= d || d >= self.len() {
                return Err(GracefulError::Model(format!(
                    "edge ({s},{d}) violates topological order"
                )));
            }
        }
        Ok(())
    }
}

/// GNN architecture configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnConfig {
    /// Hidden state width.
    pub hidden: usize,
    /// Feature dimension per node type.
    pub feature_dims: Vec<usize>,
    /// Readout MLP hidden width.
    pub readout_hidden: usize,
}

/// The trainable model: per-type encoders & updaters plus a readout MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnnModel {
    pub config: GnnConfig,
    pub(crate) store: ParamStore,
    pub(crate) encoders: Vec<Mlp>,
    pub(crate) updaters: Vec<Mlp>,
    pub(crate) readout: Mlp,
    /// Target normalization (mean, std) in log space, set by `fit_target_norm`.
    pub target_mean: f32,
    pub target_std: f32,
}

impl GnnModel {
    /// Build a model, validating the architecture: a zero `hidden` or
    /// `readout_hidden` width, or an empty `feature_dims`, is a typed
    /// [`GracefulError::Config`] (matching `ExecOptions` semantics).
    pub fn new(config: GnnConfig, seed: u64) -> Result<Self> {
        if config.hidden == 0 {
            return Err(GracefulError::Config("GNN hidden width must be >= 1, got 0".into()));
        }
        if config.readout_hidden == 0 {
            return Err(GracefulError::Config(
                "GNN readout hidden width must be >= 1, got 0".into(),
            ));
        }
        if config.feature_dims.is_empty() {
            return Err(GracefulError::Config(
                "GNN needs at least one node type (feature_dims is empty)".into(),
            ));
        }
        let mut rng = Rng::seed(seed);
        let mut store = ParamStore::new(seed);
        let h = config.hidden;
        let encoders = config
            .feature_dims
            .iter()
            .map(|&f| Mlp::new(&mut store, &[f.max(1), h], &mut rng))
            .collect();
        // Two-layer update networks: runtimes are *multiplicative* in
        // (rows × iterations × per-op cost), which a single affine layer over
        // log-scaled features cannot express.
        let updaters = config
            .feature_dims
            .iter()
            .map(|_| Mlp::new(&mut store, &[2 * h, h, h], &mut rng))
            .collect();
        let readout = Mlp::new(&mut store, &[h, config.readout_hidden, 1], &mut rng);
        Ok(GnnModel {
            config,
            store,
            encoders,
            updaters,
            readout,
            target_mean: 0.0,
            target_std: 1.0,
        })
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.store.param_count()
    }

    /// FNV-1a digest over the bit patterns of every parameter scalar — the
    /// cheap way for differential tests to assert two models' trained
    /// weights are bit-identical.
    pub fn param_checksum(&self) -> u64 {
        self.store.param_checksum()
    }

    /// Compute target normalization from raw (positive) runtime labels.
    /// An empty label set is a typed [`GracefulError::Model`].
    pub fn fit_target_norm(&mut self, targets_ns: &[f64]) -> Result<()> {
        if targets_ns.is_empty() {
            return Err(GracefulError::Model(
                "cannot fit target normalization on zero labels".into(),
            ));
        }
        let logs: Vec<f32> = targets_ns.iter().map(|&t| (t.max(1.0)).ln() as f32).collect();
        let mean = logs.iter().sum::<f32>() / logs.len() as f32;
        let var = logs.iter().map(|l| (l - mean).powi(2)).sum::<f32>() / logs.len() as f32;
        self.target_mean = mean;
        self.target_std = var.sqrt().max(1e-3);
        Ok(())
    }

    /// Forward pass; returns the tape and the prediction variable
    /// (normalized log space).
    fn forward(&self, graph: &TypedGraph) -> (Tape, VarId) {
        let mut tape = Tape::new();
        let n = graph.len();
        // Incoming edge lists (children states to aggregate).
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(s, d) in &graph.edges {
            children[d].push(s);
        }
        let mut states: Vec<Option<VarId>> = vec![None; n];
        let zero = tape.input(Tensor::zeros(1, self.config.hidden));
        for v in 0..n {
            let t = graph.node_types[v];
            let x = tape.input(Tensor::row(&graph.features[v]));
            let enc = self.encoders[t].forward(&mut tape, &self.store, x);
            let enc = tape.leaky_relu(enc, crate::mlp::LEAKY_SLOPE);
            let agg = if children[v].is_empty() {
                zero
            } else {
                // Sum aggregation: cost is additive over children (a join's
                // cost includes both inputs' costs; a loop's cost includes
                // every statement's). Mean aggregation would dilute with
                // fan-in; scaling stability comes from LeakyReLU + gradient
                // clipping + the log-space target.
                let kids: Vec<VarId> =
                    children[v].iter().map(|&c| states[c].expect("topo order")).collect();
                tape.sum_rows(kids)
            };
            let joint = tape.concat_cols(enc, agg);
            let h = self.updaters[t].forward(&mut tape, &self.store, joint);
            let h = tape.leaky_relu(h, crate::mlp::LEAKY_SLOPE);
            states[v] = Some(h);
        }
        let root = states[graph.root].expect("root computed");
        let out = self.readout.forward(&mut tape, &self.store, root);
        (tape, out)
    }

    /// Predict a runtime in nanoseconds.
    pub fn predict(&self, graph: &TypedGraph) -> Result<f64> {
        graph.validate(&self.config.feature_dims)?;
        let (tape, out) = self.forward(graph);
        let norm = tape.value(out).data[0];
        let log_ns = norm * self.target_std + self.target_mean;
        Ok((log_ns as f64).exp())
    }

    /// Predict runtimes (ns) for a batch of graphs under `mode`. Both modes
    /// return bit-identical values; [`GnnExecMode::Batched`] packs the whole
    /// slice into one level-synchronous pass.
    pub fn predict_batch(&self, graphs: &[&TypedGraph], mode: GnnExecMode) -> Result<Vec<f64>> {
        match mode {
            GnnExecMode::NodeAtATime => graphs.iter().map(|g| self.predict(g)).collect(),
            GnnExecMode::Batched => batched::predict_batch(self, graphs),
        }
    }

    /// One training step over a mini-batch under `mode`; returns the mean
    /// Huber loss. Both modes produce bit-identical losses, gradients and
    /// post-step parameters.
    pub fn train_batch_in(
        &mut self,
        mode: GnnExecMode,
        graphs: &[&TypedGraph],
        targets_ns: &[f64],
        adam: &AdamConfig,
        huber_delta: f32,
    ) -> Result<f32> {
        match mode {
            GnnExecMode::NodeAtATime => self.train_batch(graphs, targets_ns, adam, huber_delta),
            GnnExecMode::Batched => {
                batched::train_batch(self, graphs, targets_ns, adam, huber_delta)
            }
        }
    }

    /// One training step over a mini-batch with the node-at-a-time
    /// reference implementation; returns the mean Huber loss.
    ///
    /// Targets are runtimes in nanoseconds; the Huber delta is in normalized
    /// log units. This is the differential-testing reference for
    /// [`GnnModel::train_batch_in`] with [`GnnExecMode::Batched`].
    pub fn train_batch(
        &mut self,
        graphs: &[&TypedGraph],
        targets_ns: &[f64],
        adam: &AdamConfig,
        huber_delta: f32,
    ) -> Result<f32> {
        if graphs.is_empty() || graphs.len() != targets_ns.len() {
            return Err(GracefulError::Model("empty or mismatched batch".into()));
        }
        self.store.zero_grad();
        let mut total_loss = 0.0f32;
        let bsz = graphs.len() as f32;
        for (g, &t_ns) in graphs.iter().zip(targets_ns) {
            g.validate(&self.config.feature_dims)?;
            let target = self.normalized_target(t_ns);
            let (tape, out) = self.forward(g);
            let pred = tape.value(out).data[0];
            let (loss, dloss) = huber(pred - target, huber_delta);
            total_loss += loss;
            tape.backward(out, Tensor::from_vec(1, 1, vec![dloss / bsz]), &mut self.store);
        }
        self.store.adam_step(adam);
        Ok(total_loss / bsz)
    }

    /// Restore transient optimizer buffers after deserialization.
    pub fn rebuild_after_load(&mut self) {
        self.store.rebuild_buffers();
    }

    /// Normalize a raw runtime label into the model's log-space target.
    pub(crate) fn normalized_target(&self, t_ns: f64) -> f32 {
        ((t_ns.max(1.0)).ln() as f32 - self.target_mean) / self.target_std
    }
}

/// Huber loss and its derivative at `err` (shared by both exec modes so the
/// formulas cannot drift apart).
pub(crate) fn huber(err: f32, delta: f32) -> (f32, f32) {
    if err.abs() <= delta {
        (0.5 * err * err, err)
    } else {
        (delta * (err.abs() - 0.5 * delta), delta * err.signum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic task: runtime = 100 · (sum of leaf features) over a small
    /// chain DAG. The GNN must aggregate leaf information into the root.
    fn chain_graph(leaf_vals: &[f32]) -> TypedGraph {
        // type 0 = leaf (1 feature), type 1 = inner (1 dummy feature),
        // type 2 = root (1 dummy feature).
        let n_leaves = leaf_vals.len();
        let mut node_types: Vec<usize> = vec![0; n_leaves];
        let mut features: Vec<Vec<f32>> = leaf_vals.iter().map(|&v| vec![v]).collect();
        node_types.push(1);
        features.push(vec![0.5]);
        node_types.push(2);
        features.push(vec![1.0]);
        let inner = n_leaves;
        let root = n_leaves + 1;
        let mut edges: Vec<(usize, usize)> = (0..n_leaves).map(|i| (i, inner)).collect();
        edges.push((inner, root));
        TypedGraph { node_types, features, edges, root }
    }

    #[test]
    fn validate_catches_bad_graphs() {
        let cfg = GnnConfig { hidden: 8, feature_dims: vec![1, 1, 1], readout_hidden: 8 };
        let model = GnnModel::new(cfg, 1).unwrap();
        let mut g = chain_graph(&[1.0, 2.0]);
        g.edges.push((3, 0)); // backward edge
        assert!(model.predict(&g).is_err());
        let mut g2 = chain_graph(&[1.0]);
        g2.features[0] = vec![1.0, 2.0]; // wrong dim
        assert!(model.predict(&g2).is_err());
    }

    #[test]
    fn learns_leaf_sum_task() {
        let mut rng = Rng::seed(5);
        let cfg = GnnConfig { hidden: 16, feature_dims: vec![1, 1, 1], readout_hidden: 16 };
        let mut model = GnnModel::new(cfg, 5).unwrap();
        // Dataset: 3-leaf chains, runtime = exp of scaled sum (so log target
        // is linear in the sum).
        let data: Vec<(TypedGraph, f64)> = (0..128)
            .map(|_| {
                let leaves: Vec<f32> = (0..3).map(|_| rng.range(0.1..1.0) as f32).collect();
                let sum: f32 = leaves.iter().sum();
                (chain_graph(&leaves), (5.0 + 2.0 * sum as f64).exp())
            })
            .collect();
        let targets: Vec<f64> = data.iter().map(|(_, t)| *t).collect();
        model.fit_target_norm(&targets).unwrap();
        let adam = AdamConfig { lr: 3e-3, ..AdamConfig::default() };
        for _epoch in 0..60 {
            for chunk in data.chunks(16) {
                let graphs: Vec<&TypedGraph> = chunk.iter().map(|(g, _)| g).collect();
                let ts: Vec<f64> = chunk.iter().map(|(_, t)| *t).collect();
                model.train_batch(&graphs, &ts, &adam, 1.0).unwrap();
            }
        }
        // Evaluate Q-error on fresh graphs.
        let mut max_q = 1.0f64;
        for _ in 0..32 {
            let leaves: Vec<f32> = (0..3).map(|_| rng.range(0.1..1.0) as f32).collect();
            let sum: f32 = leaves.iter().sum();
            let truth = (5.0 + 2.0 * sum as f64).exp();
            let pred = model.predict(&chain_graph(&leaves)).unwrap();
            let q = (pred / truth).max(truth / pred);
            max_q = max_q.max(q);
        }
        assert!(max_q < 1.6, "GNN failed to learn leaf-sum task: max Q-error {max_q}");
    }

    #[test]
    fn exec_mode_parses_and_rejects() {
        assert_eq!(GnnExecMode::parse("batched"), Ok(GnnExecMode::Batched));
        assert_eq!(GnnExecMode::parse(" Level "), Ok(GnnExecMode::Batched));
        assert_eq!(GnnExecMode::parse("node-at-a-time"), Ok(GnnExecMode::NodeAtATime));
        assert_eq!(GnnExecMode::parse("reference"), Ok(GnnExecMode::NodeAtATime));
        let err = GnnExecMode::parse("fast").unwrap_err();
        assert!(err.contains("batched") && err.contains("node-at-a-time"), "lists options: {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GnnConfig { hidden: 8, feature_dims: vec![1, 1, 1], readout_hidden: 8 };
        let m1 = GnnModel::new(cfg.clone(), 9).unwrap();
        let m2 = GnnModel::new(cfg, 9).unwrap();
        let g = chain_graph(&[0.3, 0.6]);
        assert_eq!(m1.predict(&g).unwrap(), m2.predict(&g).unwrap());
    }

    #[test]
    fn serde_round_trip() {
        let cfg = GnnConfig { hidden: 8, feature_dims: vec![1, 1, 1], readout_hidden: 8 };
        let model = GnnModel::new(cfg, 11).unwrap();
        let g = chain_graph(&[0.2, 0.4, 0.8]);
        let before = model.predict(&g).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let mut loaded: GnnModel = serde_json::from_str(&json).unwrap();
        loaded.rebuild_after_load();
        assert!((loaded.predict(&g).unwrap() - before).abs() < 1e-9);
    }

    #[test]
    fn param_count_positive_and_stable() {
        let cfg = GnnConfig { hidden: 8, feature_dims: vec![2, 3], readout_hidden: 4 };
        let model = GnnModel::new(cfg, 2).unwrap();
        // encoders: (2*8+8)+(3*8+8) = 56; updaters (two layers each):
        // 2×((16*8+8)+(8*8+8)) = 416; readout: (8*4+4)+(4*1+1) = 41.
        assert_eq!(model.param_count(), 56 + 416 + 41);
    }
}
