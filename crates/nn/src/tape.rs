//! Reverse-mode automatic differentiation over a per-sample tape.
//!
//! The tape holds a closed set of operations ([`Op`]) — exactly those the
//! GRACEFUL model needs. Forward values are computed eagerly as nodes are
//! pushed; [`Tape::backward`] walks the tape in reverse, accumulating
//! gradients into tape-local buffers and, for [`Op::Param`] leaves, into the
//! shared [`ParamStore`] gradient buffers.
//!
//! Gradient correctness is verified against central finite differences in
//! the tests below (and again end-to-end in `mlp`/`gnn` tests).

use crate::mlp::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Variable handle on a tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarId(pub usize);

/// Tape operations.
#[derive(Debug, Clone)]
pub enum Op {
    /// Constant input (no gradient).
    Input,
    /// Trainable parameter (gradient accumulates into the store).
    Param(ParamId),
    /// Matrix product `a · b`.
    MatMul(VarId, VarId),
    /// `a + b` with `b` a `1×c` row broadcast over `a`'s rows (bias add).
    AddRow(VarId, VarId),
    /// Element-wise sum of two same-shape variables.
    Add(VarId, VarId),
    /// Leaky ReLU with slope `alpha` for negative inputs.
    LeakyRelu(VarId, f32),
    /// Column-wise concatenation of two row-compatible variables.
    ConcatCols(VarId, VarId),
    /// Mean over the rows of each input variable (all `1×c`), i.e. the
    /// child-state aggregation of the GNN. Empty input list is invalid.
    MeanRows(Vec<VarId>),
    /// Sum over the rows of each input variable (all `1×c`). Cost is
    /// additive, so sum aggregation is the natural child-state reduction for
    /// a cost model (mean dilutes counts).
    SumRows(Vec<VarId>),
    /// Row gather: output row `i` is input row `rows[i]` (rows may repeat).
    /// The adjoint scatter-adds gradients back in output-row order, so a row
    /// gathered twice accumulates its two gradient contributions in a pinned
    /// order.
    GatherRows(VarId, Vec<usize>),
    /// Segment sum over the input's rows with a **pinned in-order
    /// reduction** (see [`crate::tensor::Tensor::segment_sum`]): output row
    /// `s` is the sum of input rows `r` with `segments[r] == s`, accumulated
    /// in ascending `r`. The batched, N×c generalization of [`Op::SumRows`].
    SegmentSum(VarId, Vec<usize>, usize),
}

struct Node {
    op: Op,
    value: Tensor,
}

/// A gradient tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    pub fn new() -> Self {
        Tape { nodes: Vec::with_capacity(256) }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a variable.
    pub fn value(&self, v: VarId) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Push a constant input.
    pub fn input(&mut self, t: Tensor) -> VarId {
        self.push(Op::Input, t)
    }

    /// Push a parameter leaf (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, p: ParamId) -> VarId {
        self.push(Op::Param(p), store.value(p).clone())
    }

    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    pub fn add_row(&mut self, a: VarId, bias: VarId) -> VarId {
        let (x, b) = (self.value(a), self.value(bias));
        assert_eq!(b.rows, 1, "bias must be a row vector");
        assert_eq!(x.cols, b.cols, "bias width mismatch");
        let mut out = x.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += b.data[c];
            }
        }
        self.push(Op::AddRow(a, bias), out)
    }

    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let mut out = self.value(a).clone();
        out.add_assign(self.value(b));
        self.push(Op::Add(a, b), out)
    }

    pub fn leaky_relu(&mut self, a: VarId, alpha: f32) -> VarId {
        let mut out = self.value(a).clone();
        for x in out.data.iter_mut() {
            if *x < 0.0 {
                *x *= alpha;
            }
        }
        self.push(Op::LeakyRelu(a, alpha), out)
    }

    pub fn concat_cols(&mut self, a: VarId, b: VarId) -> VarId {
        let (x, y) = (self.value(a), self.value(b));
        assert_eq!(x.rows, y.rows, "concat row mismatch");
        let rows = x.rows;
        let cols = x.cols + y.cols;
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            data.extend_from_slice(&x.data[r * x.cols..(r + 1) * x.cols]);
            data.extend_from_slice(&y.data[r * y.cols..(r + 1) * y.cols]);
        }
        self.push(Op::ConcatCols(a, b), Tensor::from_vec(rows, cols, data))
    }

    pub fn mean_rows(&mut self, inputs: Vec<VarId>) -> VarId {
        assert!(!inputs.is_empty(), "mean of zero variables");
        let cols = self.value(inputs[0]).cols;
        let mut out = Tensor::zeros(1, cols);
        for &v in &inputs {
            let t = self.value(v);
            assert_eq!(t.rows, 1, "mean_rows expects row vectors");
            assert_eq!(t.cols, cols, "mean_rows width mismatch");
            out.add_assign(t);
        }
        out.scale_assign(1.0 / inputs.len() as f32);
        self.push(Op::MeanRows(inputs), out)
    }

    pub fn sum_rows(&mut self, inputs: Vec<VarId>) -> VarId {
        assert!(!inputs.is_empty(), "sum of zero variables");
        let cols = self.value(inputs[0]).cols;
        let mut out = Tensor::zeros(1, cols);
        for &v in &inputs {
            let t = self.value(v);
            assert_eq!(t.rows, 1, "sum_rows expects row vectors");
            assert_eq!(t.cols, cols, "sum_rows width mismatch");
            out.add_assign(t);
        }
        self.push(Op::SumRows(inputs), out)
    }

    /// Gather rows of `a` into a new `rows.len() × c` variable.
    pub fn gather_rows(&mut self, a: VarId, rows: Vec<usize>) -> VarId {
        let t = self.value(a);
        assert!(rows.iter().all(|&r| r < t.rows), "gather row out of bounds");
        let v = t.gather_rows(&rows);
        self.push(Op::GatherRows(a, rows), v)
    }

    /// Segment-sum the rows of `a` (one segment id per row) into
    /// `n_segments` output rows, each accumulated in input-row order.
    pub fn segment_sum(&mut self, a: VarId, segments: Vec<usize>, n_segments: usize) -> VarId {
        let t = self.value(a);
        assert_eq!(segments.len(), t.rows, "segment id per row required");
        assert!(segments.iter().all(|&s| s < n_segments), "segment id out of bounds");
        let v = t.segment_sum(&segments, n_segments);
        self.push(Op::SegmentSum(a, segments, n_segments), v)
    }

    fn push(&mut self, op: Op, value: Tensor) -> VarId {
        self.nodes.push(Node { op, value });
        VarId(self.nodes.len() - 1)
    }

    /// Back-propagate from `output` with gradient `seed` (same shape as the
    /// output), accumulating parameter gradients into `store`.
    pub fn backward(&self, output: VarId, seed: Tensor, store: &mut ParamStore) {
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        assert_eq!(seed.rows, self.nodes[output.0].value.rows);
        assert_eq!(seed.cols, self.nodes[output.0].value.cols);
        grads[output.0] = Some(seed);
        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(p) => store.grad_mut(*p).add_assign(&g),
                Op::MatMul(a, b) => {
                    let ga = g.matmul_transpose_b(&self.nodes[b.0].value);
                    let gb = self.nodes[a.0].value.transpose_a_matmul(&g);
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::AddRow(a, bias) => {
                    // Bias gradient: column sums of g.
                    let mut gb = Tensor::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            gb.data[c] += g.data[r * g.cols + c];
                        }
                    }
                    accumulate(&mut grads, bias.0, gb);
                    accumulate(&mut grads, a.0, g);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, a.0, g.clone());
                    accumulate(&mut grads, b.0, g);
                }
                Op::LeakyRelu(a, alpha) => {
                    let x = &self.nodes[a.0].value;
                    let mut ga = g;
                    for (gi, &xi) in ga.data.iter_mut().zip(&x.data) {
                        if xi < 0.0 {
                            *gi *= alpha;
                        }
                    }
                    accumulate(&mut grads, a.0, ga);
                }
                Op::ConcatCols(a, b) => {
                    let (ca, cb) = (self.nodes[a.0].value.cols, self.nodes[b.0].value.cols);
                    let rows = g.rows;
                    let mut ga = Tensor::zeros(rows, ca);
                    let mut gb = Tensor::zeros(rows, cb);
                    for r in 0..rows {
                        ga.data[r * ca..(r + 1) * ca]
                            .copy_from_slice(&g.data[r * (ca + cb)..r * (ca + cb) + ca]);
                        gb.data[r * cb..(r + 1) * cb]
                            .copy_from_slice(&g.data[r * (ca + cb) + ca..(r + 1) * (ca + cb)]);
                    }
                    accumulate(&mut grads, a.0, ga);
                    accumulate(&mut grads, b.0, gb);
                }
                Op::MeanRows(inputs) => {
                    let mut share = g.clone();
                    share.scale_assign(1.0 / inputs.len() as f32);
                    for &v in inputs {
                        accumulate(&mut grads, v.0, share.clone());
                    }
                }
                Op::SumRows(inputs) => {
                    for &v in inputs {
                        accumulate(&mut grads, v.0, g.clone());
                    }
                }
                Op::GatherRows(a, rows) => {
                    let src = &self.nodes[a.0].value;
                    let mut ga = Tensor::zeros(src.rows, src.cols);
                    ga.scatter_add_rows(rows, &g);
                    accumulate(&mut grads, a.0, ga);
                }
                Op::SegmentSum(a, segments, _) => {
                    // Row r's gradient is the gradient of its segment's
                    // output row.
                    accumulate(&mut grads, a.0, g.gather_rows(segments));
                }
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, g: Tensor) {
    match &mut grads[idx] {
        Some(existing) => existing.add_assign(&g),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::ParamStore;
    use graceful_common::rng::Rng;

    /// Finite-difference gradient check for a scalar-output function built
    /// on the tape.
    fn check_param_gradient<F>(build: F, param_shape: (usize, usize))
    where
        F: Fn(&mut Tape, &ParamStore, ParamId) -> VarId,
    {
        let mut rng = Rng::seed(42);
        let mut store = ParamStore::new(7);
        let p = store.alloc(param_shape.0, param_shape.1, &mut Rng::seed(1));
        // Randomize parameter values.
        for v in store.value_mut_for_test(p).data.iter_mut() {
            *v = rng.normal(0.0, 1.0) as f32;
        }
        // Analytic gradient.
        let mut tape = Tape::new();
        let out = build(&mut tape, &store, p);
        assert_eq!(tape.value(out).len(), 1, "gradient check needs scalar output");
        store.zero_grad();
        tape.backward(out, Tensor::from_vec(1, 1, vec![1.0]), &mut store);
        let analytic = store.grad(p).clone();
        // Numeric gradient.
        let eps = 1e-3f32;
        for i in 0..analytic.len() {
            let orig = store.value(p).data[i];
            store.value_mut_for_test(p).data[i] = orig + eps;
            let mut t1 = Tape::new();
            let o1 = build(&mut t1, &store, p);
            let f1 = t1.value(o1).data[0];
            store.value_mut_for_test(p).data[i] = orig - eps;
            let mut t2 = Tape::new();
            let o2 = build(&mut t2, &store, p);
            let f2 = t2.value(o2).data[0];
            store.value_mut_for_test(p).data[i] = orig;
            let numeric = (f1 - f2) / (2.0 * eps);
            let a = analytic.data[i];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "grad mismatch at {i}: analytic={a}, numeric={numeric}"
            );
        }
    }

    #[test]
    fn matmul_gradient() {
        check_param_gradient(
            |tape, store, p| {
                let x = tape.input(Tensor::row(&[0.5, -1.5, 2.0]));
                let w = tape.param(store, p);
                let y = tape.matmul(x, w); // 1x1
                y
            },
            (3, 1),
        );
    }

    #[test]
    fn full_layer_gradient() {
        check_param_gradient(
            |tape, store, p| {
                let x = tape.input(Tensor::row(&[0.3, 0.7]));
                let w = tape.param(store, p);
                let h = tape.matmul(x, w); // 1x2
                let a = tape.leaky_relu(h, 0.01);
                let ones = tape.input(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
                tape.matmul(a, ones) // 1x1 scalar
            },
            (2, 2),
        );
    }

    #[test]
    fn concat_and_mean_gradient() {
        check_param_gradient(
            |tape, store, p| {
                let w = tape.param(store, p); // 1x2 used as two row vectors via concat
                let x = tape.input(Tensor::row(&[1.0, -2.0]));
                let c = tape.concat_cols(w, x); // 1x4
                let m = tape.mean_rows(vec![c]); // identity mean
                let ones = tape.input(Tensor::from_vec(4, 1, vec![1.0; 4]));
                tape.matmul(m, ones)
            },
            (1, 2),
        );
    }

    #[test]
    fn add_row_bias_gradient() {
        check_param_gradient(
            |tape, store, p| {
                let x = tape.input(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
                let b = tape.param(store, p); // 1x2 bias broadcast over 2 rows
                let y = tape.add_row(x, b);
                let act = tape.leaky_relu(y, 0.1);
                let ones_r = tape.input(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
                let col = tape.matmul(act, ones_r); // 2x1
                let ones_l = tape.input(Tensor::from_vec(1, 2, vec![1.0, 1.0]));
                tape.matmul(ones_l, col) // 1x1
            },
            (1, 2),
        );
    }

    #[test]
    fn gather_rows_gradient_with_repeats() {
        // A repeated row must accumulate both gradient contributions.
        check_param_gradient(
            |tape, store, p| {
                let w = tape.param(store, p); // 2x2
                let g = tape.gather_rows(w, vec![1, 0, 1]); // 3x2, row 1 twice
                let scale =
                    tape.input(Tensor::from_vec(3, 2, vec![1.0, -0.5, 2.0, 0.25, -1.5, 3.0]));
                // Elementwise weight via leaky on sums is awkward; instead
                // reduce with a matmul chain to a scalar.
                let c = tape.concat_cols(g, scale); // 3x4
                let ones_r = tape.input(Tensor::from_vec(4, 1, vec![1.0, 2.0, -1.0, 0.5]));
                let col = tape.matmul(c, ones_r); // 3x1
                let ones_l = tape.input(Tensor::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
                tape.matmul(ones_l, col) // 1x1
            },
            (2, 2),
        );
    }

    #[test]
    fn segment_sum_gradient() {
        check_param_gradient(
            |tape, store, p| {
                let w = tape.param(store, p); // 4x2
                let s = tape.segment_sum(w, vec![1, 0, 1, 1], 2); // 2x2
                let a = tape.leaky_relu(s, 0.1);
                let ones_r = tape.input(Tensor::from_vec(2, 1, vec![1.0, -1.0]));
                let col = tape.matmul(a, ones_r); // 2x1
                let ones_l = tape.input(Tensor::from_vec(1, 2, vec![2.0, 1.0]));
                tape.matmul(ones_l, col) // 1x1
            },
            (4, 2),
        );
    }

    #[test]
    fn segment_sum_matches_sum_rows_bitwise() {
        // The batched op must reproduce the per-node SumRows chains exactly.
        let vals: Vec<f32> = (0..12).map(|i| ((i * 39916801usize) as f32).sqrt()).collect();
        let mut tape = Tape::new();
        let m = tape.input(Tensor::from_vec(4, 3, vals.clone()));
        let seg = tape.segment_sum(m, vec![0, 1, 1, 1], 2);
        let rows: Vec<VarId> =
            (0..4).map(|r| tape.input(Tensor::row(&vals[r * 3..(r + 1) * 3]))).collect();
        let s0 = tape.sum_rows(vec![rows[0]]);
        let s1 = tape.sum_rows(vec![rows[1], rows[2], rows[3]]);
        assert_eq!(tape.value(seg).row_slice(0), tape.value(s0).data.as_slice());
        assert_eq!(
            tape.value(seg).row_slice(1).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            tape.value(s1).data.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mean_rows_averages() {
        let mut tape = Tape::new();
        let a = tape.input(Tensor::row(&[2.0, 4.0]));
        let b = tape.input(Tensor::row(&[4.0, 8.0]));
        let m = tape.mean_rows(vec![a, b]);
        assert_eq!(tape.value(m).data, vec![3.0, 6.0]);
    }

    #[test]
    fn shared_variable_grads_accumulate() {
        // f(w) = w·w_fixed + w·w_fixed (same w used twice) — gradient doubles.
        let mut store = ParamStore::new(3);
        let p = store.alloc(1, 1, &mut Rng::seed(2));
        store.value_mut_for_test(p).data[0] = 1.5;
        let mut tape = Tape::new();
        let w = tape.param(&store, p);
        let double = tape.add(w, w);
        store.zero_grad();
        tape.backward(double, Tensor::from_vec(1, 1, vec![1.0]), &mut store);
        assert_eq!(store.grad(p).data[0], 2.0);
    }
}
