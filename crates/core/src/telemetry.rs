//! Model-aware execution telemetry and the flight-record → training-label
//! on-ramp.
//!
//! `graceful-exec`'s [`analyze`](graceful_exec::analyze) layer scores the
//! *per-operator* estimates it can see (cardinality annotations, the
//! closed-form cost prior). This module adds the half only the model layer
//! can provide:
//!
//! * [`run_with_model`] — predict a query's cost with a loaded
//!   [`GracefulModel`] *before* running it, execute, and score the
//!   prediction: the q-error lands in the registry histogram
//!   `est.cost.qerror.query`, and when the flight recorder is enabled the
//!   prediction rides along inside the query's [`FlightRecord`]
//!   (`model_pred_ns` / `model_q`).
//! * [`labels_from_flight`] — the online-learning on-ramp: convert recorded
//!   flight records back into fresh [`LabeledQuery`] rows by joining on the
//!   stable plan fingerprint, so production traffic recorded via
//!   `GRACEFUL_FLIGHT` can re-enter the training corpus.

use crate::corpus::LabeledQuery;
use crate::model::GracefulModel;
use graceful_card::CardEstimator;
use graceful_common::metrics::q_error;
use graceful_common::Result;
use graceful_exec::{QueryRun, Session};
use graceful_obs::flight::{self, FlightRecord};
use graceful_obs::registry::histogram;
use graceful_plan::{Plan, QuerySpec};
use graceful_storage::Database;

/// A model-scored query execution: the run, the pre-execution prediction,
/// its q-error against the simulated truth, and the full
/// [`FlightRecord`] (render with `FlightRecord::render_analyze()` for
/// `explain analyze` output).
#[derive(Debug, Clone)]
pub struct ModelRun {
    pub run: QueryRun,
    /// The model's whole-query cost prediction, in nanoseconds, made
    /// *before* execution.
    pub predicted_ns: f64,
    /// `q_error(predicted_ns, run.runtime_ns)`.
    pub q: f64,
    /// The predicted-vs-actual record for this run, model prediction
    /// included.
    pub record: FlightRecord,
}

/// Annotate `plan` with `estimator`, predict its cost with `model`, then
/// execute it through `session` and score the prediction.
///
/// The prediction happens strictly before execution (this is the deployment
/// scenario — the model never sees the truth it is scored against), and the
/// q-error is recorded into the registry histogram `est.cost.qerror.query`.
/// When the flight recorder is enabled the prediction is staged so the
/// executor's own recording hook embeds it in the globally recorded copy of
/// this query's record; the returned [`ModelRun::record`] always carries it.
pub fn run_with_model(
    session: &Session,
    db: &Database,
    model: &GracefulModel,
    spec: &QuerySpec,
    plan: &Plan,
    estimator: &dyn CardEstimator,
    seed: u64,
) -> Result<ModelRun> {
    let mut annotated = plan.clone();
    estimator.annotate(&mut annotated)?;
    let predicted_ns = model.predict(db, spec, &annotated, estimator)?;
    if flight::enabled() {
        flight::stage_prediction(predicted_ns);
    }
    let run = session.run(db, &annotated, seed)?;
    let q = q_error(predicted_ns, run.runtime_ns);
    histogram("est.cost.qerror.query").record(q);
    let record =
        graceful_exec::flight_record(&annotated, session.config(), &run, seed, Some(predicted_ns));
    Ok(ModelRun { run, predicted_ns, q, record })
}

/// Convert flight records back into labelled training rows by joining on
/// the stable plan fingerprint: each record whose `plan` matches a catalog
/// entry yields a fresh [`LabeledQuery`] with the *recorded* runtime,
/// cardinalities and UDF volume as labels. Records with no catalog match
/// (or a stale catalog whose plan shape drifted) are skipped — the
/// fingerprint covers the full plan structure, so a match guarantees the
/// per-op arrays line up.
///
/// This is the ROADMAP's "feed measured work back as fresh training labels"
/// on-ramp: run production queries under `GRACEFUL_FLIGHT`, parse the JSONL
/// with `flight::parse_jsonl`, and append the result of this function to
/// the training corpus.
pub fn labels_from_flight(catalog: &[LabeledQuery], records: &[FlightRecord]) -> Vec<LabeledQuery> {
    let fingerprints: Vec<String> = catalog.iter().map(|q| q.plan.fingerprint_hex()).collect();
    let mut out = Vec::new();
    for rec in records {
        let Some(pos) = fingerprints.iter().position(|fp| *fp == rec.plan) else {
            continue;
        };
        let template = &catalog[pos];
        if rec.ops.len() != template.plan.ops.len() {
            continue;
        }
        let mut labelled = template.clone();
        labelled.runtime_ns = rec.runtime_ns;
        labelled.udf_input_rows = rec.udf_rows as usize;
        labelled.udf_work_ns =
            rec.ops.iter().filter(|o| o.kind.starts_with("UDF")).map(|o| o.work).sum();
        for (op, recorded) in labelled.plan.ops.iter_mut().zip(rec.ops.iter()) {
            op.actual_out_rows = recorded.rows as f64;
        }
        out.push(labelled);
    }
    out
}
