//! Shared experiment harness: leave-one-out training/evaluation and the
//! advisor end-to-end runner. The bench targets (one per paper table/figure)
//! are thin printers over these functions.

use crate::advisor::{PullUpAdvisor, Strategy};
use crate::baselines::{FlatGraphBaseline, GraphGraphBaseline};
use crate::corpus::{DatasetCorpus, LabeledQuery};
use crate::featurize::Featurizer;
use crate::model::{GracefulModel, TrainOptions};
use graceful_card::{ActualCard, CardEstimator, DataDrivenCard, NaiveCard, SamplingCard};
use graceful_common::config::ScaleConfig;
use graceful_common::metrics::QErrorSummary;
use graceful_common::Result;
use graceful_exec::Session;
use graceful_plan::{build_plan, UdfPlacement, UdfUsage};
use graceful_storage::Database;

/// The cardinality-annotation ladder of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    Actual,
    DataDriven,
    Sampling,
    Naive,
}

impl EstimatorKind {
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::Actual,
        EstimatorKind::DataDriven,
        EstimatorKind::Sampling,
        EstimatorKind::Naive,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EstimatorKind::Actual => "Actual",
            EstimatorKind::DataDriven => "DeepDB-like",
            EstimatorKind::Sampling => "WanderJoin-like",
            EstimatorKind::Naive => "DuckDB-like",
        }
    }

    /// Instantiate the estimator over a database.
    pub fn build<'a>(self, db: &'a Database, seed: u64) -> Box<dyn CardEstimator + 'a> {
        match self {
            EstimatorKind::Actual => Box::new(ActualCard::new(db)),
            EstimatorKind::DataDriven => Box::new(DataDrivenCard::build(db, seed)),
            EstimatorKind::Sampling => Box::new(SamplingCard::new(db, 100, seed)),
            EstimatorKind::Naive => Box::new(NaiveCard::new(db)),
        }
    }
}

/// Train GRACEFUL on a set of corpora with the scale-config hyper-parameters.
pub fn train_graceful(
    corpora: &[DatasetCorpus],
    cfg: &ScaleConfig,
    featurizer: Featurizer,
) -> GracefulModel {
    let mut model =
        GracefulModel::new(featurizer, cfg.hidden, cfg.seed).expect("valid GNN architecture");
    let refs: Vec<&DatasetCorpus> = corpora.iter().collect();
    let tcfg = TrainOptions::new()
        .epochs(cfg.epochs)
        .seed(cfg.seed)
        .build_with_env()
        .expect("invalid GRACEFUL_* configuration");
    model.train(&refs, &tcfg).expect("training succeeds on non-empty corpora");
    model
}

/// One cross-validation fold: the model and the held-out corpus indices.
pub struct Fold {
    pub model: GracefulModel,
    pub test_indices: Vec<usize>,
}

/// Grouped cross-validation over the corpora.
///
/// The paper runs leave-one-out over 20 databases (20 trainings). At
/// reduced scale we partition the datasets into `cfg.folds` groups; each
/// group's model is trained on all *other* datasets and evaluated zero-shot
/// on every dataset in the group, so all 20 datasets are still evaluated
/// unseen. `GRACEFUL_FOLDS=20` recovers exact leave-one-out. Fold trainings
/// run on the `GRACEFUL_THREADS` morsel pool (one fold per morsel; every
/// fold seeds its own model, so results are pool-size independent).
pub fn cross_validate(
    corpora: &[DatasetCorpus],
    cfg: &ScaleConfig,
    featurizer: Featurizer,
) -> Vec<Fold> {
    let n = corpora.len();
    let folds = cfg.folds.clamp(1, n);
    let groups: Vec<Vec<usize>> =
        (0..folds).map(|f| (0..n).filter(|i| i % folds == f).collect()).collect();
    let pool = Session::from_env().expect("invalid GRACEFUL_* configuration").pool();
    pool.ordered_map(&groups, |f, group| {
        let train: Vec<&DatasetCorpus> = corpora
            .iter()
            .enumerate()
            .filter(|(i, _)| !group.contains(i))
            .map(|(_, c)| c)
            .collect();
        let mut model = GracefulModel::new(featurizer, cfg.hidden, cfg.seed + f as u64)
            .expect("valid GNN architecture");
        let tcfg = TrainOptions::new()
            .epochs(cfg.epochs)
            .seed(cfg.seed)
            .build_with_env()
            .expect("invalid GRACEFUL_* configuration");
        // A single-fold setup has no training partner; train on the
        // test group itself (degenerate but still useful smoke mode).
        if train.is_empty() {
            let all: Vec<&DatasetCorpus> = corpora.iter().collect();
            model.train(&all, &tcfg).expect("training succeeds");
        } else {
            model.train(&train, &tcfg).expect("training succeeds");
        }
        Fold { model, test_indices: group.clone() }
    })
}

/// One evaluated query.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    pub dataset: String,
    pub predicted_ns: f64,
    pub actual_ns: f64,
    pub position: &'static str,
    pub has_udf: bool,
    /// COMP-node count of the UDF graph (Figure 6 A bins); 0 for non-UDF.
    pub comp_nodes: usize,
    pub branches: usize,
    pub loops: usize,
    /// Q-error of the cardinality estimate at the top (pre-aggregate) node.
    pub card_q_top: f64,
}

impl EvalRecord {
    pub fn q_error(&self) -> f64 {
        graceful_common::metrics::q_error(self.predicted_ns, self.actual_ns)
    }
}

/// Evaluate an arbitrary predictor over a corpus with a given annotation
/// method. The predictor receives the estimator-annotated plan.
pub fn evaluate_with<F>(
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    seed: u64,
    mut predict: F,
) -> Vec<EvalRecord>
where
    F: FnMut(
        &DatasetCorpus,
        &LabeledQuery,
        &graceful_plan::Plan,
        &dyn CardEstimator,
    ) -> Result<f64>,
{
    let est = kind.build(&corpus.db, seed);
    let mut out = Vec::with_capacity(corpus.queries.len());
    for q in &corpus.queries {
        let mut plan = q.plan.clone();
        if est.annotate(&mut plan).is_err() {
            continue;
        }
        let pred = match predict(corpus, q, &plan, est.as_ref()) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let top = plan.ops[plan.root].children[0];
        let card_q_top = graceful_common::metrics::q_error(
            plan.ops[top].est_out_rows.max(1.0),
            plan.ops[top].actual_out_rows.max(1.0),
        );
        let (comp_nodes, branches, loops) = match &q.spec.udf {
            Some(u) => {
                // COMP count from the default DAG (cheap recomputation).
                let dag = graceful_cfg::build_dag(
                    &u.def,
                    &[],
                    graceful_storage::DataType::Float,
                    graceful_cfg::DagConfig::default(),
                );
                (dag.comp_count(), u.def.branch_count(), u.def.loop_count())
            }
            None => (0, 0, 0),
        };
        out.push(EvalRecord {
            dataset: corpus.name.clone(),
            predicted_ns: pred,
            actual_ns: q.runtime_ns,
            position: if q.has_udf() && q.spec.udf_usage == UdfUsage::Filter {
                q.position_label()
            } else {
                "n/a"
            },
            has_udf: q.has_udf(),
            comp_nodes,
            branches,
            loops,
            card_q_top,
        });
    }
    out
}

/// Evaluate the GRACEFUL model over a corpus.
pub fn evaluate_model(
    model: &GracefulModel,
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    seed: u64,
) -> Vec<EvalRecord> {
    evaluate_with(corpus, kind, seed, |c, q, plan, est| model.predict(&c.db, &q.spec, plan, est))
}

/// Evaluate the Flat+Graph baseline.
pub fn evaluate_flat(
    model: &FlatGraphBaseline,
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    seed: u64,
) -> Vec<EvalRecord> {
    evaluate_with(corpus, kind, seed, |c, q, plan, est| model.predict(&c.db, &q.spec, plan, est))
}

/// Evaluate the Graph+Graph baseline.
pub fn evaluate_graphgraph(
    model: &GraphGraphBaseline,
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    seed: u64,
) -> Vec<EvalRecord> {
    evaluate_with(corpus, kind, seed, |c, q, plan, est| model.predict(&c.db, &q.spec, plan, est))
}

/// Convenience: Q-error summary under actual cardinalities (doc example).
pub fn evaluate_actual(model: &GracefulModel, corpus: &DatasetCorpus) -> QErrorSummary {
    let recs = evaluate_model(model, corpus, EstimatorKind::Actual, 0);
    summarize(&recs, |r| r.has_udf)
}

/// Summarize the Q-errors of the records matching `filter`.
pub fn summarize<F: Fn(&EvalRecord) -> bool>(records: &[EvalRecord], filter: F) -> QErrorSummary {
    let qs: Vec<f64> = records.iter().filter(|r| filter(r)).map(EvalRecord::q_error).collect();
    if qs.is_empty() {
        return QErrorSummary { median: f64::NAN, p95: f64::NAN, p99: f64::NAN, count: 0 };
    }
    QErrorSummary::from_q_errors(&qs)
}

/// Per-query advisor outcome (Exp 5).
#[derive(Debug, Clone)]
pub struct AdvisorOutcome {
    pub pulled_up: bool,
    pub pushdown_ns: f64,
    pub pullup_ns: f64,
    pub chosen_ns: f64,
    /// Wall-clock seconds spent deciding (the "optimization overhead").
    pub decide_seconds: f64,
}

impl AdvisorOutcome {
    pub fn optimal_ns(&self) -> f64 {
        self.pushdown_ns.min(self.pullup_ns)
    }

    /// A pull-up that made the query slower.
    pub fn is_false_positive(&self) -> bool {
        self.pulled_up && self.pullup_ns > self.pushdown_ns
    }
}

/// Run the advisor over every advisable query of a corpus, with the engine
/// configured from the `GRACEFUL_*` environment defaults (experiment-harness
/// entry point: **panics** on an invalid environment — use
/// [`run_advisor_in`] to handle configuration errors as values).
///
/// Ground-truth runtimes for both placements come from real execution; the
/// "Cost" strategy receives the query's actual UDF-filter selectivity.
pub fn run_advisor(
    model: &GracefulModel,
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    strategy: Strategy,
    seed: u64,
    max_queries: usize,
) -> Vec<AdvisorOutcome> {
    let session = Session::from_env().expect("invalid GRACEFUL_* configuration");
    run_advisor_in(&session, model, corpus, kind, strategy, seed, max_queries)
}

/// [`run_advisor`] with an explicit engine [`Session`].
#[allow(clippy::too_many_arguments)]
pub fn run_advisor_in(
    session: &Session,
    model: &GracefulModel,
    corpus: &DatasetCorpus,
    kind: EstimatorKind,
    strategy: Strategy,
    seed: u64,
    max_queries: usize,
) -> Vec<AdvisorOutcome> {
    let est = kind.build(&corpus.db, seed);
    let advisor = PullUpAdvisor::new(model);
    let exec = session.executor(&corpus.db);
    let mut out = Vec::new();
    for q in corpus.queries.iter().take(max_queries * 3) {
        if out.len() >= max_queries {
            break;
        }
        if !(q.has_udf() && q.spec.udf_usage == UdfUsage::Filter && !q.spec.joins.is_empty()) {
            continue;
        }
        let Ok(pd_plan) = build_plan(&q.spec, UdfPlacement::PushDown) else { continue };
        let Ok(pu_plan) = build_plan(&q.spec, UdfPlacement::PullUp) else { continue };
        let Ok(pd_run) = exec.run(&pd_plan, q.spec.id) else { continue };
        let Ok(pu_run) = exec.run(&pu_plan, q.spec.id) else { continue };
        // Actual UDF-filter selectivity for the Cost strategy.
        let known_sel = q
            .plan
            .udf_op()
            .map(|i| {
                let input = q.plan.ops[q.plan.ops[i].children[0]].actual_out_rows.max(1.0);
                (q.plan.ops[i].actual_out_rows / input).clamp(0.0, 1.0)
            })
            .unwrap_or(0.5);
        let started = std::time::Instant::now();
        let decision =
            match advisor.decide(&corpus.db, &q.spec, est.as_ref(), strategy, Some(known_sel)) {
                Ok(d) => d,
                Err(_) => continue,
            };
        let decide_seconds = started.elapsed().as_secs_f64();
        let chosen_ns = if decision.pull_up { pu_run.runtime_ns } else { pd_run.runtime_ns };
        out.push(AdvisorOutcome {
            pulled_up: decision.pull_up,
            pushdown_ns: pd_run.runtime_ns,
            pullup_ns: pu_run.runtime_ns,
            chosen_ns,
            decide_seconds,
        });
    }
    out
}

/// Aggregate advisor outcomes into the Table V metrics.
#[derive(Debug, Clone)]
pub struct AdvisorSummary {
    pub total_chosen_ns: f64,
    pub total_pushdown_ns: f64,
    pub total_optimal_ns: f64,
    pub total_speedup: f64,
    pub median_speedup: f64,
    pub false_positive_rate: f64,
    /// Slowdown introduced by bad pull-ups, relative to total runtime.
    pub fp_impact: f64,
    /// Advisor wall-clock relative to total (simulated) runtime.
    pub overhead_fraction: f64,
    pub n: usize,
}

pub fn summarize_advisor(outcomes: &[AdvisorOutcome]) -> AdvisorSummary {
    let n = outcomes.len();
    let total_chosen: f64 = outcomes.iter().map(|o| o.chosen_ns).sum();
    let total_pd: f64 = outcomes.iter().map(|o| o.pushdown_ns).sum();
    let total_opt: f64 = outcomes.iter().map(|o| o.optimal_ns()).sum();
    let speedups: Vec<f64> =
        outcomes.iter().map(|o| o.pushdown_ns / o.chosen_ns.max(1e-9)).collect();
    let fp = outcomes.iter().filter(|o| o.is_false_positive()).count();
    let fp_loss: f64 = outcomes
        .iter()
        .filter(|o| o.is_false_positive())
        .map(|o| o.pullup_ns - o.pushdown_ns)
        .sum();
    let decide_total: f64 = outcomes.iter().map(|o| o.decide_seconds).sum();
    AdvisorSummary {
        total_chosen_ns: total_chosen,
        total_pushdown_ns: total_pd,
        total_optimal_ns: total_opt,
        total_speedup: total_pd / total_chosen.max(1e-9),
        median_speedup: if speedups.is_empty() {
            1.0
        } else {
            graceful_common::metrics::median(&speedups)
        },
        false_positive_rate: if n > 0 { fp as f64 / n as f64 } else { 0.0 },
        fp_impact: fp_loss / total_chosen.max(1e-9),
        overhead_fraction: decide_total / (total_chosen * 1e-9).max(1e-9),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;

    fn cfg() -> ScaleConfig {
        ScaleConfig {
            data_scale: 0.02,
            queries_per_db: 16,
            epochs: 8,
            hidden: 12,
            ..ScaleConfig::default()
        }
    }

    #[test]
    fn leave_one_out_mini() {
        let cfg = cfg();
        let train = build_corpus("tpc_h", &cfg, 1).unwrap();
        let test = build_corpus("movielens", &cfg, 2).unwrap();
        let model = train_graceful(std::slice::from_ref(&train), &cfg, Featurizer::full());
        for kind in EstimatorKind::ALL {
            let recs = evaluate_model(&model, &test, kind, 3);
            assert!(!recs.is_empty(), "{:?} produced no records", kind);
            let s = summarize(&recs, |_| true);
            assert!(s.median.is_finite() && s.median >= 1.0);
        }
    }

    #[test]
    fn actual_cards_beat_naive_cards() {
        let cfg = cfg();
        let train = build_corpus("tpc_h", &cfg, 5).unwrap();
        let test = build_corpus("airline", &cfg, 6).unwrap();
        let model = train_graceful(std::slice::from_ref(&train), &cfg, Featurizer::full());
        let actual =
            summarize(&evaluate_model(&model, &test, EstimatorKind::Actual, 1), |r| r.has_udf);
        let naive =
            summarize(&evaluate_model(&model, &test, EstimatorKind::Naive, 1), |r| r.has_udf);
        // Card-est error at the top node must be worse for naive.
        let actual_card = summarize_card(&evaluate_model(&model, &test, EstimatorKind::Actual, 1));
        let naive_card = summarize_card(&evaluate_model(&model, &test, EstimatorKind::Naive, 1));
        assert!(actual_card <= naive_card + 1e-9, "{actual_card} vs {naive_card}");
        // Cost Q-error ordering usually follows; assert weakly (tiny scale).
        assert!(actual.median.is_finite() && naive.median.is_finite());
    }

    fn summarize_card(recs: &[EvalRecord]) -> f64 {
        let qs: Vec<f64> = recs.iter().map(|r| r.card_q_top).collect();
        graceful_common::metrics::median(&qs)
    }

    #[test]
    fn advisor_end_to_end_beats_or_matches_pushdown() {
        let cfg = cfg();
        let corpus = build_corpus("imdb", &cfg, 8).unwrap();
        let model = train_graceful(std::slice::from_ref(&corpus), &cfg, Featurizer::full());
        let outcomes = run_advisor(&model, &corpus, EstimatorKind::Actual, Strategy::Cost, 1, 8);
        if outcomes.is_empty() {
            return; // tiny corpus may lack advisable queries
        }
        let s = summarize_advisor(&outcomes);
        // With the Cost strategy and actual cards, the advisor should never
        // be much worse than always-push-down on aggregate.
        assert!(s.total_speedup > 0.8, "advisor badly regressed: speedup {}", s.total_speedup);
        assert!(s.total_optimal_ns <= s.total_chosen_ns + 1e-6);
    }
}
