//! The pull-up/push-down advisor (Section IV).
//!
//! The UDF filter's selectivity is unknowable before execution, so the
//! advisor performs **regret optimization**: it instantiates both candidate
//! plans (push-down and pull-up) at a ladder of assumed selectivities,
//! rescales all cardinalities above the UDF filter accordingly
//! ([`graceful_card::scale_above_udf`]), predicts each instance's cost with
//! the GRACEFUL model, and compares the resulting *cost distributions* with
//! one of three heuristics:
//!
//! * **UBC** (upper-bound cardinality) — compare costs at selectivity 1.0,
//! * **AuC** — compare the areas under the two cost curves (uniform prior
//!   over selectivities),
//! * **Conservative** — pull up only when the pull-up curve is below the
//!   push-down curve at *every* selectivity (no-regression guarantee).
//!
//! A fourth mode, **Cost**, uses a single known selectivity (the "actual
//! selectivity" rows of Table V).

use crate::model::GracefulModel;
use graceful_card::{scale_above_udf, CardEstimator};
use graceful_common::{GracefulError, Result};
use graceful_plan::{build_plan, QuerySpec, UdfPlacement, UdfUsage};
use graceful_storage::Database;

/// The selectivity ladder of Figure 4 (plus 1.0 for the UBC bound).
pub const SELECTIVITY_LADDER: [f64; 6] = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];

/// Decision strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Single cost estimate at a known (actual) selectivity.
    Cost,
    UpperBoundCardinality,
    AreaUnderCurve,
    Conservative,
}

impl Strategy {
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Cost => "GRACEFUL (Cost)",
            Strategy::UpperBoundCardinality => "GRACEFUL (UBC)",
            Strategy::AreaUnderCurve => "GRACEFUL (AuC)",
            Strategy::Conservative => "GRACEFUL (Conservative)",
        }
    }
}

/// Advisor output: the decision plus both cost distributions.
#[derive(Debug, Clone)]
pub struct AdvisorDecision {
    pub pull_up: bool,
    /// `(selectivity, predicted cost)` for the pull-up plan.
    pub pullup_costs: Vec<(f64, f64)>,
    /// `(selectivity, predicted cost)` for the push-down plan.
    pub pushdown_costs: Vec<(f64, f64)>,
}

/// The advisor: a GRACEFUL model plus a cardinality estimator.
pub struct PullUpAdvisor<'a> {
    pub model: &'a GracefulModel,
}

impl<'a> PullUpAdvisor<'a> {
    pub fn new(model: &'a GracefulModel) -> Self {
        PullUpAdvisor { model }
    }

    /// Predicted cost distribution of one placement across the ladder.
    fn cost_curve(
        &self,
        db: &Database,
        spec: &QuerySpec,
        placement: UdfPlacement,
        estimator: &dyn CardEstimator,
        sels: &[f64],
    ) -> Result<Vec<(f64, f64)>> {
        let mut base = build_plan(spec, placement)?;
        // Annotate without any execution feedback: the UDF hint defaults to
        // 0.5 and is immediately overridden per assumed selectivity.
        estimator.annotate(&mut base)?;
        let mut out = Vec::with_capacity(sels.len());
        for &sel in sels {
            let mut plan = base.clone();
            scale_above_udf(&mut plan, sel);
            let cost = self.model.predict(db, spec, &plan, estimator)?;
            out.push((sel, cost));
        }
        Ok(out)
    }

    /// Decide pull-up vs push-down for a UDF-filter query.
    ///
    /// `known_selectivity` is only consulted by [`Strategy::Cost`].
    pub fn decide(
        &self,
        db: &Database,
        spec: &QuerySpec,
        estimator: &dyn CardEstimator,
        strategy: Strategy,
        known_selectivity: Option<f64>,
    ) -> Result<AdvisorDecision> {
        if spec.udf.is_none() || spec.udf_usage != UdfUsage::Filter || spec.joins.is_empty() {
            return Err(GracefulError::InvalidPlan(
                "advisor requires a UDF-filter query with at least one join".into(),
            ));
        }
        let sels: Vec<f64> = match strategy {
            Strategy::Cost => {
                let s = known_selectivity.ok_or_else(|| {
                    GracefulError::Model("Cost strategy needs a known selectivity".into())
                })?;
                vec![s.clamp(0.0, 1.0)]
            }
            _ => SELECTIVITY_LADDER.to_vec(),
        };
        let pullup = self.cost_curve(db, spec, UdfPlacement::PullUp, estimator, &sels)?;
        let pushdown = self.cost_curve(db, spec, UdfPlacement::PushDown, estimator, &sels)?;
        let pull_up = match strategy {
            Strategy::Cost => pullup[0].1 < pushdown[0].1,
            Strategy::UpperBoundCardinality => {
                // Compare at the maximum selectivity (1.0 — last ladder entry).
                pullup.last().expect("non-empty").1 < pushdown.last().expect("non-empty").1
            }
            Strategy::AreaUnderCurve => {
                let a: f64 = pullup.iter().map(|(_, c)| c).sum();
                let b: f64 = pushdown.iter().map(|(_, c)| c).sum();
                a < b
            }
            Strategy::Conservative => {
                pullup.iter().zip(&pushdown).all(|((_, up), (_, down))| up < down)
            }
        };
        Ok(AdvisorDecision { pull_up, pullup_costs: pullup, pushdown_costs: pushdown })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use crate::featurize::Featurizer;
    use crate::model::TrainOptions;
    use graceful_card::ActualCard;
    use graceful_common::config::ScaleConfig;

    #[test]
    fn advisor_produces_distributions_and_decisions() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 16, ..ScaleConfig::default() };
        let c = build_corpus("imdb", &cfg, 11).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 12, 3).unwrap();
        model.train(&[&c], &TrainOptions::new().epochs(6).build().unwrap()).unwrap();
        let est = ActualCard::new(&c.db);
        let advisor = PullUpAdvisor::new(&model);
        let q = c
            .queries
            .iter()
            .find(|q| {
                q.has_udf() && q.spec.udf_usage == UdfUsage::Filter && !q.spec.joins.is_empty()
            })
            .expect("corpus has an advisable query");
        for strat in
            [Strategy::UpperBoundCardinality, Strategy::AreaUnderCurve, Strategy::Conservative]
        {
            let d = advisor.decide(&c.db, &q.spec, &est, strat, None).unwrap();
            assert_eq!(d.pullup_costs.len(), SELECTIVITY_LADDER.len());
            assert!(d.pullup_costs.iter().all(|(_, c)| c.is_finite() && *c > 0.0));
        }
        let d = advisor.decide(&c.db, &q.spec, &est, Strategy::Cost, Some(0.4)).unwrap();
        assert_eq!(d.pullup_costs.len(), 1);
    }

    #[test]
    fn conservative_is_most_reluctant() {
        // Conservative can only pull up when AuC would too (dominated curves
        // imply a smaller area).
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 20, ..ScaleConfig::default() };
        let c = build_corpus("tpc_h", &cfg, 13).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 12, 5).unwrap();
        model.train(&[&c], &TrainOptions::new().epochs(6).build().unwrap()).unwrap();
        let est = ActualCard::new(&c.db);
        let advisor = PullUpAdvisor::new(&model);
        for q in &c.queries {
            if !(q.has_udf() && q.spec.udf_usage == UdfUsage::Filter && !q.spec.joins.is_empty()) {
                continue;
            }
            let cons = advisor.decide(&c.db, &q.spec, &est, Strategy::Conservative, None).unwrap();
            let auc = advisor.decide(&c.db, &q.spec, &est, Strategy::AreaUnderCurve, None).unwrap();
            if cons.pull_up {
                assert!(auc.pull_up, "conservative pulled up but AuC did not");
            }
        }
    }

    #[test]
    fn rejects_non_advisable_queries() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 8, ..ScaleConfig::default() };
        let c = build_corpus("ssb", &cfg, 15).unwrap();
        let model = GracefulModel::new(Featurizer::full(), 8, 1).unwrap();
        let est = ActualCard::new(&c.db);
        let advisor = PullUpAdvisor::new(&model);
        let q = c.queries.iter().find(|q| !q.has_udf() || q.spec.joins.is_empty());
        if let Some(q) = q {
            assert!(advisor.decide(&c.db, &q.spec, &est, Strategy::AreaUnderCurve, None).is_err());
        }
    }
}
