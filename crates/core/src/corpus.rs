//! The benchmark corpus of Section V: databases × queries × runtimes.
//!
//! For each of the 20 databases, the builder generates SPJA+UDF queries
//! (filter and projection UDFs per Table II's mix plus <10% non-UDF
//! queries), applies each UDF's data-adaptation actions, picks a UDF
//! placement, executes the plan on the real engine and records the
//! simulated runtime and per-operator actual cardinalities — the exact
//! labelling pipeline the paper ran for 142 hours in DuckDB.

use graceful_common::config::ScaleConfig;
use graceful_common::rng::Rng;
use graceful_common::Result;
use graceful_exec::Session;
use graceful_plan::{build_plan, QueryGenerator, QuerySpec, UdfPlacement, UdfUsage};
use graceful_runtime::Pool;
use graceful_storage::datagen::{generate, schema, DATASET_NAMES};
use graceful_storage::Database;
use graceful_udf::generator::apply_adaptations;

/// One labelled query: spec, placement, executed plan, ground-truth runtime.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    pub spec: QuerySpec,
    pub placement: UdfPlacement,
    /// Plan with `actual_out_rows` filled by execution (estimates empty).
    pub plan: graceful_plan::Plan,
    /// Ground-truth simulated runtime in nanoseconds.
    pub runtime_ns: f64,
    /// Rows that entered the UDF operator (0 for non-UDF queries).
    pub udf_input_rows: usize,
    /// Work units spent in the UDF operator (the "UDF-only runtime" label
    /// used to train the split baselines).
    pub udf_work_ns: f64,
}

impl LabeledQuery {
    pub fn has_udf(&self) -> bool {
        self.spec.has_udf()
    }

    /// Placement label used by Table III's column groups.
    pub fn position_label(&self) -> &'static str {
        self.placement.label()
    }
}

/// A database plus its labelled workload.
#[derive(Debug)]
pub struct DatasetCorpus {
    pub name: String,
    pub db: Database,
    pub queries: Vec<LabeledQuery>,
    /// Queries skipped due to execution caps (kept for Table II accounting).
    pub skipped: usize,
}

impl DatasetCorpus {
    /// Total labelled runtime (the "Total Runtime Of Benchmark" of Table II).
    pub fn total_runtime_ns(&self) -> f64 {
        self.queries.iter().map(|q| q.runtime_ns).sum()
    }
}

/// Build the corpus for one named dataset (default workload mix) with the
/// engine configured from the `GRACEFUL_*` environment defaults.
pub fn build_corpus(dataset: &str, cfg: &ScaleConfig, seed: u64) -> Result<DatasetCorpus> {
    build_corpus_in(&Session::from_env()?, dataset, cfg, seed)
}

/// [`build_corpus`] with an explicit engine [`Session`] — the programmatic,
/// environment-free path.
pub fn build_corpus_in(
    session: &Session,
    dataset: &str,
    cfg: &ScaleConfig,
    seed: u64,
) -> Result<DatasetCorpus> {
    build_corpus_with_in(session, dataset, cfg, seed, QueryGenerator::default())
}

/// Build a corpus with a custom workload generator — used by Exp 3's
/// select-only workload (`SELECT udf(col) FROM table WHERE filter`).
pub fn build_corpus_with(
    dataset: &str,
    cfg: &ScaleConfig,
    seed: u64,
    qgen: QueryGenerator,
) -> Result<DatasetCorpus> {
    build_corpus_with_in(&Session::from_env()?, dataset, cfg, seed, qgen)
}

/// [`build_corpus_with`] with an explicit engine [`Session`].
pub fn build_corpus_with_in(
    session: &Session,
    dataset: &str,
    cfg: &ScaleConfig,
    seed: u64,
    qgen: QueryGenerator,
) -> Result<DatasetCorpus> {
    let mut db = generate(&schema(dataset), cfg.data_scale, seed);
    let mut rng = Rng::seed(seed ^ 0x51EE7);
    let mut queries = Vec::with_capacity(cfg.queries_per_db);
    let mut skipped = 0usize;
    let mut id = 0u64;
    while queries.len() < cfg.queries_per_db && id < (cfg.queries_per_db as u64) * 4 {
        id += 1;
        let spec = match qgen.generate(&db, seed.wrapping_mul(1000) + id, &mut rng) {
            Ok(s) => s,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        // Align the data with the generated UDF (Section V): mutates the
        // database, so later queries see the adapted data — matching the
        // paper's one-time benchmark preparation.
        if let Some(u) = &spec.udf {
            if apply_adaptations(&mut db, &u.adaptations).is_err() {
                skipped += 1;
                continue;
            }
        }
        let placements = graceful_plan::variants::valid_placements(&spec);
        let placement = *rng.choose(&placements);
        let mut plan = match build_plan(&spec, placement) {
            Ok(p) => p,
            Err(_) => {
                skipped += 1;
                continue;
            }
        };
        let exec = session.executor(&db);
        match exec.run_and_annotate(&mut plan, spec.id) {
            Ok(run) => {
                let udf_work = plan.udf_op().map(|i| run.op_work[i]).unwrap_or(0.0);
                queries.push(LabeledQuery {
                    spec,
                    placement,
                    plan,
                    runtime_ns: run.runtime_ns,
                    udf_input_rows: run.udf_input_rows,
                    udf_work_ns: udf_work,
                });
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(DatasetCorpus { name: dataset.to_string(), db, queries, skipped })
}

/// Build all 20 corpora (Figure 5 order) with the engine and pool sized
/// from the `GRACEFUL_*` environment defaults — the build is embarrassingly
/// parallel and dominated by query execution, the paper's 142-hour
/// bottleneck.
///
/// Experiment-harness entry point: **panics** on an invalid `GRACEFUL_*`
/// environment (a misconfigured experiment must fail loudly at startup).
/// Use [`build_all_corpora_in`] with a [`Session`] built from
/// [`graceful_exec::ExecOptions`] to handle configuration errors as values.
pub fn build_all_corpora(cfg: &ScaleConfig) -> Vec<DatasetCorpus> {
    let session = Session::from_env().expect("invalid GRACEFUL_* configuration");
    build_all_corpora_in(&session, cfg)
}

/// [`build_all_corpora`] with an explicit engine [`Session`] (its thread
/// budget also sizes the dataset pool).
pub fn build_all_corpora_in(session: &Session, cfg: &ScaleConfig) -> Vec<DatasetCorpus> {
    build_all_corpora_with(&session.pool(), session, cfg)
}

/// [`build_all_corpora`] on an explicit pool. Each dataset is one morsel and
/// its seed derives from its index, so the labels are bit-identical for any
/// pool size (the `scaling_threads` bench and the determinism suite pin
/// thread counts through this entry point); the engine itself follows the
/// environment defaults.
pub fn build_all_corpora_on(pool: &Pool, cfg: &ScaleConfig) -> Vec<DatasetCorpus> {
    let session = Session::from_env().expect("invalid GRACEFUL_* configuration");
    build_all_corpora_with(pool, &session, cfg)
}

fn build_all_corpora_with(pool: &Pool, session: &Session, cfg: &ScaleConfig) -> Vec<DatasetCorpus> {
    pool.ordered_map(&DATASET_NAMES, |i, name| {
        let seed = cfg.seed.wrapping_add((i as u64) * 7919);
        build_corpus_in(session, name, cfg, seed).expect("corpus build failed")
    })
}

/// Table II summary statistics over a set of corpora.
#[derive(Debug, Clone, Default)]
pub struct BenchmarkStats {
    pub n_queries: usize,
    pub n_udf_filter: usize,
    pub n_udf_projection: usize,
    pub n_non_udf: usize,
    pub n_databases: usize,
    pub total_runtime_hours: f64,
    pub max_joins: usize,
    pub max_filters: usize,
    pub max_branches: usize,
    pub max_loops: usize,
    pub min_ops: usize,
    pub max_ops: usize,
}

/// Compute Table II's rows.
pub fn benchmark_stats(corpora: &[DatasetCorpus]) -> BenchmarkStats {
    let mut s =
        BenchmarkStats { n_databases: corpora.len(), min_ops: usize::MAX, ..Default::default() };
    for c in corpora {
        for q in &c.queries {
            s.n_queries += 1;
            match (&q.spec.udf, q.spec.udf_usage) {
                (Some(u), UdfUsage::Filter) => {
                    s.n_udf_filter += 1;
                    s.max_branches = s.max_branches.max(u.def.branch_count());
                    s.max_loops = s.max_loops.max(u.def.loop_count());
                    s.min_ops = s.min_ops.min(u.def.op_count());
                    s.max_ops = s.max_ops.max(u.def.op_count());
                }
                (Some(u), UdfUsage::Projection) => {
                    s.n_udf_projection += 1;
                    s.max_branches = s.max_branches.max(u.def.branch_count());
                    s.max_loops = s.max_loops.max(u.def.loop_count());
                    s.min_ops = s.min_ops.min(u.def.op_count());
                    s.max_ops = s.max_ops.max(u.def.op_count());
                }
                (None, _) => s.n_non_udf += 1,
            }
            s.max_joins = s.max_joins.max(q.spec.joins.len());
            s.max_filters = s.max_filters.max(q.spec.filters.len());
        }
        s.total_runtime_hours += c.total_runtime_ns() * 1e-9 / 3600.0;
    }
    if s.min_ops == usize::MAX {
        s.min_ops = 0;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ScaleConfig {
        ScaleConfig { data_scale: 0.02, queries_per_db: 10, ..ScaleConfig::default() }
    }

    #[test]
    fn corpus_builds_and_labels() {
        let c = build_corpus("tpc_h", &tiny_cfg(), 1).unwrap();
        assert!(c.queries.len() >= 8, "got {} queries", c.queries.len());
        for q in &c.queries {
            assert!(q.runtime_ns > 0.0);
            // Actual cards recorded on every op.
            assert!(q.plan.ops.iter().all(|o| o.actual_out_rows >= 0.0));
            if q.has_udf() && q.spec.udf_usage == UdfUsage::Filter {
                assert!(q.plan.udf_op().is_some());
            }
        }
        // Most queries have UDFs (udf_prob = 0.9).
        let with_udf = c.queries.iter().filter(|q| q.has_udf()).count();
        assert!(with_udf * 2 > c.queries.len());
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus("imdb", &tiny_cfg(), 7).unwrap();
        let b = build_corpus("imdb", &tiny_cfg(), 7).unwrap();
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.runtime_ns, y.runtime_ns);
            assert_eq!(x.placement, y.placement);
        }
    }

    #[test]
    fn stats_cover_table2_fields() {
        let c = build_corpus("ssb", &tiny_cfg(), 3).unwrap();
        let s = benchmark_stats(std::slice::from_ref(&c));
        assert_eq!(s.n_databases, 1);
        assert_eq!(s.n_queries, c.queries.len());
        assert_eq!(s.n_queries, s.n_udf_filter + s.n_udf_projection + s.n_non_udf);
        assert!(s.max_joins <= 5);
        assert!(s.total_runtime_hours > 0.0);
    }
}
