//! The split baselines of Exp 1 and Exp 3.
//!
//! Both baselines decompose the cost as `query cost + UDF cost` with two
//! separately trained models (the paper splits the training workload the
//! same way):
//!
//! * **Flat+Graph** — the UDF is a *flat feature vector* (loop/branch/op/lib
//!   counts, the FlatVector approach of Ganapathi et al.) fed to a GBDT
//!   (XGBoost stand-in) that predicts per-tuple UDF cost, scaled by the
//!   estimated rows the UDF processes; the query side is GRACEFUL's query
//!   graph with the UDF as a black box.
//! * **Graph+Graph** — the UDF part of GRACEFUL's graph, isolated from the
//!   query, trained as a standalone GNN on UDF-only runtimes; query side as
//!   above.
//!
//! What both baselines miss — and what Exp 1/3 quantify — is the *joint*
//! signal: invocation overhead interacting with plan position, hit ratios
//! conditioned on pre-filters, and data-type conversion costs.

use crate::corpus::DatasetCorpus;
use crate::featurize::{feature_dims, log_mag, Featurizer};
use graceful_card::{ActualCard, CardEstimator, HitRatioEstimator};
use graceful_cfg::{build_dag, DagConfig};
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use graceful_gbdt::{Gbdt, GbdtConfig};
use graceful_nn::{AdamConfig, GnnConfig, GnnExecMode, GnnModel, TypedGraph};
use graceful_plan::{Plan, QuerySpec};
use graceful_storage::{DataType, Database};
use graceful_udf::ast::BinOp;
use graceful_udf::{GeneratedUdf, LibFn};

/// FlatVector featurization of a UDF: structural counts only.
pub fn flat_features(udf: &GeneratedUdf, input_rows: f64) -> Vec<f64> {
    let def = &udf.def;
    let mut f = Vec::with_capacity(8 + BinOp::ALL.len() + LibFn::COUNT);
    f.push(def.branch_count() as f64);
    f.push(def.loop_count() as f64);
    f.push(def.op_count() as f64);
    f.push(def.params.len() as f64);
    f.push(log_mag(input_rows) as f64);
    let mut ops = vec![0f64; BinOp::ALL.len()];
    let mut libs = vec![0f64; LibFn::COUNT];
    count_ops(&def.body, &mut ops, &mut libs);
    f.extend(ops);
    f.extend(libs);
    f
}

fn count_ops(body: &[graceful_udf::Stmt], ops: &mut [f64], libs: &mut [f64]) {
    use graceful_udf::Stmt;
    let count_expr = |e: &graceful_udf::Expr, ops: &mut [f64], libs: &mut [f64]| {
        let mut bs = Vec::new();
        e.bin_ops(&mut bs);
        for b in bs {
            ops[b.index()] += 1.0;
        }
        let mut ls = Vec::new();
        e.lib_calls(&mut ls);
        for l in ls {
            libs[l.index()] += 1.0;
        }
    };
    for s in body {
        match s {
            Stmt::Assign { expr, .. } | Stmt::Return(expr) => count_expr(expr, ops, libs),
            Stmt::If { cond, then_body, else_body } => {
                count_expr(cond, ops, libs);
                count_ops(then_body, ops, libs);
                count_ops(else_body, ops, libs);
            }
            Stmt::For { count, body, .. } => {
                count_expr(count, ops, libs);
                count_ops(body, ops, libs);
            }
            Stmt::While { cond, body } => {
                count_expr(cond, ops, libs);
                count_ops(body, ops, libs);
            }
        }
    }
}

/// The query-side model shared by both baselines: GRACEFUL's query graph
/// with the UDF reduced to a black box (ablation level 1), trained on
/// query-only runtimes (total minus UDF work).
#[derive(Debug, Clone)]
pub struct QuerySideModel {
    gnn: GnnModel,
}

impl QuerySideModel {
    pub fn train(
        corpora: &[&DatasetCorpus],
        epochs: usize,
        hidden: usize,
        seed: u64,
    ) -> Result<Self> {
        let config = GnnConfig { hidden, feature_dims: feature_dims(), readout_hidden: hidden };
        let mut gnn = GnnModel::new(config, seed)?;
        let fz = Featurizer::level(1);
        let mut samples: Vec<(TypedGraph, f64)> = Vec::new();
        for c in corpora {
            let est = ActualCard::new(&c.db);
            for q in &c.queries {
                let mut plan = q.plan.clone();
                est.annotate(&mut plan)?;
                let g = fz.featurize(&c.db, &q.spec, &plan, &est)?;
                let query_only = (q.runtime_ns - q.udf_work_ns).max(1.0);
                samples.push((g, query_only));
            }
        }
        train_gnn(&mut gnn, &mut samples, epochs, seed)?;
        Ok(QuerySideModel { gnn })
    }

    pub fn predict(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<f64> {
        let g = Featurizer::level(1).featurize(db, spec, plan, estimator)?;
        self.gnn.predict(&g)
    }
}

fn train_gnn(
    gnn: &mut GnnModel,
    samples: &mut [(TypedGraph, f64)],
    epochs: usize,
    seed: u64,
) -> Result<()> {
    if samples.is_empty() {
        return Err(GracefulError::Model("no training samples".into()));
    }
    let targets: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
    gnn.fit_target_norm(&targets)?;
    // Honour the documented GRACEFUL_GNN_EXEC default so the baselines
    // follow the same trainer-mode knob as the main model (both modes are
    // bit-identical; batched is faster).
    let exec = match graceful_common::config::gnn_exec_from_env() {
        Some(v) => GnnExecMode::parse(&v).map_err(GracefulError::Config)?,
        None => GnnExecMode::default(),
    };
    let adam = AdamConfig { lr: 2e-3, ..AdamConfig::default() };
    let mut rng = Rng::seed(seed ^ 0xBA5E);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _ in 0..epochs {
        rng.shuffle(&mut order);
        for chunk in order.chunks(16) {
            let graphs: Vec<&TypedGraph> = chunk.iter().map(|&i| &samples[i].0).collect();
            let ts: Vec<f64> = chunk.iter().map(|&i| samples[i].1).collect();
            gnn.train_batch_in(exec, &graphs, &ts, &adam, 1.0)?;
        }
    }
    Ok(())
}

/// Flat+Graph baseline.
#[derive(Debug, Clone)]
pub struct FlatGraphBaseline {
    /// Predicts `ln(per-tuple UDF cost)` from flat features.
    gbdt: Gbdt,
    query_side: QuerySideModel,
}

impl FlatGraphBaseline {
    pub fn train(
        corpora: &[&DatasetCorpus],
        epochs: usize,
        hidden: usize,
        seed: u64,
    ) -> Result<Self> {
        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for c in corpora {
            for q in &c.queries {
                let Some(u) = &q.spec.udf else { continue };
                if q.udf_input_rows == 0 {
                    continue;
                }
                let per_tuple = (q.udf_work_ns / q.udf_input_rows as f64).max(1e-3);
                xs.push(flat_features(u, q.udf_input_rows as f64));
                ys.push(per_tuple.ln());
            }
        }
        if xs.is_empty() {
            return Err(GracefulError::Model("no UDF samples for FlatVector".into()));
        }
        let gbdt = Gbdt::fit(&xs, &ys, GbdtConfig { seed, ..GbdtConfig::default() })?;
        let query_side = QuerySideModel::train(corpora, epochs, hidden, seed)?;
        Ok(FlatGraphBaseline { gbdt, query_side })
    }

    /// Predict the UDF-only runtime (ns) given estimated input rows.
    pub fn predict_udf(&self, udf: &GeneratedUdf, est_input_rows: f64) -> f64 {
        let per_tuple = self.gbdt.predict(&flat_features(udf, est_input_rows)).exp();
        per_tuple * est_input_rows.max(0.0)
    }

    /// Predict total runtime: query side + scaled UDF side.
    pub fn predict(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<f64> {
        let query = self.query_side.predict(db, spec, plan, estimator)?;
        let udf = match (&spec.udf, plan.udf_op()) {
            (Some(u), Some(idx)) => {
                let input = plan.ops[plan.ops[idx].children[0]].est_out_rows;
                self.predict_udf(u, input)
            }
            _ => 0.0,
        };
        Ok(query + udf)
    }
}

/// Graph+Graph baseline: GRACEFUL's UDF subgraph as a standalone estimator.
#[derive(Debug, Clone)]
pub struct GraphGraphBaseline {
    udf_gnn: GnnModel,
    query_side: QuerySideModel,
}

/// Build the standalone UDF graph (columns + DAG, root = RET).
fn udf_only_graph(
    db: &Database,
    spec: &QuerySpec,
    udf: &GeneratedUdf,
    input_rows: f64,
    estimator: &dyn CardEstimator,
) -> Result<TypedGraph> {
    let table = db.table(&udf.table)?;
    let arg_types: Vec<DataType> =
        udf.input_columns.iter().map(|c| table.column_type(c)).collect::<Result<Vec<_>>>()?;
    let ret_type = graceful_udf::infer_return_type(&udf.def, &arg_types);
    let mut dag = build_dag(&udf.def, &arg_types, ret_type, DagConfig::default());
    let pre: Vec<graceful_plan::Pred> =
        spec.filters.iter().filter(|p| p.col.table == udf.table).cloned().collect();
    HitRatioEstimator::new(estimator).annotate_dag(&mut dag, udf, input_rows, &pre);
    // Reuse the featurizer's node layout by embedding the DAG without any
    // plan operators: column nodes then DAG nodes.
    let mut node_types = Vec::new();
    let mut features = Vec::new();
    let mut edges = Vec::new();
    let mut col_idx = Vec::new();
    for c in &udf.input_columns {
        let stats = db.stats(&udf.table)?;
        let cs = stats.column(c)?;
        let mut f = vec![0f32; 8];
        f[cs.data_type.index()] = 1.0;
        f[4] = log_mag(cs.ndv as f64);
        f[5] = cs.null_fraction as f32;
        f[6] = log_mag(cs.avg_text_len.max((cs.max - cs.min).abs()));
        f[7] = log_mag(cs.num_rows as f64);
        node_types.push(crate::featurize::node_type::COLUMN);
        features.push(f);
        col_idx.push(node_types.len() - 1);
    }
    let offset = node_types.len();
    for (i, n) in dag.nodes.iter().enumerate() {
        let (ty, f) = crate::featurize::udf_node_features_public(n);
        node_types.push(ty);
        features.push(f);
        match n.kind {
            graceful_cfg::UdfNodeKind::Inv => {
                for &c in &col_idx {
                    edges.push((c, offset + i));
                }
            }
            graceful_cfg::UdfNodeKind::Comp | graceful_cfg::UdfNodeKind::Branch => {
                for &p in &n.param_reads {
                    if let Some(&c) = col_idx.get(p as usize) {
                        edges.push((c, offset + i));
                    }
                }
            }
            _ => {}
        }
    }
    for &(s, d, _) in &dag.edges {
        edges.push((offset + s, offset + d));
    }
    Ok(TypedGraph { node_types, features, edges, root: offset + dag.ret })
}

impl GraphGraphBaseline {
    pub fn train(
        corpora: &[&DatasetCorpus],
        epochs: usize,
        hidden: usize,
        seed: u64,
    ) -> Result<Self> {
        let config = GnnConfig { hidden, feature_dims: feature_dims(), readout_hidden: hidden };
        let mut udf_gnn = GnnModel::new(config, seed ^ 0x66)?;
        let mut samples: Vec<(TypedGraph, f64)> = Vec::new();
        for c in corpora {
            let est = ActualCard::new(&c.db);
            for q in &c.queries {
                let Some(u) = &q.spec.udf else { continue };
                if q.udf_input_rows == 0 {
                    continue;
                }
                let g = udf_only_graph(&c.db, &q.spec, u, q.udf_input_rows as f64, &est)?;
                samples.push((g, q.udf_work_ns.max(1.0)));
            }
        }
        train_gnn(&mut udf_gnn, &mut samples, epochs, seed ^ 0x66)?;
        let query_side = QuerySideModel::train(corpora, epochs, hidden, seed)?;
        Ok(GraphGraphBaseline { udf_gnn, query_side })
    }

    pub fn predict(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<f64> {
        let query = self.query_side.predict(db, spec, plan, estimator)?;
        let udf = match (&spec.udf, plan.udf_op()) {
            (Some(u), Some(idx)) => {
                let input = plan.ops[plan.ops[idx].children[0]].est_out_rows;
                let g = udf_only_graph(db, spec, u, input, estimator)?;
                self.udf_gnn.predict(&g)?
            }
            _ => 0.0,
        };
        Ok(query + udf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_common::config::ScaleConfig;

    fn tiny() -> DatasetCorpus {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 14, ..ScaleConfig::default() };
        crate::corpus::build_corpus("tpc_h", &cfg, 9).unwrap()
    }

    #[test]
    fn flat_features_reflect_structure() {
        let c = tiny();
        let q = c.queries.iter().find(|q| q.has_udf()).unwrap();
        let u = q.spec.udf.as_ref().unwrap();
        let f = flat_features(u, 100.0);
        assert_eq!(f[0], u.def.branch_count() as f64);
        assert_eq!(f[1], u.def.loop_count() as f64);
        assert_eq!(f[2], u.def.op_count() as f64);
    }

    #[test]
    fn baselines_train_and_predict() {
        let c = tiny();
        let flat = FlatGraphBaseline::train(&[&c], 3, 8, 1).unwrap();
        let gg = GraphGraphBaseline::train(&[&c], 3, 8, 2).unwrap();
        let est = ActualCard::new(&c.db);
        use graceful_card::CardEstimator as _;
        for q in c.queries.iter().take(5) {
            let mut plan = q.plan.clone();
            est.annotate(&mut plan).unwrap();
            let p1 = flat.predict(&c.db, &q.spec, &plan, &est).unwrap();
            let p2 = gg.predict(&c.db, &q.spec, &plan, &est).unwrap();
            assert!(p1.is_finite() && p1 > 0.0);
            assert!(p2.is_finite() && p2 > 0.0);
        }
    }
}
