//! The GRACEFUL model: training and zero-shot inference.
//!
//! Training follows the paper's setup (Section VI): the model sees the
//! labelled workloads of the training databases — with **actual** cardinality
//! annotations, since ground-truth labels imply executed plans — and learns
//! to map joint query–UDF graphs to log runtimes. At test time the plan can
//! be annotated by *any* cardinality estimator, which is how Table III
//! evaluates robustness to estimation errors.

use crate::corpus::DatasetCorpus;
use crate::featurize::{feature_dims, Featurizer};
use graceful_card::{ActualCard, CardEstimator};
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use graceful_nn::{AdamConfig, GnnConfig, GnnModel, TypedGraph};
use graceful_plan::{Plan, QuerySpec};
use graceful_storage::Database;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub adam: AdamConfig,
    /// Huber delta in normalized log-target units.
    pub huber_delta: f32,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 24,
            batch_size: 16,
            adam: AdamConfig { lr: 2e-3, ..AdamConfig::default() },
            huber_delta: 1.0,
            seed: 20_250_331,
        }
    }
}

/// The learned cost estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GracefulModel {
    gnn: GnnModel,
    featurizer_level: u8,
}

impl GracefulModel {
    /// Create an untrained model.
    pub fn new(featurizer: Featurizer, hidden: usize, seed: u64) -> Self {
        let config = GnnConfig { hidden, feature_dims: feature_dims(), readout_hidden: hidden };
        GracefulModel { gnn: GnnModel::new(config, seed), featurizer_level: featurizer.level }
    }

    pub fn featurizer(&self) -> Featurizer {
        Featurizer::level(self.featurizer_level)
    }

    /// Featurize one labelled/annotated query.
    pub fn graph_for(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<TypedGraph> {
        self.featurizer().featurize(db, spec, plan, estimator)
    }

    /// Train on a set of corpora (the 19 training databases of a fold).
    ///
    /// Returns the per-epoch mean training losses.
    pub fn train(&mut self, corpora: &[&DatasetCorpus], cfg: &TrainConfig) -> Result<Vec<f32>> {
        // Pre-featurize the whole training set once (actual cardinalities).
        let mut samples: Vec<(TypedGraph, f64)> = Vec::new();
        for c in corpora {
            let est = ActualCard::new(&c.db);
            for q in &c.queries {
                let mut plan = q.plan.clone();
                est.annotate(&mut plan)?;
                let g = self.graph_for(&c.db, &q.spec, &plan, &est)?;
                samples.push((g, q.runtime_ns));
            }
        }
        if samples.is_empty() {
            return Err(GracefulError::Model("no training samples".into()));
        }
        let targets: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        self.gnn.fit_target_norm(&targets);
        let mut rng = Rng::seed(cfg.seed ^ 0x7EA1);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for _epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let graphs: Vec<&TypedGraph> = chunk.iter().map(|&i| &samples[i].0).collect();
                let ts: Vec<f64> = chunk.iter().map(|&i| samples[i].1).collect();
                epoch_loss += self.gnn.train_batch(&graphs, &ts, &cfg.adam, cfg.huber_delta)?;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f32);
        }
        Ok(losses)
    }

    /// Predict the runtime (ns) for an annotated plan.
    pub fn predict(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<f64> {
        let g = self.graph_for(db, spec, plan, estimator)?;
        self.gnn.predict(&g)
    }

    /// Predict from a pre-built graph.
    pub fn predict_graph(&self, g: &TypedGraph) -> Result<f64> {
        self.gnn.predict(g)
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.gnn.param_count()
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serializes")
    }

    /// Deserialize from JSON (rebuilds optimizer buffers).
    pub fn from_json(json: &str) -> Result<Self> {
        let mut m: GracefulModel = serde_json::from_str(json)
            .map_err(|e| GracefulError::Model(format!("model load failed: {e}")))?;
        m.gnn.rebuild_after_load();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_common::config::ScaleConfig;
    use graceful_common::metrics::QErrorSummary;

    #[test]
    fn trains_and_predicts_in_sane_range() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 16, ..ScaleConfig::default() };
        let train = crate::corpus::build_corpus("tpc_h", &cfg, 1).unwrap();
        let test = crate::corpus::build_corpus("ssb", &cfg, 2).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 16, 3);
        let tcfg = TrainConfig { epochs: 10, ..TrainConfig::default() };
        let losses = model.train(&[&train], &tcfg).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss should decrease");
        // Zero-shot predictions on the unseen database: within a couple of
        // orders of magnitude even with this tiny training set.
        let est = ActualCard::new(&test.db);
        let mut pairs = Vec::new();
        for q in &test.queries {
            let mut plan = q.plan.clone();
            est.annotate(&mut plan).unwrap();
            let pred = model.predict(&test.db, &q.spec, &plan, &est).unwrap();
            assert!(pred.is_finite() && pred > 0.0);
            pairs.push((pred, q.runtime_ns));
        }
        let summary = QErrorSummary::from_pairs(&pairs);
        assert!(summary.median < 50.0, "tiny-scale sanity bound: {summary}");
    }

    #[test]
    fn model_round_trips_through_json() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 8, ..ScaleConfig::default() };
        let c = crate::corpus::build_corpus("imdb", &cfg, 4).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 8, 5);
        let tcfg = TrainConfig { epochs: 2, ..TrainConfig::default() };
        model.train(&[&c], &tcfg).unwrap();
        let loaded = GracefulModel::from_json(&model.to_json()).unwrap();
        let est = ActualCard::new(&c.db);
        let q = &c.queries[0];
        let mut plan = q.plan.clone();
        est.annotate(&mut plan).unwrap();
        let a = model.predict(&c.db, &q.spec, &plan, &est).unwrap();
        let b = loaded.predict(&c.db, &q.spec, &plan, &est).unwrap();
        assert!((a - b).abs() / a < 1e-6);
    }
}
