//! The GRACEFUL model: training and zero-shot inference.
//!
//! Training follows the paper's setup (Section VI): the model sees the
//! labelled workloads of the training databases — with **actual** cardinality
//! annotations, since ground-truth labels imply executed plans — and learns
//! to map joint query–UDF graphs to log runtimes. At test time the plan can
//! be annotated by *any* cardinality estimator, which is how Table III
//! evaluates robustness to estimation errors.
//!
//! # The training pipeline
//!
//! [`GracefulModel::train`] is a two-stage pipeline, both stages fast and
//! deterministic:
//!
//! 1. **Parallel featurization** — every `(query, plan)` pair of the corpus
//!    is annotated with actual cardinalities and featurized into a
//!    [`TypedGraph`] on the [`graceful_runtime::Pool`] ([`TrainConfig`]'s
//!    `threads` budget, `GRACEFUL_THREADS` via
//!    [`TrainOptions::build_with_env`]). Results merge in item order, so the
//!    sample list — and therefore the whole training run — is bit-identical
//!    for any thread count.
//! 2. **Batched mini-batch SGD** — each shuffled mini-batch trains through
//!    [`GnnModel::train_batch_in`] under [`TrainConfig::exec`]; the default
//!    [`GnnExecMode::Batched`] packs every mini-batch into one
//!    level-synchronous pass that is bit-identical to the node-at-a-time
//!    reference.
//!
//! Configuration mirrors the engine's `Session`/`ExecOptions` pattern:
//! [`TrainOptions`] is the validating builder, [`TrainConfig`] the validated
//! value, and zero `epochs`/`batch_size`/`threads` are typed
//! [`GracefulError::Config`] errors rather than panics.

use crate::corpus::DatasetCorpus;
use crate::featurize::{feature_dims, Featurizer};
use graceful_card::{ActualCard, CardEstimator};
use graceful_common::config;
use graceful_common::rng::Rng;
use graceful_common::{GracefulError, Result};
use graceful_nn::{AdamConfig, GnnConfig, GnnExecMode, GnnModel, TypedGraph};
use graceful_obs::registry::{counter, gauge, histogram, Counter, Gauge, Histogram};
use graceful_obs::trace;
use graceful_plan::{Plan, QuerySpec};
use graceful_runtime::Pool;
use graceful_storage::Database;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use std::time::Instant;

/// Serialized-model format version (bumped on any layout change so stale
/// files fail with a typed error instead of garbage predictions).
pub const MODEL_FORMAT_VERSION: u32 = 1;

/// Training hyper-parameters (validated; build via [`TrainOptions`] or use
/// [`TrainConfig::default`], which is valid by construction).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub adam: AdamConfig,
    /// Huber delta in normalized log-target units.
    pub huber_delta: f32,
    pub seed: u64,
    /// Forward/backward implementation (bit-identical either way).
    pub exec: GnnExecMode,
    /// Worker threads for the featurization fan-out (never changes results,
    /// only wall-clock time).
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 24,
            batch_size: 16,
            adam: AdamConfig { lr: 2e-3, ..AdamConfig::default() },
            huber_delta: 1.0,
            seed: 20_250_331,
            exec: GnnExecMode::Batched,
            threads: config::default_threads(),
        }
    }
}

impl TrainConfig {
    /// Validate the configuration: zero `epochs`/`batch_size`/`threads` and
    /// non-finite or non-positive `huber_delta`/learning rates are typed
    /// [`GracefulError::Config`] errors (matching `ExecOptions` semantics).
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(GracefulError::Config("epochs must be >= 1, got 0".into()));
        }
        if self.batch_size == 0 {
            return Err(GracefulError::Config("batch_size must be >= 1, got 0".into()));
        }
        if self.threads == 0 {
            return Err(GracefulError::Config("threads must be >= 1, got 0".into()));
        }
        if !(self.huber_delta.is_finite() && self.huber_delta > 0.0) {
            return Err(GracefulError::Config(format!(
                "huber_delta must be finite and > 0, got {}",
                self.huber_delta
            )));
        }
        if !(self.adam.lr.is_finite() && self.adam.lr > 0.0) {
            return Err(GracefulError::Config(format!(
                "learning rate must be finite and > 0, got {}",
                self.adam.lr
            )));
        }
        Ok(())
    }
}

/// Builder for [`TrainConfig`], mirroring the engine's `ExecOptions`
/// pattern: unset fields fall back to the pure [`TrainConfig::default`]
/// ([`TrainOptions::build`]) or to the documented `GRACEFUL_*` environment
/// defaults ([`TrainOptions::build_with_env`], which resolves
/// `GRACEFUL_THREADS`/`GRACEFUL_EPOCHS`/`GRACEFUL_SEED`/
/// `GRACEFUL_GNN_EXEC`). Every terminal method validates, so
/// misconfiguration is a typed error, never a panic.
///
/// ```
/// use graceful_core::model::TrainOptions;
/// use graceful_nn::GnnExecMode;
///
/// let cfg = TrainOptions::new()
///     .epochs(8)
///     .batch_size(32)
///     .learning_rate(1e-3)
///     .exec(GnnExecMode::Batched)
///     .threads(2)
///     .build()
///     .expect("valid options");
/// assert_eq!(cfg.batch_size, 32);
/// assert!(TrainOptions::new().epochs(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    epochs: Option<usize>,
    batch_size: Option<usize>,
    adam: Option<AdamConfig>,
    learning_rate: Option<f32>,
    huber_delta: Option<f32>,
    seed: Option<u64>,
    exec: Option<GnnExecMode>,
    threads: Option<usize>,
}

impl TrainOptions {
    pub fn new() -> Self {
        TrainOptions::default()
    }

    /// Number of passes over the shuffled training set.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = Some(epochs);
        self
    }

    /// Graphs per training step (the mini-batch the batched engine packs).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = Some(batch_size);
        self
    }

    /// Full Adam configuration (overrides [`TrainOptions::learning_rate`]).
    pub fn adam(mut self, adam: AdamConfig) -> Self {
        self.adam = Some(adam);
        self
    }

    /// Adam learning rate (keeps the remaining Adam defaults).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = Some(lr);
        self
    }

    /// Huber delta in normalized log-target units.
    pub fn huber_delta(mut self, delta: f32) -> Self {
        self.huber_delta = Some(delta);
        self
    }

    /// Shuffling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// GNN execution mode (bit-identical; batched is faster).
    pub fn exec(mut self, exec: GnnExecMode) -> Self {
        self.exec = Some(exec);
        self
    }

    /// Featurization worker threads (never changes results).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    fn over(self, defaults: TrainConfig) -> TrainConfig {
        let mut adam = self.adam.unwrap_or(defaults.adam);
        if self.adam.is_none() {
            if let Some(lr) = self.learning_rate {
                adam.lr = lr;
            }
        }
        TrainConfig {
            epochs: self.epochs.unwrap_or(defaults.epochs),
            batch_size: self.batch_size.unwrap_or(defaults.batch_size),
            adam,
            huber_delta: self.huber_delta.unwrap_or(defaults.huber_delta),
            seed: self.seed.unwrap_or(defaults.seed),
            exec: self.exec.unwrap_or(defaults.exec),
            threads: self.threads.unwrap_or(defaults.threads),
        }
    }

    /// Validate and build over the pure [`TrainConfig::default`] — fully
    /// environment-free.
    pub fn build(self) -> Result<TrainConfig> {
        let cfg = self.over(TrainConfig::default());
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validate and build with unset fields falling back to the documented
    /// `GRACEFUL_*` environment defaults (`GRACEFUL_THREADS`,
    /// `GRACEFUL_EPOCHS`, `GRACEFUL_SEED`, `GRACEFUL_GNN_EXEC`). An invalid
    /// `GRACEFUL_GNN_EXEC` name is a typed [`GracefulError::Config`].
    pub fn build_with_env(self) -> Result<TrainConfig> {
        let scale = config::ScaleConfig::from_env();
        let threads = config::try_threads_from_env().map_err(GracefulError::Config)?;
        let exec = match config::gnn_exec_from_env() {
            Some(v) => GnnExecMode::parse(&v).map_err(GracefulError::Config)?,
            None => GnnExecMode::default(),
        };
        let defaults = TrainConfig {
            epochs: scale.epochs,
            seed: scale.seed,
            threads,
            exec,
            ..TrainConfig::default()
        };
        let cfg = self.over(defaults);
        cfg.validate()?;
        Ok(cfg)
    }
}

/// The learned cost estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GracefulModel {
    gnn: GnnModel,
    featurizer_level: u8,
}

/// The on-disk envelope: a format version wrapping the model payload.
#[derive(Serialize, Deserialize)]
struct ModelEnvelope {
    format_version: u32,
    model: GracefulModel,
}

impl GracefulModel {
    /// Create an untrained model. A zero `hidden` width is a typed
    /// [`GracefulError::Config`].
    pub fn new(featurizer: Featurizer, hidden: usize, seed: u64) -> Result<Self> {
        let config = GnnConfig { hidden, feature_dims: feature_dims(), readout_hidden: hidden };
        Ok(GracefulModel { gnn: GnnModel::new(config, seed)?, featurizer_level: featurizer.level })
    }

    pub fn featurizer(&self) -> Featurizer {
        Featurizer::level(self.featurizer_level)
    }

    /// Featurize one labelled/annotated query.
    pub fn graph_for(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<TypedGraph> {
        self.featurizer().featurize(db, spec, plan, estimator)
    }

    /// Featurize a whole training corpus set — per-query [`ActualCard`]
    /// annotation plus featurization, fanned out on the pool with results
    /// merged in item order (bit-identical for any thread count). Sample
    /// order is corpus-major, matching a sequential double loop.
    pub fn featurize_corpora(
        &self,
        pool: &Pool,
        corpora: &[&DatasetCorpus],
    ) -> Result<Vec<(TypedGraph, f64)>> {
        let items: Vec<(usize, usize)> = corpora
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| (0..c.queries.len()).map(move |qi| (ci, qi)))
            .collect();
        let featurizer = self.featurizer();
        let labelled = pool.ordered_map(&items, |_, &(ci, qi)| {
            let c = corpora[ci];
            let q = &c.queries[qi];
            let est = ActualCard::new(&c.db);
            let mut plan = q.plan.clone();
            est.annotate(&mut plan)?;
            let g = featurizer.featurize(&c.db, &q.spec, &plan, &est)?;
            Ok((g, q.runtime_ns))
        });
        labelled.into_iter().collect()
    }

    /// Train on a set of corpora (the 19 training databases of a fold).
    ///
    /// Returns the per-epoch mean training losses. The run is deterministic
    /// in `cfg.seed` and independent of `cfg.threads` and `cfg.exec`.
    ///
    /// Observability (write-only, never on the result path): spans
    /// `train/train` → `train/featurize` → `train/epoch` → `train/step`,
    /// plus the registry metrics `train.epochs`, `train.samples`,
    /// `train.epoch_loss` and the `train.rows_per_s` histogram.
    pub fn train(&mut self, corpora: &[&DatasetCorpus], cfg: &TrainConfig) -> Result<Vec<f32>> {
        struct TrainMetrics {
            epochs: Counter,
            samples: Counter,
            epoch_loss: Gauge,
            rows_per_s: Histogram,
        }
        static METRICS: OnceLock<TrainMetrics> = OnceLock::new();
        let m = METRICS.get_or_init(|| TrainMetrics {
            epochs: counter("train.epochs"),
            samples: counter("train.samples"),
            epoch_loss: gauge("train.epoch_loss"),
            rows_per_s: histogram("train.rows_per_s"),
        });
        cfg.validate()?;
        let _train_span =
            trace::span("train", "train").arg("corpora", corpora.len()).arg("epochs", cfg.epochs);
        // Pre-featurize the whole training set once (actual cardinalities),
        // in parallel on the configured thread budget.
        let pool = Pool::new(cfg.threads);
        let samples = {
            let _span = trace::span("train", "featurize");
            self.featurize_corpora(&pool, corpora)?
        };
        if samples.is_empty() {
            return Err(GracefulError::Model("no training samples".into()));
        }
        m.samples.add(samples.len() as u64);
        let targets: Vec<f64> = samples.iter().map(|(_, t)| *t).collect();
        self.gnn.fit_target_norm(&targets)?;
        let mut rng = Rng::seed(cfg.seed ^ 0x7EA1);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let _epoch_span = trace::span("train", "epoch").arg("epoch", epoch);
            let epoch_started = Instant::now();
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let _step_span = trace::span("train", "step").arg("rows", chunk.len());
                let graphs: Vec<&TypedGraph> = chunk.iter().map(|&i| &samples[i].0).collect();
                let ts: Vec<f64> = chunk.iter().map(|&i| samples[i].1).collect();
                epoch_loss +=
                    self.gnn.train_batch_in(cfg.exec, &graphs, &ts, &cfg.adam, cfg.huber_delta)?;
                batches += 1;
            }
            let mean = epoch_loss / batches.max(1) as f32;
            losses.push(mean);
            m.epochs.incr();
            m.epoch_loss.set(mean as f64);
            let secs = epoch_started.elapsed().as_secs_f64();
            if secs > 0.0 {
                m.rows_per_s.record(samples.len() as f64 / secs);
            }
        }
        Ok(losses)
    }

    /// Predict the runtime (ns) for an annotated plan.
    pub fn predict(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<f64> {
        let g = self.graph_for(db, spec, plan, estimator)?;
        self.gnn.predict(&g)
    }

    /// Predict from a pre-built graph.
    pub fn predict_graph(&self, g: &TypedGraph) -> Result<f64> {
        self.gnn.predict(g)
    }

    /// Predict a batch of pre-built graphs in one level-synchronous pass
    /// (bit-identical to per-graph [`GracefulModel::predict_graph`]).
    pub fn predict_graphs(&self, graphs: &[&TypedGraph]) -> Result<Vec<f64>> {
        self.gnn.predict_batch(graphs, GnnExecMode::Batched)
    }

    /// Borrow the underlying GNN.
    pub fn gnn(&self) -> &GnnModel {
        &self.gnn
    }

    /// Mutable access to the underlying GNN (direct per-step training in
    /// benches and experiments).
    pub fn gnn_mut(&mut self) -> &mut GnnModel {
        &mut self.gnn
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.gnn.param_count()
    }

    /// FNV-1a digest over every trained parameter's bit pattern (for
    /// determinism assertions).
    pub fn param_checksum(&self) -> u64 {
        self.gnn.param_checksum()
    }

    /// Serialize to versioned JSON (see [`MODEL_FORMAT_VERSION`]).
    pub fn to_json(&self) -> String {
        let envelope = ModelEnvelope { format_version: MODEL_FORMAT_VERSION, model: self.clone() };
        serde_json::to_string(&envelope).expect("model serializes")
    }

    /// Deserialize from JSON (rebuilds optimizer buffers). A missing or
    /// mismatched format version is a typed [`GracefulError::Model`].
    pub fn from_json(json: &str) -> Result<Self> {
        let envelope: ModelEnvelope = serde_json::from_str(json).map_err(|e| {
            GracefulError::Model(format!(
                "model load failed (expected format_version {MODEL_FORMAT_VERSION}): {e}"
            ))
        })?;
        if envelope.format_version != MODEL_FORMAT_VERSION {
            return Err(GracefulError::Model(format!(
                "unsupported model format version {} (this build reads version \
                 {MODEL_FORMAT_VERSION})",
                envelope.format_version
            )));
        }
        let mut m = envelope.model;
        m.gnn.rebuild_after_load();
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_common::config::ScaleConfig;
    use graceful_common::metrics::QErrorSummary;

    #[test]
    fn trains_and_predicts_in_sane_range() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 16, ..ScaleConfig::default() };
        let train = crate::corpus::build_corpus("tpc_h", &cfg, 1).unwrap();
        let test = crate::corpus::build_corpus("ssb", &cfg, 2).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 16, 3).unwrap();
        let tcfg = TrainOptions::new().epochs(10).build().unwrap();
        let losses = model.train(&[&train], &tcfg).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap(), "loss should decrease");
        // Zero-shot predictions on the unseen database: within a couple of
        // orders of magnitude even with this tiny training set.
        let est = ActualCard::new(&test.db);
        let mut pairs = Vec::new();
        for q in &test.queries {
            let mut plan = q.plan.clone();
            est.annotate(&mut plan).unwrap();
            let pred = model.predict(&test.db, &q.spec, &plan, &est).unwrap();
            assert!(pred.is_finite() && pred > 0.0);
            pairs.push((pred, q.runtime_ns));
        }
        let summary = QErrorSummary::from_pairs(&pairs);
        assert!(summary.median < 50.0, "tiny-scale sanity bound: {summary}");
    }

    #[test]
    fn model_round_trips_through_json() {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 8, ..ScaleConfig::default() };
        let c = crate::corpus::build_corpus("imdb", &cfg, 4).unwrap();
        let mut model = GracefulModel::new(Featurizer::full(), 8, 5).unwrap();
        let tcfg = TrainOptions::new().epochs(2).build().unwrap();
        model.train(&[&c], &tcfg).unwrap();
        let loaded = GracefulModel::from_json(&model.to_json()).unwrap();
        // Parameters and predictions are bit-identical after the round trip
        // (rebuild_after_load restores fresh optimizer buffers).
        assert_eq!(model.param_checksum(), loaded.param_checksum());
        let est = ActualCard::new(&c.db);
        let q = &c.queries[0];
        let mut plan = q.plan.clone();
        est.annotate(&mut plan).unwrap();
        let a = model.predict(&c.db, &q.spec, &plan, &est).unwrap();
        let b = loaded.predict(&c.db, &q.spec, &plan, &est).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // The rebuilt optimizer state trains onward without error and the
        // models stay in lockstep (fresh Adam buffers on both sides).
        let mut fresh = GracefulModel::from_json(&loaded.to_json()).unwrap();
        let losses = fresh.train(&[&c], &TrainOptions::new().epochs(1).build().unwrap()).unwrap();
        assert!(losses[0].is_finite());
    }

    #[test]
    fn from_json_rejects_wrong_or_missing_version() {
        let model = GracefulModel::new(Featurizer::full(), 8, 5).unwrap();
        let good = model.to_json();
        assert!(good.contains("\"format_version\""));
        // Wrong version number.
        let bad = good.replace(
            &format!("\"format_version\":{MODEL_FORMAT_VERSION}"),
            "\"format_version\":999",
        );
        match GracefulModel::from_json(&bad) {
            Err(GracefulError::Model(m)) => assert!(m.contains("999"), "message: {m}"),
            other => panic!("expected version error, got {other:?}"),
        }
        // Pre-versioning payload (no envelope at all).
        match GracefulModel::from_json("{\"gnn\":{},\"featurizer_level\":5}") {
            Err(GracefulError::Model(m)) => {
                assert!(m.contains("format_version"), "message: {m}")
            }
            other => panic!("expected load error, got {other:?}"),
        }
    }

    #[test]
    fn train_options_validate_like_exec_options() {
        for (opts, what) in [
            (TrainOptions::new().epochs(0), "epochs"),
            (TrainOptions::new().batch_size(0), "batch_size"),
            (TrainOptions::new().threads(0), "threads"),
        ] {
            match opts.build() {
                Err(GracefulError::Config(m)) => {
                    assert!(m.contains(what), "message {m:?} names {what}")
                }
                other => panic!("{what}=0 produced {other:?}"),
            }
        }
        assert!(matches!(
            TrainOptions::new().huber_delta(f32::NAN).build(),
            Err(GracefulError::Config(_))
        ));
        assert!(matches!(
            TrainOptions::new().learning_rate(0.0).build(),
            Err(GracefulError::Config(_))
        ));
        // Zero hidden width is rejected at model construction.
        assert!(matches!(
            GracefulModel::new(Featurizer::full(), 0, 1),
            Err(GracefulError::Config(_))
        ));
        // The builder composes like ExecOptions.
        let cfg = TrainOptions::new()
            .epochs(3)
            .batch_size(4)
            .learning_rate(1e-2)
            .huber_delta(0.5)
            .seed(42)
            .exec(GnnExecMode::NodeAtATime)
            .threads(2)
            .build()
            .unwrap();
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.batch_size, 4);
        assert_eq!(cfg.adam.lr, 1e-2);
        assert_eq!(cfg.huber_delta, 0.5);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.exec, GnnExecMode::NodeAtATime);
        assert_eq!(cfg.threads, 2);
    }
}
