//! GRACEFUL — a learned cost estimator for UDFs.
//!
//! This crate assembles the paper's contribution from the substrate crates:
//!
//! * [`featurize`] — the joint query–UDF graph (Section III): query-plan
//!   operator nodes annotated with cardinalities, the transformed UDF DAG
//!   with Table I features and hit-ratio row annotations, data-flow edges
//!   between column nodes and the UDF, the `on-udf` filter flag, and the
//!   ablation levels of Figure 7,
//! * [`corpus`] — the benchmark builder of Section V: 20 databases ×
//!   generated SPJA+UDF queries × recorded ground-truth runtimes (Table II),
//! * [`model`] — the GRACEFUL estimator: train on 19 databases, predict
//!   zero-shot on the 20th,
//! * [`baselines`] — the Flat+Graph (FlatVector/XGBoost-style) and
//!   Graph+Graph split baselines of Exp 1/3,
//! * [`advisor`] — the pull-up/push-down advisor of Section IV: selectivity
//!   enumeration, cost distributions, and the UBC / AuC / Conservative
//!   decision strategies,
//! * [`experiments`] — shared leave-one-out harness used by the bench
//!   targets that regenerate each table/figure,
//! * [`telemetry`] — model-aware execution (predict → run → q-error into
//!   the metrics registry and flight recorder) and the flight-record →
//!   training-label on-ramp.
//!
//! # Quickstart
//!
//! ```no_run
//! use graceful_common::config::ScaleConfig;
//! use graceful_core::corpus::build_all_corpora;
//! use graceful_core::experiments::train_graceful;
//! use graceful_core::featurize::Featurizer;
//!
//! let cfg = ScaleConfig { queries_per_db: 30, ..ScaleConfig::default() };
//! let corpora = build_all_corpora(&cfg);
//! // Train on all but the last database, predict on the held-out one.
//! let (train, test) = corpora.split_last().map(|(t, rest)| (rest, t)).unwrap();
//! let model = train_graceful(train, &cfg, Featurizer::full());
//! let q_errors = graceful_core::experiments::evaluate_actual(&model, test);
//! println!("median Q-error: {}", q_errors.median);
//! ```

pub mod advisor;
pub mod baselines;
pub mod corpus;
pub mod experiments;
pub mod featurize;
pub mod model;
pub mod telemetry;

pub use advisor::{AdvisorDecision, PullUpAdvisor, Strategy};
pub use corpus::{
    build_all_corpora, build_all_corpora_on, build_corpus, DatasetCorpus, LabeledQuery,
};
pub use featurize::Featurizer;
pub use model::GracefulModel;
pub use telemetry::{labels_from_flight, run_with_model, ModelRun};
