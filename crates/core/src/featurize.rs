//! Joint query–UDF graph featurization (Section III).
//!
//! The featurizer turns an annotated plan (+ its UDF) into the
//! [`TypedGraph`] the GNN consumes:
//!
//! * **query part** — one node per plan operator with log-scaled estimated
//!   cardinalities (the representation of Hilprecht & Binnig \[11\]); TABLE
//!   and COLUMN nodes feed scans and filters,
//! * **UDF part** — the transformed DAG of `graceful-cfg` with Table I
//!   features; `in_rows` comes from the hit-ratio machinery,
//! * **stitching** (Section III-C) — COLUMN → INV and COLUMN → COMP
//!   data-flow edges, child-operator → INV, RET → consuming FILTER (with the
//!   `on-udf` flag) or RET → UDF_PROJECT node.
//!
//! All features are database-independent (one-hot vocabularies + magnitudes),
//! which is what enables zero-shot transfer. The [`Featurizer`]'s `level`
//! reproduces the ablation lattice of Figure 7.

use graceful_card::{CardEstimator, HitRatioEstimator};
use graceful_cfg::{build_dag, DagConfig, UdfNodeKind};
use graceful_common::{GracefulError, Result};
use graceful_nn::TypedGraph;
use graceful_plan::{AggFunc, Plan, PlanOpKind, Pred, QuerySpec};
use graceful_storage::{DataType, Database};
use graceful_udf::ast::{BinOp, CmpOp};
use graceful_udf::LibFn;

/// GNN node-type ids of the joint graph.
pub mod node_type {
    pub const TABLE: usize = 0;
    pub const COLUMN: usize = 1;
    pub const SCAN: usize = 2;
    pub const FILTER: usize = 3;
    pub const JOIN: usize = 4;
    pub const AGG: usize = 5;
    pub const UDF_PROJECT: usize = 6;
    pub const INV: usize = 7;
    pub const COMP: usize = 8;
    pub const BRANCH: usize = 9;
    pub const LOOP: usize = 10;
    pub const LOOP_END: usize = 11;
    pub const RET: usize = 12;
    pub const COUNT: usize = 13;
}

/// Feature dimensions per node type (indexable by the ids above).
pub fn feature_dims() -> Vec<usize> {
    let mut dims = vec![0; node_type::COUNT];
    dims[node_type::TABLE] = 2; // log rows, n_cols
    dims[node_type::COLUMN] = 8; // dtype(4), log ndv, null frac, log width, log rows
    dims[node_type::SCAN] = 1; // log out
    dims[node_type::FILTER] = 4; // log in, log out, n_preds, on_udf
    dims[node_type::JOIN] = 3; // log in_l, log in_r, log out
    dims[node_type::AGG] = 1 + AggFunc::ALL.len(); // log in, agg one-hot
    dims[node_type::UDF_PROJECT] = 1; // log in
    dims[node_type::INV] = 6; // log rows, nr_params, dtype counts(4)
    dims[node_type::COMP] = 2 + BinOp::ALL.len() + LibFn::COUNT; // log rows, loop_part, ops, libs
    dims[node_type::BRANCH] = 2 + CmpOp::ALL.len(); // log rows, loop_part, cmp one-hot
    dims[node_type::LOOP] = 5; // log rows, loop_part, for/while, log iters
    dims[node_type::LOOP_END] = 5;
    dims[node_type::RET] = 1 + DataType::COUNT; // log rows, out dtype
    dims
}

/// Log-scale a cardinality-like magnitude into roughly `[0, 1.5]`.
#[inline]
pub fn log_mag(x: f64) -> f32 {
    ((1.0 + x.max(0.0)).log10() / 6.0) as f32
}

/// Featurization configuration = ablation level (Figure 7):
///
/// 1. UDF as a black box (RET node only),
/// 2. \+ LOOP / COMP / BRANCH / INV nodes,
/// 3. \+ `on-udf` flag on the consuming FILTER,
/// 4. \+ explicit LOOP_END nodes,
/// 5. \+ residual LOOP → LOOP_END edges (the full model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Featurizer {
    pub level: u8,
}

impl Featurizer {
    /// The full model (ablation level 5).
    pub fn full() -> Self {
        Featurizer { level: 5 }
    }

    pub fn level(level: u8) -> Self {
        assert!((1..=5).contains(&level), "ablation level must be 1..=5");
        Featurizer { level }
    }

    fn dag_config(&self) -> DagConfig {
        DagConfig { loop_end_nodes: self.level >= 4, residual_loop_edges: self.level >= 5 }
    }

    fn include_udf_structure(&self) -> bool {
        self.level >= 2
    }

    fn on_udf_flag(&self) -> bool {
        self.level >= 3
    }

    /// Featurize an annotated plan into the joint typed graph.
    ///
    /// The plan's `est_out_rows` must already be annotated (by any
    /// [`CardEstimator`]); `estimator` is additionally used for the branch
    /// hit-ratio estimation inside the UDF.
    pub fn featurize(
        &self,
        db: &Database,
        spec: &QuerySpec,
        plan: &Plan,
        estimator: &dyn CardEstimator,
    ) -> Result<TypedGraph> {
        let mut g = GraphBuilder::new();
        // Map plan-op index -> graph node index (set as we emit).
        let mut op_node = vec![usize::MAX; plan.ops.len()];
        for (idx, op) in plan.ops.iter().enumerate() {
            let est_out = op.est_out_rows;
            match &op.kind {
                PlanOpKind::Scan { table } => {
                    let t = db.table(table)?;
                    let tbl = g.push(
                        node_type::TABLE,
                        vec![log_mag(t.num_rows() as f64), t.num_columns() as f32 / 16.0],
                    );
                    let scan = g.push(node_type::SCAN, vec![log_mag(est_out)]);
                    g.edge(tbl, scan);
                    op_node[idx] = scan;
                }
                PlanOpKind::Filter { preds } => {
                    let child = op_node[op.children[0]];
                    let in_rows = plan.ops[op.children[0]].est_out_rows;
                    // Column nodes must precede the filter node (edges are
                    // forward-only in the typed graph).
                    let mut cols = Vec::with_capacity(preds.len());
                    for p in preds {
                        cols.push(g.push(
                            node_type::COLUMN,
                            column_features(db, &p.col.table, &p.col.column)?,
                        ));
                    }
                    let filter = g.push(
                        node_type::FILTER,
                        vec![
                            log_mag(in_rows),
                            log_mag(est_out),
                            preds.len() as f32 / 8.0,
                            0.0, // plain filters never sit on a UDF output
                        ],
                    );
                    for col in cols {
                        g.edge(col, filter);
                    }
                    g.edge(child, filter);
                    op_node[idx] = filter;
                }
                PlanOpKind::Join { .. } => {
                    let l = op.children[0];
                    let r = op.children[1];
                    let join = g.push(
                        node_type::JOIN,
                        vec![
                            log_mag(plan.ops[l].est_out_rows),
                            log_mag(plan.ops[r].est_out_rows),
                            log_mag(est_out),
                        ],
                    );
                    g.edge(op_node[l], join);
                    g.edge(op_node[r], join);
                    op_node[idx] = join;
                }
                PlanOpKind::UdfFilter { udf, op: cmp, .. } => {
                    let child_op = op.children[0];
                    let in_rows = plan.ops[child_op].est_out_rows;
                    let ret_node = self.emit_udf(
                        &mut g,
                        db,
                        spec,
                        udf,
                        in_rows,
                        op_node[child_op],
                        estimator,
                    )?;
                    let _ = cmp;
                    let filter = g.push(
                        node_type::FILTER,
                        vec![
                            log_mag(in_rows),
                            log_mag(est_out),
                            1.0 / 8.0,
                            if self.on_udf_flag() { 1.0 } else { 0.0 },
                        ],
                    );
                    g.edge(ret_node, filter);
                    g.edge(op_node[child_op], filter);
                    op_node[idx] = filter;
                }
                PlanOpKind::UdfProject { udf } => {
                    let child_op = op.children[0];
                    let in_rows = plan.ops[child_op].est_out_rows;
                    let ret_node = self.emit_udf(
                        &mut g,
                        db,
                        spec,
                        udf,
                        in_rows,
                        op_node[child_op],
                        estimator,
                    )?;
                    let proj = g.push(node_type::UDF_PROJECT, vec![log_mag(in_rows)]);
                    g.edge(ret_node, proj);
                    g.edge(op_node[child_op], proj);
                    op_node[idx] = proj;
                }
                PlanOpKind::Agg { func, .. } => {
                    let child = op.children[0];
                    let mut f = vec![0.0; 1 + AggFunc::ALL.len()];
                    f[0] = log_mag(plan.ops[child].est_out_rows);
                    f[1 + func.index()] = 1.0;
                    let agg = g.push(node_type::AGG, f);
                    g.edge(op_node[child], agg);
                    op_node[idx] = agg;
                }
            }
        }
        let root = op_node[plan.root];
        let graph =
            TypedGraph { node_types: g.node_types, features: g.features, edges: g.edges, root };
        graph.validate(&feature_dims())?;
        Ok(graph)
    }

    /// Emit the UDF subgraph and return the graph index of its RET node.
    #[allow(clippy::too_many_arguments)]
    fn emit_udf(
        &self,
        g: &mut GraphBuilder,
        db: &Database,
        spec: &QuerySpec,
        udf: &graceful_udf::GeneratedUdf,
        input_rows: f64,
        child_node: usize,
        estimator: &dyn CardEstimator,
    ) -> Result<usize> {
        let table = db.table(&udf.table)?;
        let arg_types: Vec<DataType> =
            udf.input_columns.iter().map(|c| table.column_type(c)).collect::<Result<Vec<_>>>()?;
        let ret_type = graceful_udf::infer_return_type(&udf.def, &arg_types);
        let mut dag = build_dag(&udf.def, &arg_types, ret_type, self.dag_config());
        // Hit-ratio row annotation (Section III-B), conditioned on the plain
        // filters already applied to the UDF's base table.
        let pre_filters: Vec<Pred> =
            spec.filters.iter().filter(|p| p.col.table == udf.table).cloned().collect();
        let hr = HitRatioEstimator::new(estimator);
        hr.annotate_dag(&mut dag, udf, input_rows, &pre_filters);

        // COLUMN nodes for the UDF's inputs.
        let mut col_nodes = Vec::with_capacity(udf.input_columns.len());
        for c in &udf.input_columns {
            col_nodes.push(g.push(node_type::COLUMN, column_features(db, &udf.table, c)?));
        }

        if !self.include_udf_structure() {
            // Ablation level 1: the UDF is a black box — a single RET node.
            let ret = &dag.nodes[dag.ret];
            let ret_node = g.push(node_type::RET, ret_features(ret));
            for &c in &col_nodes {
                g.edge(c, ret_node);
            }
            g.edge(child_node, ret_node);
            return Ok(ret_node);
        }

        // Full structure: map DAG nodes into the graph (DAG indices are
        // already topological, so emitting in order preserves the invariant).
        let mut dag_node = vec![usize::MAX; dag.len()];
        for (i, n) in dag.nodes.iter().enumerate() {
            let (ty, feats) = udf_node_features(n);
            dag_node[i] = g.push(ty, feats);
            // Data-flow edges: columns feed INV and the COMP/BRANCH nodes
            // that read them directly.
            match n.kind {
                UdfNodeKind::Inv => {
                    for &c in &col_nodes {
                        g.edge(c, dag_node[i]);
                    }
                    g.edge(child_node, dag_node[i]);
                }
                UdfNodeKind::Comp | UdfNodeKind::Branch => {
                    for &p in &n.param_reads {
                        if let Some(&c) = col_nodes.get(p as usize) {
                            g.edge(c, dag_node[i]);
                        }
                    }
                }
                _ => {}
            }
        }
        for &(s, d, kind) in &dag.edges {
            // Residual edges are already filtered by DagConfig; map the rest.
            let _ = kind;
            g.edge(dag_node[s], dag_node[d]);
        }
        Ok(dag_node[dag.ret])
    }
}

/// Table I featurization of one UDF DAG node (public for the standalone
/// UDF graphs of the Graph+Graph baseline).
pub fn udf_node_features_public(n: &graceful_cfg::UdfNode) -> (usize, Vec<f32>) {
    udf_node_features(n)
}

/// Table I featurization of one UDF DAG node.
fn udf_node_features(n: &graceful_cfg::UdfNode) -> (usize, Vec<f32>) {
    let rows = log_mag(n.in_rows);
    let lp = if n.loop_part { 1.0 } else { 0.0 };
    match n.kind {
        UdfNodeKind::Inv => {
            let mut f = vec![rows, n.nr_params as f32 / 4.0];
            f.extend(n.in_dts.iter().map(|&c| c as f32));
            (node_type::INV, f)
        }
        UdfNodeKind::Comp => {
            let mut f = vec![rows, lp];
            let mut ops = [0f32; BinOp::ALL.len()];
            for op in &n.ops {
                ops[op.index()] += 1.0;
            }
            f.extend_from_slice(&ops);
            let mut libs = [0f32; LibFn::COUNT];
            for l in &n.libs {
                libs[l.index()] += 1.0;
            }
            f.extend_from_slice(&libs);
            (node_type::COMP, f)
        }
        UdfNodeKind::Branch => {
            let mut f = vec![rows, lp];
            let mut cm = [0f32; CmpOp::ALL.len()];
            if let Some(op) = n.cmp_op {
                cm[op.index()] = 1.0;
            }
            f.extend_from_slice(&cm);
            (node_type::BRANCH, f)
        }
        UdfNodeKind::Loop | UdfNodeKind::LoopEnd => {
            let ty =
                if n.kind == UdfNodeKind::Loop { node_type::LOOP } else { node_type::LOOP_END };
            let (is_for, is_while) = match n.loop_kind {
                Some(graceful_cfg::LoopKindFeat::For) => (1.0, 0.0),
                Some(graceful_cfg::LoopKindFeat::While) => (0.0, 1.0),
                None => (0.0, 0.0),
            };
            (ty, vec![rows, lp, is_for, is_while, log_mag(n.nr_iter)])
        }
        UdfNodeKind::Ret => (node_type::RET, ret_features(n)),
    }
}

fn ret_features(n: &graceful_cfg::UdfNode) -> Vec<f32> {
    let mut f = vec![log_mag(n.in_rows)];
    let mut dt = [0f32; DataType::COUNT];
    if let Some(d) = n.out_dt {
        dt[d.index()] = 1.0;
    }
    f.extend_from_slice(&dt);
    f
}

/// COLUMN node features from statistics (database-independent magnitudes).
fn column_features(db: &Database, table: &str, column: &str) -> Result<Vec<f32>> {
    let stats = db.stats(table)?;
    let cs = stats
        .column(column)
        .map_err(|_| GracefulError::Unresolved(format!("column {table}.{column}")))?;
    let mut f = vec![0f32; 8];
    f[cs.data_type.index()] = 1.0;
    f[4] = log_mag(cs.ndv as f64);
    f[5] = cs.null_fraction as f32;
    f[6] = log_mag(cs.avg_text_len.max((cs.max - cs.min).abs()));
    f[7] = log_mag(cs.num_rows as f64);
    Ok(f)
}

/// Incremental graph builder enforcing forward edges.
struct GraphBuilder {
    node_types: Vec<usize>,
    features: Vec<Vec<f32>>,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    fn new() -> Self {
        GraphBuilder { node_types: Vec::new(), features: Vec::new(), edges: Vec::new() }
    }

    fn push(&mut self, ty: usize, feats: Vec<f32>) -> usize {
        self.node_types.push(ty);
        self.features.push(feats);
        self.node_types.len() - 1
    }

    fn edge(&mut self, src: usize, dst: usize) {
        debug_assert!(src < dst, "edge {src}->{dst} must be forward");
        self.edges.push((src, dst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_card::ActualCard;
    use graceful_common::config::ScaleConfig;

    fn corpus() -> crate::corpus::DatasetCorpus {
        let cfg = ScaleConfig { data_scale: 0.02, queries_per_db: 12, ..ScaleConfig::default() };
        crate::corpus::build_corpus("imdb", &cfg, 5).unwrap()
    }

    #[test]
    fn featurizes_whole_corpus() {
        let c = corpus();
        let est = ActualCard::new(&c.db);
        let fz = Featurizer::full();
        for q in &c.queries {
            let mut plan = q.plan.clone();
            use graceful_card::CardEstimator as _;
            est.annotate(&mut plan).unwrap();
            let g = fz.featurize(&c.db, &q.spec, &plan, &est).unwrap();
            g.validate(&feature_dims()).unwrap();
            assert!(g.len() >= plan.ops.len());
            // Root is the AGG node.
            assert_eq!(g.node_types[g.root], node_type::AGG);
        }
    }

    #[test]
    fn ablation_levels_shrink_graph() {
        let c = corpus();
        let est = ActualCard::new(&c.db);
        use graceful_card::CardEstimator as _;
        let q = c
            .queries
            .iter()
            .find(|q| {
                q.has_udf()
                    && q.spec.udf.as_ref().unwrap().def.loop_count() > 0
                    && q.spec.udf_usage == graceful_plan::UdfUsage::Filter
            })
            .expect("corpus contains a loop UDF filter query");
        let mut plan = q.plan.clone();
        est.annotate(&mut plan).unwrap();
        let sizes: Vec<usize> = (1..=5)
            .map(|lvl| Featurizer::level(lvl).featurize(&c.db, &q.spec, &plan, &est).unwrap().len())
            .collect();
        // Level 1 (RET only) is the smallest; level 4 adds LOOP_END nodes
        // over level 3; level 5 only adds edges.
        assert!(sizes[0] < sizes[1], "sizes={sizes:?}");
        assert!(sizes[3] > sizes[2], "sizes={sizes:?}");
        assert_eq!(sizes[3], sizes[4], "sizes={sizes:?}");
        // Level 3 sets the on-udf flag; level 2 does not.
        let g2 = Featurizer::level(2).featurize(&c.db, &q.spec, &plan, &est).unwrap();
        let g3 = Featurizer::level(3).featurize(&c.db, &q.spec, &plan, &est).unwrap();
        let on_udf = |g: &graceful_nn::TypedGraph| {
            g.node_types
                .iter()
                .zip(&g.features)
                .filter(|(t, _)| **t == node_type::FILTER)
                .map(|(_, f)| f[3])
                .fold(0.0f32, f32::max)
        };
        assert_eq!(on_udf(&g2), 0.0);
        assert_eq!(on_udf(&g3), 1.0);
    }

    #[test]
    fn feature_dims_match_emitted_features() {
        let dims = feature_dims();
        assert_eq!(dims.len(), node_type::COUNT);
        assert_eq!(dims[node_type::COMP], 2 + 7 + 36);
    }

    #[test]
    fn log_mag_monotone_bounded() {
        assert_eq!(log_mag(0.0), 0.0);
        assert!(log_mag(1e6) > log_mag(1e3));
        assert!(log_mag(1e9) < 2.0);
    }
}
