//! Scoped span tracing with Chrome-trace-event JSON export.
//!
//! Spans are recorded into per-thread buffers (no cross-thread contention on
//! the hot path) and merged on export in `(timestamp, sequence)` order, so
//! the emitted event array is deterministic for a given recording. The JSON
//! is the Chrome trace-event format — an array of complete (`"ph": "X"`)
//! events — loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! When tracing is disabled (the default), [`span`] costs a single relaxed
//! atomic load and allocates nothing. A process-wide cap of [`EVENT_CAP`]
//! events bounds memory when tracing is left on for a whole test suite; the
//! number of events dropped past the cap is reported by [`dropped_count`]
//! and in the exported JSON metadata.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum events retained process-wide (1 Mi). Past the cap new spans still
/// time correctly but are not recorded; [`dropped_count`] says how many.
pub const EVENT_CAP: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug, Clone)]
struct Event {
    name: &'static str,
    cat: &'static str,
    ts_ns: u64,
    dur_ns: u64,
    tid: u64,
    seq: u64,
    args: Vec<(&'static str, String)>,
}

type Buffer = Arc<Mutex<Vec<Event>>>;

fn sinks() -> &'static Mutex<Vec<Buffer>> {
    static SINKS: OnceLock<Mutex<Vec<Buffer>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn configured() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Process-start anchor; all span timestamps are nanoseconds since this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: (u64, Buffer) = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let buf: Buffer = Arc::new(Mutex::new(Vec::new()));
        sinks().lock().expect("trace sinks lock").push(buf.clone());
        (tid, buf)
    };
}

/// Whether span recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on.
pub fn enable() {
    epoch(); // pin the timestamp anchor before the first span
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn span recording off (already-recorded events are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable recording and remember `path` as the default [`flush`] target
/// (the `GRACEFUL_TRACE=path` knob resolves to this).
pub fn configure(path: &str) {
    *configured().lock().expect("trace path lock") = Some(path.to_string());
    enable();
}

/// The path set by [`configure`], if any.
pub fn configured_path() -> Option<String> {
    configured().lock().expect("trace path lock").clone()
}

/// Events recorded so far (post-cap drops excluded).
pub fn event_count() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

/// Events dropped because the [`EVENT_CAP`] was reached.
pub fn dropped_count() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Discard all recorded events (the enabled flag and configured path are
/// untouched). Benches use this between measured sections.
pub fn clear() {
    for buf in sinks().lock().expect("trace sinks lock").iter() {
        buf.lock().expect("trace buffer lock").clear();
    }
    RECORDED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

/// Open a span named `name` in category `cat`; the span closes (and records
/// one complete event) when the guard drops. When tracing is disabled this
/// is a no-op costing one atomic load.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan {
        name,
        cat,
        start_ns: epoch().elapsed().as_nanos() as u64,
        args: Vec::new(),
    }))
}

struct ActiveSpan {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
}

/// RAII guard returned by [`span`]; records the event on drop.
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Attach a key/value argument to the span (shown in the trace viewer).
    /// The value is only formatted when the span is actually recording.
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(active) = self.0.as_mut() {
            active.args.push((key, value.to_string()));
        }
        self
    }
}

fn dropped_metric() -> &'static crate::registry::Counter {
    static DROPPED_METRIC: OnceLock<crate::registry::Counter> = OnceLock::new();
    DROPPED_METRIC.get_or_init(|| crate::registry::counter("trace.dropped_events"))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let end_ns = epoch().elapsed().as_nanos() as u64;
        if RECORDED.fetch_add(1, Ordering::Relaxed) >= EVENT_CAP as u64 {
            RECORDED.fetch_sub(1, Ordering::Relaxed);
            DROPPED.fetch_add(1, Ordering::Relaxed);
            dropped_metric().incr();
            return;
        }
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        LOCAL.with(|(tid, buf)| {
            buf.lock().expect("trace buffer lock").push(Event {
                name: active.name,
                cat: active.cat,
                ts_ns: active.start_ns,
                dur_ns: end_ns.saturating_sub(active.start_ns),
                tid: *tid,
                seq,
                args: active.args,
            });
        });
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render every recorded span as a Chrome trace-event JSON array, merged
/// across threads in `(timestamp, sequence)` order. Timestamps and durations
/// are microseconds with a forced decimal point. The array always parses as
/// JSON, even when empty.
pub fn export_json() -> String {
    let mut events: Vec<Event> = Vec::new();
    for buf in sinks().lock().expect("trace sinks lock").iter() {
        events.extend(buf.lock().expect("trace buffer lock").iter().cloned());
    }
    events.sort_by_key(|e| (e.ts_ns, e.seq));
    let mut out = String::from("[\n");
    let dropped = dropped_count();
    if dropped > 0 {
        let _ = write!(
            out,
            "{{\"name\":\"trace_dropped_events\",\"cat\":\"meta\",\"ph\":\"X\",\
             \"ts\":0.000,\"dur\":0.000,\"pid\":1,\"tid\":0,\
             \"args\":{{\"dropped\":\"{dropped}\"}}}}"
        );
        if !events.is_empty() {
            out.push_str(",\n");
        }
    }
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{}",
            json_escape(e.name),
            json_escape(e.cat),
            e.ts_ns as f64 / 1_000.0,
            e.dur_ns as f64 / 1_000.0,
            e.tid
        );
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Write the exported JSON to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, export_json())
}

/// Write the exported JSON to the [`configure`]d path, if one is set.
/// Returns whether a file was written. Flushing is explicit (examples,
/// tests and benches call it once at the end) so per-query work never pays
/// file I/O.
pub fn flush() -> std::io::Result<bool> {
    match configured_path() {
        Some(path) => write_to(&path).map(|()| true),
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and event buffers are process-global, so the trace
    // tests run as ONE test body to avoid racing each other (the rest of
    // the suite never enables tracing).
    #[test]
    fn spans_record_merge_and_export() {
        // Disabled: no allocation, no recording.
        assert!(!enabled());
        let before = event_count();
        {
            let _s = span("test", "disabled_span").arg("k", 1);
        }
        assert_eq!(event_count(), before);

        enable();
        {
            let _outer = span("test", "outer").arg("morsel", 3);
            let _inner = span("test", "inner");
        }
        {
            let _second = span("test", "second").arg("quote", "a\"b");
        }
        disable();
        assert!(event_count() >= before + 3);

        let json = export_json();
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"morsel\":\"3\""));
        assert!(json.contains("a\\\"b"));
        // ts/dur carry a forced decimal point so f64 parsers accept them.
        assert!(json.contains("\"ts\":"));
        let ts_field = json.split("\"ts\":").nth(1).expect("ts present");
        assert!(ts_field.split(',').next().expect("value").contains('.'));

        // Ordering: events come out sorted by (ts, seq) — the inner span
        // starts after the outer one.
        let outer_at = json.find("\"name\":\"outer\"").unwrap();
        let inner_at = json.find("\"name\":\"inner\"").unwrap();
        assert!(outer_at < inner_at);

        // configure() remembers the flush target and enables recording.
        configure("/tmp/graceful-obs-test-trace.json");
        assert!(enabled());
        assert_eq!(configured_path().as_deref(), Some("/tmp/graceful-obs-test-trace.json"));
        disable();

        clear();
        assert_eq!(event_count(), 0);
        let empty = export_json();
        assert!(empty.contains('[') && empty.contains(']'));
    }
}
