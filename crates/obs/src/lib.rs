//! In-tree observability for the GRACEFUL reproduction: a typed metrics
//! registry and lightweight span tracing, shared by every layer (runtime
//! pool, execution engine, UDF backends, trainer).
//!
//! The crate depends only on std and the in-tree serde shims and sits
//! *below* `graceful-common` in the crate graph, so any crate in the
//! workspace can record into it without cycles.
//!
//! # Design constraints
//!
//! * **Never on a result path.** Metrics and spans are write-only from the
//!   engine's perspective: nothing in the workspace reads them to make a
//!   decision, so they can never affect the bit-identity contract
//!   (`tests/parallel_determinism.rs` enforces this end to end).
//! * **Near-zero cost when disabled.** Span construction is a single relaxed
//!   atomic load when tracing is off; counters are relaxed atomic adds;
//!   histograms cap their retained samples so long corpus builds cannot grow
//!   memory without bound. The `obs_overhead` bench pins the disabled
//!   overhead under 2%.
//! * **Deterministic merge.** Spans are recorded into per-thread buffers and
//!   merged on export by (timestamp, sequence number); per-morsel spans carry
//!   their morsel index as an argument so worker interleavings remain
//!   attributable.
//!
//! See [`registry`] for counters/gauges/histograms with a snapshot/diff API,
//! [`trace`] for scoped spans exported as Chrome-trace-event JSON
//! (loadable in `chrome://tracing` or <https://ui.perfetto.dev>), and
//! [`flight`] for the per-query JSONL flight recorder capturing predicted
//! vs. actual cardinalities/costs with their q-errors.

pub mod flight;
pub mod registry;
pub mod trace;
