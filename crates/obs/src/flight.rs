//! The query flight recorder: one durable JSONL record per executed query.
//!
//! Where [`crate::trace`] answers *where did the time go?* and
//! [`crate::registry`] answers *how much, in aggregate?*, the flight
//! recorder answers *what exactly did this query do, and how wrong were the
//! estimates?* — durably enough to replay the records as training labels
//! (the online-learning on-ramp: `graceful_core::telemetry` converts flight
//! records back into fresh labelled corpus rows).
//!
//! Each executed query appends one [`FlightRecord`]: the stable plan
//! fingerprint, the exec options it ran under, wall time, the per-operator
//! profile (estimated vs actual rows and work with their q-errors), and —
//! when a model prediction was staged — the predicted whole-query cost next
//! to the simulated truth. Records are serialized through the serde shim at
//! record time with **stable field order** (struct declaration order), so
//! the JSONL output is deterministic for a given sequence of runs and every
//! line parses back into the exact same `FlightRecord`, float bits included.
//!
//! Like the span tracer, the recorder is process-global, write-only and
//! explicitly **outside the bit-identity contract**: recording is a single
//! relaxed atomic load when disabled, a cap of [`RECORD_CAP`] records bounds
//! memory (drops are counted in [`dropped_count`] and the registry counter
//! `flight.dropped_records`), and flushing to the `GRACEFUL_FLIGHT` path is
//! explicit — per-query work never pays file I/O.

use crate::registry::{counter, Counter};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Maximum records retained process-wide (64 Ki). Past the cap queries still
/// run normally but are not recorded; [`dropped_count`] and the registry
/// counter `flight.dropped_records` say how many went missing.
pub const RECORD_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Per-operator slice of a [`FlightRecord`], aligned with `plan.ops`.
///
/// `est_rows`/`est_work` are the pre-execution predictions (cardinality from
/// the annotating estimator, work from the closed-form operator cost model);
/// `rows`/`work` are the measured truth from the run. The q-errors are
/// computed at record time with `graceful_common::metrics::q_error` and kept
/// in the record so offline consumers never have to re-derive the clamping —
/// though recomputing from the stored est/actual pairs reproduces them bit
/// for bit (floats round-trip exactly through the serde shim).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightOp {
    /// Human-readable operator description (kind plus key argument).
    pub op: String,
    /// Operator kind (`SCAN`, `FILTER`, `JOIN`, `UDF_FILTER`, `UDF_PROJECT`,
    /// `AGG`).
    pub kind: String,
    /// Estimated output cardinality (0.0 when the plan was not annotated).
    pub est_rows: f64,
    /// Actual output cardinality.
    pub rows: u64,
    /// Cardinality q-error, `None` when the plan carried no estimates.
    pub card_q: Option<f64>,
    /// Predicted work units from the closed-form operator cost model.
    pub est_work: f64,
    /// Accounted work units actually spent.
    pub work: f64,
    /// Cost q-error, `None` when the plan carried no estimates.
    pub cost_q: Option<f64>,
    /// Wall self-time in nanoseconds (0 when profiling was off).
    pub wall_ns: u64,
    /// Batches processed (0 when profiling was off).
    pub batches: u64,
}

/// One flight-recorder record: everything needed to replay a query run as a
/// labelled observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Seed passed to the executor (keys the deterministic jitter).
    pub seed: u64,
    /// Stable plan fingerprint (`graceful_plan::Plan::fingerprint_hex`).
    pub plan: String,
    /// Executor mode (`Pipeline` / `Materialize`).
    pub mode: String,
    /// UDF backend (`TreeWalk` / `Vm` / `Simd`).
    pub backend: String,
    /// Worker-thread budget.
    pub threads: u64,
    /// Rows per morsel.
    pub morsel: u64,
    /// Rows per UDF VM batch.
    pub udf_batch: u64,
    /// Total wall time in nanoseconds (0 when profiling was off).
    pub wall_ns: u64,
    /// Simulated runtime in nanoseconds (the contracted label).
    pub runtime_ns: f64,
    /// Aggregate result value.
    pub agg_value: f64,
    /// Rows fed into the UDF operator.
    pub udf_rows: u64,
    /// Staged model prediction of the whole-query cost, if one was wired in
    /// (see [`stage_prediction`]).
    pub model_pred_ns: Option<f64>,
    /// Q-error of the staged model prediction against `runtime_ns`.
    pub model_q: Option<f64>,
    /// Per-operator slices, aligned with `plan.ops`.
    pub ops: Vec<FlightOp>,
}

impl FlightRecord {
    /// Index of the worst-estimated operator (largest cardinality q-error),
    /// `None` when the record carries no estimates.
    pub fn worst_estimated_op(&self) -> Option<usize> {
        let mut worst: Option<(usize, f64)> = None;
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(q) = op.card_q {
                if worst.is_none_or(|(_, w)| q > w) {
                    worst = Some((i, q));
                }
            }
        }
        worst.map(|(i, _)| i)
    }

    /// Render the record as an aligned `EXPLAIN ANALYZE` report: per
    /// operator, the predicted cardinality/cost next to the measured truth
    /// with their q-errors, the worst-estimated operator marked. This is
    /// *the* explain-analyze renderer — the live path builds a
    /// `FlightRecord` and renders it, so a record parsed back from the
    /// JSONL reproduces the report bit for bit.
    pub fn render_analyze(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "EXPLAIN ANALYZE  mode={} backend={} threads={} morsel={} udf_batch={} \
             wall={} simulated={}",
            self.mode,
            self.backend,
            self.threads,
            self.morsel,
            self.udf_batch,
            fmt_ns(self.wall_ns),
            fmt_ns(self.runtime_ns as u64),
        );
        if let (Some(pred), Some(q)) = (self.model_pred_ns, self.model_q) {
            let _ = writeln!(
                s,
                "  model predicted {} vs simulated {}  (Q-error {q:.3})",
                fmt_ns(pred as u64),
                fmt_ns(self.runtime_ns as u64),
            );
        }
        let worst = self.worst_estimated_op();
        let name_w = self.ops.iter().map(|o| o.op.len()).max().unwrap_or(4).max(4);
        let _ = writeln!(
            s,
            "  {:>2}  {:<name_w$}  {:>12}  {:>12}  {:>8}  {:>14}  {:>14}  {:>8}",
            "#", "op", "est rows", "rows", "q(card)", "est work", "work", "q(cost)",
        );
        for (i, op) in self.ops.iter().enumerate() {
            let card_q = op.card_q.map_or_else(|| "-".to_string(), |q| format!("{q:.2}"));
            let cost_q = op.cost_q.map_or_else(|| "-".to_string(), |q| format!("{q:.2}"));
            let mark = if worst == Some(i) { "  <- worst estimate" } else { "" };
            let _ = writeln!(
                s,
                "  {i:>2}  {:<name_w$}  {:>12.0}  {:>12}  {:>8}  {:>14.1}  {:>14.1}  {:>8}{mark}",
                op.op, op.est_rows, op.rows, card_q, op.est_work, op.work, cost_q,
            );
        }
        s
    }
}

fn buffer() -> &'static Mutex<Vec<String>> {
    static BUF: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn configured() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

struct FlightMetrics {
    records: Counter,
    dropped: Counter,
}

fn metrics() -> &'static FlightMetrics {
    static METRICS: OnceLock<FlightMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FlightMetrics {
        records: counter("flight.records"),
        dropped: counter("flight.dropped_records"),
    })
}

thread_local! {
    /// A whole-query cost prediction staged for the *next* run on this
    /// thread (set by the model-aware wrapper, consumed by the executor's
    /// recording hook). Thread-local so concurrent sessions never attach a
    /// prediction to each other's records.
    static STAGED_PRED: Cell<Option<f64>> = const { Cell::new(None) };
}

/// Whether flight recording is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn flight recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn flight recording off (already-recorded records are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Enable recording and remember `path` as the default [`flush`] target
/// (the `GRACEFUL_FLIGHT=path` knob resolves to this).
pub fn configure(path: &str) {
    *configured().lock().expect("flight path lock") = Some(path.to_string());
    enable();
}

/// The path set by [`configure`], if any.
pub fn configured_path() -> Option<String> {
    configured().lock().expect("flight path lock").clone()
}

/// Records kept so far (post-cap drops excluded).
pub fn record_count() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

/// Records dropped because [`RECORD_CAP`] was reached.
pub fn dropped_count() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Discard all recorded records (the enabled flag and configured path are
/// untouched). Benches use this between measured sections.
pub fn clear() {
    buffer().lock().expect("flight buffer lock").clear();
    RECORDED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

/// Stage a whole-query cost prediction for the next run on this thread; the
/// executor's recording hook consumes it into that run's record. A staged
/// prediction not consumed by a run is overwritten by the next stage.
pub fn stage_prediction(pred_ns: f64) {
    STAGED_PRED.with(|c| c.set(Some(pred_ns)));
}

/// Consume the prediction staged on this thread, if any.
pub fn take_staged_prediction() -> Option<f64> {
    STAGED_PRED.with(Cell::take)
}

/// Append one record. Each record serializes to a single JSONL line at
/// record time (so the buffer holds finished lines and export is a cheap
/// join), under the [`RECORD_CAP`]; past the cap the record is dropped and
/// counted. Appends are atomic per record — concurrent sessions interleave
/// whole lines, never fragments.
pub fn record(rec: &FlightRecord) {
    if !enabled() {
        return;
    }
    if RECORDED.fetch_add(1, Ordering::Relaxed) >= RECORD_CAP as u64 {
        RECORDED.fetch_sub(1, Ordering::Relaxed);
        DROPPED.fetch_add(1, Ordering::Relaxed);
        metrics().dropped.incr();
        return;
    }
    metrics().records.incr();
    let line = serde_json::to_string(rec).expect("flight record serializes");
    buffer().lock().expect("flight buffer lock").push(line);
}

/// Render every recorded record as JSONL (one JSON object per line, in
/// record order). Empty when nothing was recorded.
pub fn export_jsonl() -> String {
    let buf = buffer().lock().expect("flight buffer lock");
    let mut out = String::with_capacity(buf.iter().map(|l| l.len() + 1).sum());
    for line in buf.iter() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Parse a JSONL export back into records — the reader half of the
/// recorder. Blank lines are skipped; a malformed line is an error naming
/// its (1-based) line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<FlightRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: FlightRecord = serde_json::from_str(line)
            .map_err(|e| format!("flight record on line {} is malformed: {e}", i + 1))?;
        records.push(rec);
    }
    Ok(records)
}

/// Write the exported JSONL to `path`.
pub fn write_to(path: &str) -> std::io::Result<()> {
    std::fs::write(path, export_jsonl())
}

/// Write the exported JSONL to the [`configure`]d path, if one is set.
/// Returns whether a file was written. Like the span tracer, flushing is
/// explicit and idempotent — the buffer is retained, so flushing twice
/// writes the same bytes.
pub fn flush() -> std::io::Result<bool> {
    match configured_path() {
        Some(path) => write_to(&path).map(|()| true),
        None => Ok(false),
    }
}

/// Format nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> FlightRecord {
        FlightRecord {
            seed,
            plan: format!("{seed:016x}"),
            mode: "Pipeline".into(),
            backend: "Vm".into(),
            threads: 2,
            morsel: 64,
            udf_batch: 37,
            wall_ns: 1_500,
            runtime_ns: 123_456.75,
            agg_value: 42.5,
            udf_rows: 10,
            model_pred_ns: Some(110_000.5),
            model_q: Some(1.12),
            ops: vec![
                FlightOp {
                    op: "SCAN t".into(),
                    kind: "SCAN".into(),
                    est_rows: 100.0,
                    rows: 100,
                    card_q: Some(1.0),
                    est_work: 2_000.0,
                    work: 2_000.0,
                    cost_q: Some(1.0),
                    wall_ns: 900,
                    batches: 2,
                },
                FlightOp {
                    op: "AGG COUNT(*)".into(),
                    kind: "AGG".into(),
                    est_rows: 1.0,
                    rows: 1,
                    card_q: Some(1.5),
                    est_work: 900.0,
                    work: 450.25,
                    cost_q: Some(2.0),
                    wall_ns: 600,
                    batches: 1,
                },
            ],
        }
    }

    // The enabled flag, buffer and counters are process-global, so the
    // flight tests run as ONE test body to avoid racing each other (the
    // rest of this crate's suite never enables the recorder).
    #[test]
    fn records_roundtrip_render_and_cap() {
        // Disabled: recording is a no-op.
        assert!(!enabled());
        let before = record_count();
        record(&sample(1));
        assert_eq!(record_count(), before);

        enable();
        record(&sample(1));
        record(&sample(2));
        disable();
        assert!(record_count() >= before + 2);

        // JSONL round-trip is exact, float bits included.
        let jsonl = export_jsonl();
        let parsed = parse_jsonl(&jsonl).expect("export parses");
        let one = parsed.iter().find(|r| r.seed == 1).expect("record 1 present");
        assert_eq!(one, &sample(1));
        assert_eq!(one.runtime_ns.to_bits(), sample(1).runtime_ns.to_bits());

        // Malformed lines fail with their line number.
        let err = parse_jsonl("{\"seed\":}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");

        // The renderer marks the worst-estimated operator.
        let text = one.render_analyze();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("model predicted"), "{text}");
        assert_eq!(one.worst_estimated_op(), Some(1));
        let worst_line = text.lines().find(|l| l.contains("<- worst estimate")).expect("marked");
        assert!(worst_line.contains("AGG COUNT(*)"), "{worst_line}");
        // A parsed record renders the identical report.
        assert_eq!(
            text,
            parse_jsonl(&serde_json::to_string(one).unwrap()).unwrap()[0].render_analyze()
        );

        // configure() remembers the flush target and enables recording.
        configure("/tmp/graceful-obs-test-flight.jsonl");
        assert!(enabled());
        assert_eq!(configured_path().as_deref(), Some("/tmp/graceful-obs-test-flight.jsonl"));
        disable();

        // Staged predictions are consumed exactly once.
        stage_prediction(99.0);
        assert_eq!(take_staged_prediction(), Some(99.0));
        assert_eq!(take_staged_prediction(), None);

        // The cap drops (and counts) overflow records.
        enable();
        let already = record_count();
        for s in 0..(RECORD_CAP as u64 + 10 - already) {
            record(&sample(s + 1000));
        }
        disable();
        assert_eq!(record_count(), RECORD_CAP as u64);
        assert!(dropped_count() >= 10, "dropped {}", dropped_count());
        assert!(crate::registry::snapshot().counter("flight.dropped_records") >= 10);

        clear();
        assert_eq!(record_count(), 0);
        assert_eq!(dropped_count(), 0);
        assert!(export_jsonl().is_empty());
    }

    #[test]
    fn fmt_ns_picks_adaptive_units() {
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
