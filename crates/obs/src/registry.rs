//! The process-wide metrics registry: named counters, gauges and
//! histograms with a snapshot/diff API.
//!
//! Handles are cheap clones over shared atomics; hot paths should resolve
//! them once (e.g. in a `OnceLock`) and reuse them. All metrics are
//! process-global and monotone-ish (counters only grow), so concurrent tests
//! assert *deltas* between [`snapshot`]s rather than absolute values.
//!
//! Histogram percentiles use the exact algorithm of
//! `graceful_common::metrics::percentile` (sort, rank `q·(n−1)`, linear
//! interpolation) over the retained samples, so registry `p95`/`p99` agree
//! bit-for-bit with the paper-metrics helpers on identical samples — a unit
//! test in `graceful-common` cross-checks the two implementations.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Retained raw samples per histogram. Recording keeps exact `count`, `sum`,
/// `min` and `max` forever but stops storing individual samples past this
/// cap, bounding memory on arbitrarily long runs; percentiles are computed
/// over the retained prefix.
pub const HISTOGRAM_RETAINED: usize = 65_536;

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (an `f64` stored as bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistState {
    samples: Vec<f64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A sample distribution summarised by count/sum/min/max and interpolated
/// percentiles over its retained samples.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<HistState>>);

impl Histogram {
    /// Record one sample. Non-finite values are counted but excluded from
    /// the retained set (they would poison the percentile sort).
    pub fn record(&self, v: f64) {
        let mut st = self.0.lock().expect("histogram lock");
        if st.count == 0 || v < st.min {
            st.min = v;
        }
        if st.count == 0 || v > st.max {
            st.max = v;
        }
        st.count += 1;
        st.sum += v;
        if v.is_finite() && st.samples.len() < HISTOGRAM_RETAINED {
            st.samples.push(v);
        }
    }

    /// Samples recorded so far (including any past the retention cap).
    pub fn count(&self) -> u64 {
        self.0.lock().expect("histogram lock").count
    }

    /// Summarise the distribution; `None` when nothing was recorded yet.
    pub fn summary(&self) -> Option<HistogramSummary> {
        let st = self.0.lock().expect("histogram lock");
        if st.count == 0 {
            return None;
        }
        let (p50, p95, p99) = if st.samples.is_empty() {
            (f64::NAN, f64::NAN, f64::NAN)
        } else {
            (
                percentile(&st.samples, 0.5),
                percentile(&st.samples, 0.95),
                percentile(&st.samples, 0.99),
            )
        };
        Some(HistogramSummary {
            count: st.count,
            retained: st.samples.len() as u64,
            sum: st.sum,
            mean: st.sum / st.count as f64,
            min: st.min,
            max: st.max,
            p50,
            p95,
            p99,
        })
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded in total.
    pub count: u64,
    /// Samples retained for percentile computation (≤ [`HISTOGRAM_RETAINED`]).
    pub retained: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

/// Percentile (inclusive, nearest-rank with linear interpolation) of a
/// sample — the exact algorithm of `graceful_common::metrics::percentile`,
/// duplicated here because this crate sits below `graceful-common` in the
/// dependency graph. A test over there asserts the two agree bit-for-bit.
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// The counter registered under `name` (created on first use). Resolve once
/// and reuse the handle on hot paths.
pub fn counter(name: &str) -> Counter {
    let mut map = global().counters.lock().expect("registry lock");
    map.entry(name.to_string()).or_insert_with(|| Counter(Arc::new(AtomicU64::new(0)))).clone()
}

/// The gauge registered under `name` (created on first use).
pub fn gauge(name: &str) -> Gauge {
    let mut map = global().gauges.lock().expect("registry lock");
    map.entry(name.to_string())
        .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        .clone()
}

/// The histogram registered under `name` (created on first use).
pub fn histogram(name: &str) -> Histogram {
    let mut map = global().histograms.lock().expect("registry lock");
    map.entry(name.to_string())
        .or_insert_with(|| Histogram(Arc::new(Mutex::new(HistState::default()))))
        .clone()
}

/// Point-in-time view of every registered metric.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter deltas since `earlier` (saturating, so a metric born between
    /// the snapshots reports its full value). Gauges and histograms carry
    /// the *later* state — they summarise, they don't subtract.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (k.clone(), v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Counter value under `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Human-readable multi-line rendering, sorted by metric name.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter   {k} = {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge     {k} = {v}\n"));
        }
        for (k, s) in &self.histograms {
            out.push_str(&format!(
                "histogram {k}: n={} mean={:.1} p50={:.1} p95={:.1} p99={:.1} max={:.1}\n",
                s.count, s.mean, s.p50, s.p95, s.p99, s.max
            ));
        }
        out
    }
}

/// Snapshot every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = global();
    let counters = {
        let map = reg.counters.lock().expect("registry lock");
        map.iter().map(|(k, c)| (k.clone(), c.get())).collect()
    };
    let gauges = {
        let map = reg.gauges.lock().expect("registry lock");
        map.iter().map(|(k, g)| (k.clone(), g.get())).collect()
    };
    let histograms = {
        let map = reg.histograms.lock().expect("registry lock");
        map.iter().filter_map(|(k, h)| h.summary().map(|s| (k.clone(), s))).collect()
    };
    MetricsSnapshot { counters, gauges, histograms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let c = counter("test.registry.counter");
        let before = snapshot();
        c.add(5);
        c.incr();
        let after = snapshot();
        assert_eq!(after.diff(&before).counter("test.registry.counter"), 6);
        // Same name resolves to the same underlying atomic.
        assert_eq!(counter("test.registry.counter").get(), c.get());
    }

    #[test]
    fn gauges_hold_last_value() {
        let g = gauge("test.registry.gauge");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(snapshot().gauges["test.registry.gauge"], -1.0);
    }

    #[test]
    fn histogram_summary_matches_percentile_algorithm() {
        let h = histogram("test.registry.hist");
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &s in &samples {
            h.record(s);
        }
        let s = h.summary().expect("recorded");
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50.to_bits(), percentile(&samples, 0.5).to_bits());
        assert_eq!(s.p95.to_bits(), percentile(&samples, 0.95).to_bits());
        assert_eq!(s.p99.to_bits(), percentile(&samples, 0.99).to_bits());
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_caps_retained_samples() {
        let h = histogram("test.registry.capped");
        for i in 0..(HISTOGRAM_RETAINED + 10) {
            h.record(i as f64);
        }
        let s = h.summary().expect("recorded");
        assert_eq!(s.count, (HISTOGRAM_RETAINED + 10) as u64);
        assert_eq!(s.retained, HISTOGRAM_RETAINED as u64);
        // min/max/sum stay exact past the cap.
        assert_eq!(s.max, (HISTOGRAM_RETAINED + 9) as f64);
    }

    #[test]
    fn empty_histogram_has_no_summary() {
        assert!(histogram("test.registry.empty").summary().is_none());
        assert!(!snapshot().histograms.contains_key("test.registry.empty"));
    }

    #[test]
    fn render_mentions_every_kind() {
        counter("test.render.c").incr();
        gauge("test.render.g").set(1.0);
        histogram("test.render.h").record(3.0);
        let text = snapshot().render();
        assert!(text.contains("test.render.c"));
        assert!(text.contains("test.render.g"));
        assert!(text.contains("test.render.h"));
    }
}
