//! Deterministic morsel-driven parallel runtime.
//!
//! Every parallel loop in the reproduction — corpus labelling across 20
//! databases, cross-validation folds, per-operator row processing in the
//! execution engine — goes through the [`Pool`] in this crate. The design
//! goal is the one the experiments cannot live without: **output is
//! bit-identical for any thread count**. The paper's 142-hour labelling run
//! is embarrassingly parallel, but a reproduction that changed its labels
//! when `GRACEFUL_THREADS` changed would be unverifiable.
//!
//! # How determinism is preserved
//!
//! Work is split into *morsels* — fixed index ranges whose boundaries depend
//! only on the input size and the configured morsel size, never on the
//! thread count (the morsel-driven scheme of Leis et al., adapted to a
//! deterministic merge). Workers pull morsel indices from a shared atomic
//! cursor (the chunked work queue), so scheduling is dynamic and
//! load-balanced, but every result is placed into its morsel's slot and
//! merged **in morsel-index order** on the caller. Floating-point
//! accumulations, row concatenations and RNG-derived labels therefore see
//! the exact same grouping and order whether the pool runs on one thread or
//! sixty-four.
//!
//! Two rules make this work for callers:
//!
//! 1. per-morsel computation must depend only on the morsel index and the
//!    shared inputs (per-worker scratch state is fine; per-*worker* results
//!    are not), and
//! 2. cross-morsel combination happens exclusively in the ordered merge.
//!
//! # Fork/join and nesting
//!
//! Regions fork with [`std::thread::scope`], so closures may borrow from the
//! caller and panics propagate on join. A region nested inside a pool worker
//! (e.g. the executor parallelising a scan while corpus building already
//! runs one dataset per worker) runs inline on that worker — nesting never
//! oversubscribes the machine, and because inline and forked execution share
//! the same morsel structure, it never changes results either.
//!
//! # Observability
//!
//! The pool records dispatch counters (`pool.regions`, `pool.inline_regions`,
//! `pool.morsels`, `pool.worker_launches`) and per-region histograms
//! (`pool.morsels_per_worker`, `pool.worker_start_wait_ns` — how long each
//! scoped worker took to start pulling morsels after the region forked) into
//! the [`graceful_obs::registry`]; the legacy
//! [`graceful_common::metrics::par`] snapshot API reads the same atomics.
//! When span tracing is on ([`graceful_obs::trace`]), each region and each
//! worker emit spans with their morsel counts as arguments. All of it is
//! write-only: nothing here reads a metric to make a decision, so results
//! stay bit-identical whether observability is on or off.

use graceful_common::config;
use graceful_obs::registry::{counter, histogram, Counter, Histogram};
use graceful_obs::trace;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Registry handles resolved once; the pool's hot path only touches relaxed
/// atomics after that.
struct PoolMetrics {
    regions: Counter,
    inline_regions: Counter,
    morsels: Counter,
    worker_launches: Counter,
    morsels_per_worker: Histogram,
    worker_start_wait_ns: Histogram,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        regions: counter("pool.regions"),
        inline_regions: counter("pool.inline_regions"),
        morsels: counter("pool.morsels"),
        worker_launches: counter("pool.worker_launches"),
        morsels_per_worker: histogram("pool.morsels_per_worker"),
        worker_start_wait_ns: histogram("pool.worker_start_wait_ns"),
    })
}

thread_local! {
    static IN_POOL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// True while the current thread is executing morsels for some [`Pool`]
/// region; nested regions run inline instead of forking again.
pub fn in_parallel_region() -> bool {
    IN_POOL_REGION.with(Cell::get)
}

/// Marks the current thread as inside a pool region for the guard's
/// lifetime, restoring the previous state on drop (also on panic).
struct RegionGuard {
    was: bool,
}

impl RegionGuard {
    fn enter() -> Self {
        RegionGuard { was: IN_POOL_REGION.with(|c| c.replace(true)) }
    }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_POOL_REGION.with(|c| c.set(was));
    }
}

/// A morsel-driven worker pool.
///
/// The handle is cheap (a thread budget); each parallel region forks scoped
/// workers, drains the morsel queue, and joins. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// A pool with an explicit thread budget (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// A pool sized from `GRACEFUL_THREADS` (default: all cores). Invalid
    /// values are a hard error — see [`config::threads_from_env`].
    pub fn from_env() -> Self {
        Pool::new(config::threads_from_env())
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of morsels needed to cover `n_items` at `morsel_rows` each.
    pub fn morsel_count(n_items: usize, morsel_rows: usize) -> usize {
        n_items.div_ceil(morsel_rows.max(1))
    }

    /// Index range of morsel `m` over `n_items` at `morsel_rows` each.
    pub fn morsel_range(m: usize, n_items: usize, morsel_rows: usize) -> Range<usize> {
        let morsel_rows = morsel_rows.max(1);
        let start = m * morsel_rows;
        start..((start + morsel_rows).min(n_items))
    }

    /// The core primitive: run `f` over every morsel index in `0..n_morsels`
    /// and return the results **in morsel order**.
    ///
    /// `init` builds one scratch state per worker (an interpreter, a batch
    /// VM with its preallocated register file, a reusable buffer); each
    /// worker reuses its state across all morsels it pulls. `f` must derive
    /// its output from the morsel index and shared inputs only, so the
    /// returned vector is independent of scheduling.
    pub fn map_init<S, R, I, F>(&self, n_morsels: usize, init: I, f: F) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        let metrics = pool_metrics();
        let workers = self.threads.min(n_morsels);
        if workers <= 1 || in_parallel_region() {
            metrics.inline_regions.incr();
            metrics.morsels.add(n_morsels as u64);
            let _span = trace::span("pool", "region_inline").arg("morsels", n_morsels);
            // The inline path is still a pool region: nested pools (e.g. an
            // executor inside a 1-worker corpus build) must also run inline,
            // so a pinned single-thread pool really is single-threaded.
            let _guard = RegionGuard::enter();
            let mut state = init();
            return (0..n_morsels).map(|m| f(&mut state, m)).collect();
        }
        metrics.regions.incr();
        metrics.morsels.add(n_morsels as u64);
        metrics.worker_launches.add(workers as u64);
        let _span = trace::span("pool", "region").arg("morsels", n_morsels).arg("workers", workers);
        let forked_at = Instant::now();
        let cursor = AtomicUsize::new(0);
        let mut out: Vec<Option<R>> = (0..n_morsels).map(|_| None).collect();
        std::thread::scope(|s| {
            // Shared state reaches the `move` closures as copied references,
            // so each worker borrows rather than consumes it.
            let (init, f, cursor, forked_at) = (&init, &f, &cursor, &forked_at);
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    s.spawn(move || {
                        metrics.worker_start_wait_ns.record(forked_at.elapsed().as_nanos() as f64);
                        IN_POOL_REGION.with(|c| c.set(true));
                        let worker_span = trace::span("pool", "worker").arg("worker", w);
                        let mut state = init();
                        let mut produced = Vec::new();
                        loop {
                            let m = cursor.fetch_add(1, Ordering::Relaxed);
                            if m >= n_morsels {
                                break;
                            }
                            let _morsel_span = trace::span("pool", "morsel").arg("morsel", m);
                            produced.push((m, f(&mut state, m)));
                        }
                        metrics.morsels_per_worker.record(produced.len() as f64);
                        drop(worker_span.arg("morsels_pulled", produced.len()));
                        produced
                    })
                })
                .collect();
            for h in handles {
                for (m, r) in h.join().expect("pool worker panicked") {
                    out[m] = Some(r);
                }
            }
        });
        out.into_iter().map(|r| r.expect("every morsel executed")).collect()
    }

    /// Map each item of a slice (one morsel per item), results in item
    /// order. The fork/join replacement for ad-hoc `thread::scope` blocks.
    pub fn ordered_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items.len(), || (), |_, m| f(m, &items[m]))
    }

    /// Ordered reduce: map every morsel in parallel (with per-worker state),
    /// then fold the per-morsel results **in morsel-index order** on the
    /// calling thread. This is how float totals (`CostCounter` work sums),
    /// kept-row concatenations and labels merge deterministically.
    pub fn ordered_reduce<S, R, A, I, F, G>(
        &self,
        n_morsels: usize,
        init: I,
        map: F,
        acc: A,
        fold: G,
    ) -> A
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.map_init(n_morsels, init, map).into_iter().fold(acc, fold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_item_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.ordered_map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn morsel_geometry_covers_everything_exactly_once() {
        for (n, morsel) in [(0usize, 4usize), (1, 4), (4, 4), (5, 4), (1000, 7)] {
            let count = Pool::morsel_count(n, morsel);
            let mut covered = 0;
            for m in 0..count {
                let r = Pool::morsel_range(m, n, morsel);
                assert_eq!(r.start, covered);
                assert!(r.end > r.start && r.end - r.start <= morsel);
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // Awkward summands so that regrouping would actually change bits.
        let xs: Vec<f64> =
            (0..10_000).map(|i| ((i * 2654435761u64 as usize) as f64).sqrt()).collect();
        let sum_with = |threads: usize| {
            Pool::new(threads).ordered_reduce(
                Pool::morsel_count(xs.len(), 64),
                || (),
                |_, m| Pool::morsel_range(m, xs.len(), 64).map(|i| xs[i]).sum::<f64>(),
                0.0f64,
                |a, b| a + b,
            )
        };
        let reference = sum_with(1);
        for threads in [2, 3, 4, 16] {
            assert_eq!(sum_with(threads).to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts the morsels it executed in its own state; the
        // total over all workers must cover every morsel exactly once, which
        // the ordered output already proves — here we additionally check the
        // init count never exceeds the thread budget.
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let pool = Pool::new(4);
        let out = pool.map_init(
            100,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, m| {
                *seen += 1;
                m
            },
        );
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(inits.load(Ordering::Relaxed) <= 4);
    }

    #[test]
    fn nested_regions_run_inline_without_deadlock() {
        let pool = Pool::new(4);
        let out = pool.ordered_map(&[10usize, 20, 30], |_, &x| {
            assert!(in_parallel_region());
            // A nested region must complete inline on this worker.
            let inner: Vec<usize> = Pool::new(4).map_init(x, || (), |_, m| m);
            inner.len()
        });
        assert_eq!(out, vec![10, 20, 30]);
        assert!(!in_parallel_region());
    }

    #[test]
    fn inline_regions_also_mark_the_thread() {
        // A pinned 1-worker pool must keep nested pools inline too, so the
        // inline path marks the thread exactly like a forked worker.
        let pool = Pool::new(1);
        let seen = pool.map_init(2, || (), |_, _| in_parallel_region());
        assert_eq!(seen, vec![true, true]);
        assert!(!in_parallel_region());
    }

    #[test]
    fn zero_and_single_morsel_regions() {
        let pool = Pool::new(8);
        let empty: Vec<usize> = pool.map_init(0, || (), |_, m| m);
        assert!(empty.is_empty());
        let one = pool.map_init(1, || (), |_, m| m + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn worker_panics_propagate() {
        Pool::new(2).map_init(
            8,
            || (),
            |_, m| {
                if m == 5 {
                    panic!("boom");
                }
                m
            },
        );
    }
}
