//! Construction and analysis of the transformed UDF DAG.
//!
//! [`build_dag`] lowers a parsed UDF into the acyclic single-statement graph
//! of Figure 2 ③: one `INV` node, one `COMP` node per statement, `BRANCH`
//! nodes with true/false edges, loops encoded as `LOOP … LOOP_END` with a
//! residual shortcut edge, and a single `RET` sink that every control path
//! reaches. Node indices are created in topological order by construction.
//!
//! [`UdfDag::annotate_rows`] implements the row-count annotation of Section
//! III-B: control paths are enumerated (residual edges excluded, footnote 4),
//! a caller-supplied estimator assigns each path a probability from its
//! branch conditions, and every node receives
//! `in_rows = input_rows · P(node on taken path)`.

use crate::node::{BranchCondInfo, EdgeKind, LoopKindFeat, UdfNode, UdfNodeKind};
use graceful_storage::DataType;
use graceful_udf::ast::{CmpOp, Expr, Stmt, UdfDef};
use graceful_udf::CostWeights;

/// Which graph transformations to apply — the knobs of the ablation study
/// (Figure 7, variants (4) and (5)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagConfig {
    /// Emit explicit `LOOP_END` nodes (ablation variant 4).
    pub loop_end_nodes: bool,
    /// Emit residual `LOOP → LOOP_END` edges (ablation variant 5; requires
    /// `loop_end_nodes`).
    pub residual_loop_edges: bool,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig { loop_end_nodes: true, residual_loop_edges: true }
    }
}

/// One control path through the DAG: the branch decisions taken and the
/// nodes visited.
#[derive(Debug, Clone)]
pub struct BranchPath {
    /// `(condition, taken)` for every BRANCH node on the path. `None` means
    /// the condition is untraceable (estimators fall back to 0.5).
    pub conditions: Vec<(Option<BranchCondInfo>, bool)>,
    /// Node indices visited (in order).
    pub nodes: Vec<usize>,
}

/// The transformed UDF graph.
#[derive(Debug, Clone)]
pub struct UdfDag {
    pub nodes: Vec<UdfNode>,
    pub edges: Vec<(usize, usize, EdgeKind)>,
    /// Index of the INV source node.
    pub inv: usize,
    /// Index of the RET sink node.
    pub ret: usize,
}

/// Builder state.
struct Builder {
    nodes: Vec<UdfNode>,
    edges: Vec<(usize, usize, EdgeKind)>,
    cfg: DagConfig,
    params: Vec<String>,
    weights: CostWeights,
    /// Value of variables currently known to hold an integer literal
    /// (used to estimate `while` trip counts from counting-down patterns).
    literal_env: std::collections::HashMap<String, i64>,
}

/// Lower a UDF into its transformed DAG.
///
/// `arg_types` are the data types of the input columns, positionally
/// matching `udf.params` (they featurize the INV node); `ret_type` is the
/// UDF's output type (featurizes RET).
pub fn build_dag(
    udf: &UdfDef,
    arg_types: &[DataType],
    ret_type: DataType,
    cfg: DagConfig,
) -> UdfDag {
    let mut b = Builder {
        nodes: Vec::new(),
        edges: Vec::new(),
        cfg,
        params: udf.params.clone(),
        weights: CostWeights::default(),
        literal_env: std::collections::HashMap::new(),
    };
    // INV node.
    let mut inv = UdfNode::new(UdfNodeKind::Inv);
    inv.nr_params = udf.params.len() as u8;
    for (i, _) in udf.params.iter().enumerate() {
        if let Some(dt) = arg_types.get(i) {
            inv.in_dts[dt.index()] += 1;
        }
    }
    b.nodes.push(inv);
    let inv_idx = 0;
    // RET node is created lazily but must be the last index; lower the body
    // first with a placeholder, then append RET.
    let dangling = b.lower_block(&udf.body, vec![(inv_idx, EdgeKind::Flow)], false);
    let mut ret = UdfNode::new(UdfNodeKind::Ret);
    ret.out_dt = Some(ret_type);
    b.nodes.push(ret);
    let ret_idx = b.nodes.len() - 1;
    // Implicit `return None` for paths that fall off the end, plus all
    // explicit returns recorded during lowering.
    let pending = b.pending_returns();
    for (src, kind) in dangling.into_iter().chain(pending) {
        b.edges.push((src, ret_idx, kind));
    }
    UdfDag { nodes: b.nodes, edges: b.edges, inv: inv_idx, ret: ret_idx }
}

impl Builder {
    /// Explicit-return edges accumulated during lowering. Stored as edges to
    /// `usize::MAX` and patched when RET is created.
    fn pending_returns(&mut self) -> Vec<(usize, EdgeKind)> {
        let mut out = Vec::new();
        self.edges.retain(|&(src, dst, kind)| {
            if dst == usize::MAX {
                out.push((src, kind));
                false
            } else {
                true
            }
        });
        out
    }

    /// Lower a block; returns the dangling `(node, edge-kind)` pairs that
    /// must connect to whatever comes next.
    fn lower_block(
        &mut self,
        body: &[Stmt],
        mut prev: Vec<(usize, EdgeKind)>,
        in_loop: bool,
    ) -> Vec<(usize, EdgeKind)> {
        for stmt in body {
            if prev.is_empty() {
                break; // unreachable code after return on all paths
            }
            match stmt {
                Stmt::Assign { target, expr } => {
                    if let Expr::Int(n) = expr {
                        self.literal_env.insert(target.clone(), *n);
                    } else {
                        self.literal_env.remove(target);
                    }
                    let idx = self.push_comp(expr, in_loop);
                    self.connect(&prev, idx);
                    prev = vec![(idx, EdgeKind::Flow)];
                }
                Stmt::Return(expr) => {
                    let idx = self.push_comp(expr, in_loop);
                    self.connect(&prev, idx);
                    // Record as pending return edge to the (future) RET node.
                    self.edges.push((idx, usize::MAX, EdgeKind::Flow));
                    prev = Vec::new();
                }
                Stmt::If { cond, then_body, else_body } => {
                    let idx = self.push_branch(cond, in_loop);
                    self.connect(&prev, idx);
                    let then_ends =
                        self.lower_block(then_body, vec![(idx, EdgeKind::BranchTrue)], in_loop);
                    let else_ends = if else_body.is_empty() {
                        vec![(idx, EdgeKind::BranchFalse)]
                    } else {
                        self.lower_block(else_body, vec![(idx, EdgeKind::BranchFalse)], in_loop)
                    };
                    prev = then_ends;
                    prev.extend(else_ends);
                }
                Stmt::For { count, body, .. } => {
                    prev =
                        self.lower_loop(LoopKindFeat::For, estimate_for_iters(count), body, prev);
                }
                Stmt::While { cond, body } => {
                    let iters = self.estimate_while_iters(cond);
                    prev = self.lower_loop(LoopKindFeat::While, iters, body, prev);
                }
            }
        }
        prev
    }

    fn lower_loop(
        &mut self,
        kind: LoopKindFeat,
        nr_iter: f64,
        body: &[Stmt],
        prev: Vec<(usize, EdgeKind)>,
    ) -> Vec<(usize, EdgeKind)> {
        let mut loop_node = UdfNode::new(UdfNodeKind::Loop);
        loop_node.loop_kind = Some(kind);
        loop_node.nr_iter = nr_iter;
        self.nodes.push(loop_node);
        let loop_idx = self.nodes.len() - 1;
        self.connect(&prev, loop_idx);
        let body_ends = self.lower_block(body, vec![(loop_idx, EdgeKind::Flow)], true);
        if self.cfg.loop_end_nodes {
            let mut end = UdfNode::new(UdfNodeKind::LoopEnd);
            end.loop_kind = Some(kind);
            end.nr_iter = nr_iter;
            self.nodes.push(end);
            let end_idx = self.nodes.len() - 1;
            self.connect(&body_ends, end_idx);
            if self.cfg.residual_loop_edges {
                self.edges.push((loop_idx, end_idx, EdgeKind::Residual));
            }
            if body_ends.is_empty() && !self.cfg.residual_loop_edges {
                // Keep the graph connected even when the whole body returns.
                self.edges.push((loop_idx, end_idx, EdgeKind::Flow));
            }
            vec![(end_idx, EdgeKind::Flow)]
        } else {
            // Ablation variant without LOOP_END: the body ends (and the loop
            // head for empty bodies) dangle forward directly.
            let mut ends = body_ends;
            if ends.is_empty() {
                ends.push((loop_idx, EdgeKind::Flow));
            }
            ends
        }
    }

    fn push_comp(&mut self, expr: &Expr, in_loop: bool) -> usize {
        let mut node = UdfNode::new(UdfNodeKind::Comp);
        node.loop_part = in_loop;
        expr.bin_ops(&mut node.ops);
        expr.lib_calls(&mut node.libs);
        node.param_reads = self.param_reads(expr);
        node.static_cost_hint = node.ops.len() as f64 * self.weights.arith
            + node.libs.iter().map(|l| l.base_cost()).sum::<f64>()
            + self.weights.stmt_dispatch;
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn push_branch(&mut self, cond: &Expr, in_loop: bool) -> usize {
        let mut node = UdfNode::new(UdfNodeKind::Branch);
        node.loop_part = in_loop;
        node.cond = trace_condition(cond, &self.params);
        node.cmp_op = first_cmp_op(cond).or(node.cond.as_ref().map(|c| c.op));
        node.param_reads = self.param_reads(cond);
        node.static_cost_hint = self.weights.branch + self.weights.compare;
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn connect(&mut self, prev: &[(usize, EdgeKind)], dst: usize) {
        for &(src, kind) in prev {
            self.edges.push((src, dst, kind));
        }
    }

    /// Indices of UDF parameters referenced by an expression.
    fn param_reads(&self, expr: &Expr) -> Vec<u8> {
        let mut names = Vec::new();
        expr.names(&mut names);
        names
            .into_iter()
            .filter_map(|n| self.params.iter().position(|p| *p == n))
            .map(|i| i as u8)
            .collect()
    }

    /// Estimate the trip count of a generated counting-down `while` loop
    /// (`w = N; while w > 0:`); defaults to 8 for unknown patterns.
    fn estimate_while_iters(&self, cond: &Expr) -> f64 {
        if let Expr::Compare { op: CmpOp::Gt, left, right } = cond {
            if let (Expr::Name(var), Expr::Int(0)) = (left.as_ref(), right.as_ref()) {
                if let Some(&n) = self.literal_env.get(var) {
                    return n.max(0) as f64;
                }
            }
        }
        8.0
    }
}

/// Trip-count estimate for `for _ in range(count)`.
///
/// Literal counts are exact; the generator's data-dependent pattern
/// `int(x) % m + 1` has expectation ≈ `m/2 + 1` under a uniform modulus;
/// anything else defaults to 8 (the calibration value used for unknown
/// loops).
fn estimate_for_iters(count: &Expr) -> f64 {
    match count {
        Expr::Int(n) => (*n).max(0) as f64,
        Expr::Float(f) => f.max(0.0),
        Expr::Binary { op: graceful_udf::BinOp::Add, left, right } => {
            if let (
                Expr::Binary { op: graceful_udf::BinOp::Mod, right: modulus, .. },
                Expr::Int(k),
            ) = (left.as_ref(), right.as_ref())
            {
                if let Expr::Int(m) = modulus.as_ref() {
                    return (*m as f64) / 2.0 + *k as f64;
                }
            }
            8.0
        }
        _ => 8.0,
    }
}

/// Extract a traceable `param CMP literal` condition (normalizing the
/// parameter onto the left side). Compound conditions trace their first
/// traceable comparison; everything else is untraceable.
fn trace_condition(cond: &Expr, params: &[String]) -> Option<BranchCondInfo> {
    match cond {
        Expr::Compare { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (Expr::Name(n), lit) if params.contains(n) => {
                literal_value(lit).map(|v| BranchCondInfo { param: n.clone(), op: *op, literal: v })
            }
            (lit, Expr::Name(n)) if params.contains(n) => literal_value(lit)
                .map(|v| BranchCondInfo { param: n.clone(), op: op.flipped(), literal: v }),
            _ => None,
        },
        Expr::BoolOp { left, right, .. } => {
            trace_condition(left, params).or_else(|| trace_condition(right, params))
        }
        Expr::Unary { op: graceful_udf::UnOp::Not, operand } => {
            trace_condition(operand, params).map(|c| BranchCondInfo { op: c.op.negated(), ..c })
        }
        _ => None,
    }
}

fn literal_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::Int(i) => Some(*i as f64),
        Expr::Float(f) => Some(*f),
        _ => None,
    }
}

fn first_cmp_op(cond: &Expr) -> Option<CmpOp> {
    match cond {
        Expr::Compare { op, .. } => Some(*op),
        Expr::BoolOp { left, right, .. } => first_cmp_op(left).or_else(|| first_cmp_op(right)),
        Expr::Unary { operand, .. } => first_cmp_op(operand),
        _ => None,
    }
}

impl UdfDag {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of COMP nodes — the "graph size" axis of Figure 6 A.
    pub fn comp_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind == UdfNodeKind::Comp).count()
    }

    /// Outgoing `(dst, kind)` pairs of `node`.
    pub fn successors(&self, node: usize) -> impl Iterator<Item = (usize, EdgeKind)> + '_ {
        self.edges.iter().filter(move |(s, _, _)| *s == node).map(|&(_, d, k)| (d, k))
    }

    /// Incoming `(src, kind)` pairs of `node`.
    pub fn predecessors(&self, node: usize) -> impl Iterator<Item = (usize, EdgeKind)> + '_ {
        self.edges.iter().filter(move |(_, d, _)| *d == node).map(|&(s, _, k)| (s, k))
    }

    /// Topological order (Kahn). By construction this equals index order;
    /// the method exists so consumers need not rely on that invariant.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for &(_, d, _) in &self.edges {
            indeg[d] += 1;
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for (d, _) in self.successors(i) {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "UDF DAG contains a cycle");
        order
    }

    /// Enumerate control paths from INV to RET, excluding residual edges
    /// (footnote 4). Paths are capped at `max_paths`; `None` signals the cap
    /// was hit and callers should fall back to independent propagation.
    pub fn enumerate_paths(&self, max_paths: usize) -> Option<Vec<BranchPath>> {
        let mut paths = Vec::new();
        let mut stack = vec![BranchPath { conditions: Vec::new(), nodes: vec![self.inv] }];
        while let Some(path) = stack.pop() {
            if paths.len() + stack.len() > max_paths {
                return None;
            }
            let last = *path.nodes.last().expect("paths are non-empty");
            if last == self.ret {
                paths.push(path);
                continue;
            }
            let node = &self.nodes[last];
            if node.kind == UdfNodeKind::Branch {
                for taken in [true, false] {
                    let kind = if taken { EdgeKind::BranchTrue } else { EdgeKind::BranchFalse };
                    for (dst, k) in self.successors(last) {
                        if k == kind {
                            let mut p = path.clone();
                            p.conditions.push((node.cond.clone(), taken));
                            p.nodes.push(dst);
                            stack.push(p);
                        }
                    }
                }
            } else {
                // Non-branch nodes have at most one Flow successor by
                // construction; fork defensively if a malformed graph has
                // more.
                for (dst, k) in self.successors(last) {
                    if k == EdgeKind::Flow {
                        let mut p = path.clone();
                        p.nodes.push(dst);
                        stack.push(p);
                    }
                }
            }
        }
        Some(paths)
    }

    /// Annotate `in_rows` on every node given the UDF's input row count.
    ///
    /// `path_prob` receives the branch decisions of one control path and
    /// returns its probability — this is where the hit-ratio estimator of
    /// Section III-B plugs in. Probabilities are normalised over all paths
    /// to absorb estimator inconsistency.
    pub fn annotate_rows<F>(&mut self, input_rows: f64, mut path_prob: F)
    where
        F: FnMut(&[(Option<BranchCondInfo>, bool)]) -> f64,
    {
        let mut node_prob = vec![0.0f64; self.nodes.len()];
        match self.enumerate_paths(256) {
            Some(paths) if !paths.is_empty() => {
                let mut probs: Vec<f64> =
                    paths.iter().map(|p| path_prob(&p.conditions).max(0.0)).collect();
                let total: f64 = probs.iter().sum();
                if total > 1e-12 {
                    for p in probs.iter_mut() {
                        *p /= total;
                    }
                } else {
                    let uniform = 1.0 / probs.len() as f64;
                    probs.iter_mut().for_each(|p| *p = uniform);
                }
                for (path, prob) in paths.iter().zip(probs) {
                    for &n in &path.nodes {
                        node_prob[n] += prob;
                    }
                }
            }
            _ => {
                // Too many paths: assume every node is always reached.
                node_prob.iter_mut().for_each(|p| *p = 1.0);
            }
        }
        for (node, prob) in self.nodes.iter_mut().zip(node_prob) {
            node.in_rows = input_rows * prob.clamp(0.0, 1.0);
        }
        // LOOP_END nodes on skipped paths keep the loop's probability via the
        // residual edge; paths already include them, nothing more to do.
    }

    /// Longest path length (graph depth) — grows with nested/long UDFs and is
    /// what transformation (5) shortens for the GNN.
    pub fn depth(&self) -> usize {
        let order = self.topo_order();
        let mut dist = vec![0usize; self.nodes.len()];
        for &i in &order {
            for (d, k) in self.successors(i) {
                if k != EdgeKind::Residual {
                    dist[d] = dist[d].max(dist[i] + 1);
                }
            }
        }
        dist.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graceful_udf::parse_udf;

    /// The running example of Figure 2.
    fn figure2() -> UdfDag {
        let udf = parse_udf(
            "def func(x, y):\n    if x < 20:\n        z = x ** 2\n    else:\n        z = 0\n        for i in range(100):\n            z = math.pow(math.sqrt(y), i) + z\n    return z\n",
        )
        .unwrap();
        build_dag(&udf, &[DataType::Int, DataType::Int], DataType::Float, DagConfig::default())
    }

    #[test]
    fn figure2_structure() {
        let dag = figure2();
        let kinds: Vec<UdfNodeKind> = dag.nodes.iter().map(|n| n.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == UdfNodeKind::Inv).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == UdfNodeKind::Ret).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == UdfNodeKind::Branch).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == UdfNodeKind::Loop).count(), 1);
        assert_eq!(kinds.iter().filter(|k| **k == UdfNodeKind::LoopEnd).count(), 1);
        // Residual edge LOOP -> LOOP_END exists.
        assert!(dag.edges.iter().any(|&(s, d, k)| k == EdgeKind::Residual
            && dag.nodes[s].kind == UdfNodeKind::Loop
            && dag.nodes[d].kind == UdfNodeKind::LoopEnd));
        // Loop body COMP nodes carry loop_part.
        assert!(dag.nodes.iter().any(|n| n.kind == UdfNodeKind::Comp && n.loop_part));
        // Loop trip count is the literal 100.
        let loop_node = dag.nodes.iter().find(|n| n.kind == UdfNodeKind::Loop).unwrap();
        assert_eq!(loop_node.nr_iter, 100.0);
    }

    #[test]
    fn node_index_order_is_topological() {
        let dag = figure2();
        for &(s, d, _) in &dag.edges {
            assert!(s < d, "edge {s}->{d} violates construction order");
        }
        assert_eq!(dag.topo_order().len(), dag.len());
    }

    #[test]
    fn inv_features() {
        let dag = figure2();
        let inv = &dag.nodes[dag.inv];
        assert_eq!(inv.nr_params, 2);
        assert_eq!(inv.in_dts[DataType::Int.index()], 2);
        let ret = &dag.nodes[dag.ret];
        assert_eq!(ret.out_dt, Some(DataType::Float));
    }

    #[test]
    fn branch_condition_traced() {
        let dag = figure2();
        let branch = dag.nodes.iter().find(|n| n.kind == UdfNodeKind::Branch).unwrap();
        let cond = branch.cond.as_ref().expect("condition should trace");
        assert_eq!(cond.param, "x");
        assert_eq!(cond.op, CmpOp::Lt);
        assert_eq!(cond.literal, 20.0);
    }

    #[test]
    fn flipped_condition_normalizes() {
        let udf = parse_udf("def f(x):\n    if 5 > x:\n        return 1\n    return 0\n").unwrap();
        let dag = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        let b = dag.nodes.iter().find(|n| n.kind == UdfNodeKind::Branch).unwrap();
        let cond = b.cond.as_ref().unwrap();
        assert_eq!(cond.param, "x");
        assert_eq!(cond.op, CmpOp::Lt);
        assert_eq!(cond.literal, 5.0);
    }

    #[test]
    fn path_enumeration_on_figure2() {
        let dag = figure2();
        let paths = dag.enumerate_paths(64).unwrap();
        assert_eq!(paths.len(), 2);
        // Every path ends at RET and starts at INV.
        for p in &paths {
            assert_eq!(*p.nodes.first().unwrap(), dag.inv);
            assert_eq!(*p.nodes.last().unwrap(), dag.ret);
            assert_eq!(p.conditions.len(), 1);
        }
        // Exactly one path goes through the LOOP node (the else side).
        let loop_idx = dag.nodes.iter().position(|n| n.kind == UdfNodeKind::Loop).unwrap();
        let through: Vec<_> = paths.iter().filter(|p| p.nodes.contains(&loop_idx)).collect();
        assert_eq!(through.len(), 1);
        assert!(!through[0].conditions[0].1, "loop is on the false side of x < 20");
    }

    #[test]
    fn row_annotation_splits_by_selectivity() {
        let mut dag = figure2();
        // Estimator: x < 20 holds for 30% of rows.
        dag.annotate_rows(1000.0, |conds| {
            let mut p = 1.0;
            for (c, taken) in conds {
                let s = c.as_ref().map_or(0.5, |_| 0.3);
                p *= if *taken { s } else { 1.0 - s };
            }
            p
        });
        assert!((dag.nodes[dag.inv].in_rows - 1000.0).abs() < 1e-6);
        assert!((dag.nodes[dag.ret].in_rows - 1000.0).abs() < 1e-6);
        let loop_idx = dag.nodes.iter().position(|n| n.kind == UdfNodeKind::Loop).unwrap();
        assert!((dag.nodes[loop_idx].in_rows - 700.0).abs() < 1e-6);
        // The then-side COMP gets the 300.
        let then_comp = dag
            .nodes
            .iter()
            .find(|n| n.kind == UdfNodeKind::Comp && !n.loop_part && n.in_rows < 500.0)
            .unwrap();
        assert!((then_comp.in_rows - 300.0).abs() < 1e-6);
    }

    #[test]
    fn ablation_configs_change_structure() {
        let udf = parse_udf(
            "def f(x):\n    z = 0\n    for i in range(10):\n        z = z + x\n    return z\n",
        )
        .unwrap();
        let full = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        let no_resid = build_dag(
            &udf,
            &[DataType::Int],
            DataType::Int,
            DagConfig { loop_end_nodes: true, residual_loop_edges: false },
        );
        let no_end = build_dag(
            &udf,
            &[DataType::Int],
            DataType::Int,
            DagConfig { loop_end_nodes: false, residual_loop_edges: false },
        );
        assert!(full.edges.iter().any(|e| e.2 == EdgeKind::Residual));
        assert!(!no_resid.edges.iter().any(|e| e.2 == EdgeKind::Residual));
        assert!(no_resid.nodes.iter().any(|n| n.kind == UdfNodeKind::LoopEnd));
        assert!(!no_end.nodes.iter().any(|n| n.kind == UdfNodeKind::LoopEnd));
        assert_eq!(no_end.len(), full.len() - 1);
    }

    #[test]
    fn while_trip_count_from_countdown_pattern() {
        let udf = parse_udf(
            "def f(x):\n    w = 12\n    while w > 0:\n        x = x + 1\n        w = w - 1\n    return x\n",
        )
        .unwrap();
        let dag = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        let l = dag.nodes.iter().find(|n| n.kind == UdfNodeKind::Loop).unwrap();
        assert_eq!(l.loop_kind, Some(LoopKindFeat::While));
        assert_eq!(l.nr_iter, 12.0);
    }

    #[test]
    fn data_dependent_trip_count_estimated() {
        let udf = parse_udf(
            "def f(x):\n    z = 0\n    for i in range(int(x) % 10 + 1):\n        z = z + i\n    return z\n",
        )
        .unwrap();
        let dag = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        let l = dag.nodes.iter().find(|n| n.kind == UdfNodeKind::Loop).unwrap();
        assert!((l.nr_iter - 6.0).abs() < 1e-9, "expected m/2+1 = 6, got {}", l.nr_iter);
    }

    #[test]
    fn early_returns_all_reach_ret() {
        let udf = parse_udf(
            "def f(x):\n    if x < 0:\n        return 0\n    if x < 10:\n        return 1\n    return 2\n",
        )
        .unwrap();
        let dag = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        let paths = dag.enumerate_paths(64).unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(*p.nodes.last().unwrap(), dag.ret);
        }
    }

    #[test]
    fn depth_shrinks_with_residual_edges() {
        let udf = parse_udf(
            "def f(x):\n    z = 0\n    for i in range(10):\n        z = z + x\n        z = z * 2\n        z = z - 1\n        z = z + 3\n    return z\n",
        )
        .unwrap();
        let dag = build_dag(&udf, &[DataType::Int], DataType::Int, DagConfig::default());
        // Depth ignores residual edges by definition here; the GNN benefit is
        // tested at the model level. Just sanity-check depth is positive and
        // bounded by node count.
        let d = dag.depth();
        assert!(d > 0 && d < dag.len());
    }

    #[test]
    fn generated_udfs_build_valid_dags() {
        use graceful_common::rng::Rng;
        use graceful_storage::datagen::{generate, schema};
        use graceful_udf::{UdfGenConfig, UdfGenerator};
        let db = generate(&schema("tpc_h"), 0.02, 3);
        let mut rng = Rng::seed(9);
        let gen = UdfGenerator::new(UdfGenConfig::default());
        for _ in 0..40 {
            let u = gen.generate(&db, &mut rng).unwrap();
            let types: Vec<DataType> = u
                .input_columns
                .iter()
                .map(|c| db.table(&u.table).unwrap().column_type(c).unwrap())
                .collect();
            let mut dag = build_dag(&u.def, &types, DataType::Float, DagConfig::default());
            // Structural invariants.
            for &(s, d, _) in &dag.edges {
                assert!(s < d, "topological construction violated:\n{}", u.source);
            }
            assert_eq!(dag.topo_order().len(), dag.len());
            let loops = dag.nodes.iter().filter(|n| n.kind == UdfNodeKind::Loop).count();
            let ends = dag.nodes.iter().filter(|n| n.kind == UdfNodeKind::LoopEnd).count();
            assert_eq!(loops, ends, "unbalanced LOOP/LOOP_END:\n{}", u.source);
            // Row annotation conserves input rows at INV and RET.
            dag.annotate_rows(500.0, |conds| {
                conds.iter().fold(1.0, |p, (c, taken)| {
                    let s = c.as_ref().map_or(0.5, |_| 0.4);
                    p * if *taken { s } else { 1.0 - s }
                })
            });
            assert!((dag.nodes[dag.ret].in_rows - 500.0).abs() < 1e-6, "{}", u.source);
        }
    }
}
