//! Node and edge types of the UDF DAG, mirroring Table I of the paper.
//!
//! The featurization is *transferable*: nothing in a node refers to concrete
//! identifiers, table names or comparison literals — only to closed
//! vocabularies (operator sets, library functions, data types) plus
//! cardinality-like magnitudes (`in_rows`, `nr_iter`) that the annotator
//! fills in per query. This is what lets one trained model generalize to
//! unseen UDFs and databases.

use graceful_storage::DataType;
use graceful_udf::ast::{BinOp, CmpOp};
use graceful_udf::LibFn;

/// The five node types of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UdfNodeKind {
    /// Invocation: input conversion DBMS → UDF runtime.
    Inv,
    /// A single computation statement (after single-statement splitting).
    Comp,
    /// An `if` condition.
    Branch,
    /// Loop head.
    Loop,
    /// Explicit loop end (transformation (4) of the ablation study).
    LoopEnd,
    /// Return: output conversion UDF runtime → DBMS.
    Ret,
}

impl UdfNodeKind {
    pub const COUNT: usize = 6;

    pub fn index(self) -> usize {
        match self {
            UdfNodeKind::Inv => 0,
            UdfNodeKind::Comp => 1,
            UdfNodeKind::Branch => 2,
            UdfNodeKind::Loop => 3,
            UdfNodeKind::LoopEnd => 4,
            UdfNodeKind::Ret => 5,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            UdfNodeKind::Inv => "INV",
            UdfNodeKind::Comp => "COMP",
            UdfNodeKind::Branch => "BRANCH",
            UdfNodeKind::Loop => "LOOP",
            UdfNodeKind::LoopEnd => "LOOP_END",
            UdfNodeKind::Ret => "RET",
        }
    }
}

/// Loop kind feature (`loop_type` in Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKindFeat {
    For,
    While,
}

/// Edge kinds of the DAG.
///
/// Execution-probability propagation follows `Flow`/`BranchTrue`/
/// `BranchFalse`; `Residual` edges are GNN shortcuts only (transformation (5)
/// of the ablation study) and are excluded from path enumeration, exactly as
/// footnote 4 of the paper prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential control flow.
    Flow,
    /// Branch taken (condition true).
    BranchTrue,
    /// Branch not taken.
    BranchFalse,
    /// Residual LOOP → LOOP_END shortcut.
    Residual,
}

/// A traceable branch condition: `param CMP literal`.
///
/// The hit-ratio estimator rewrites these back to predicates over the UDF's
/// input columns. Conditions over derived variables are untraceable and get
/// the 0.5 fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchCondInfo {
    /// UDF parameter name the condition tests.
    pub param: String,
    /// Comparison operator (normalized so the parameter is on the left).
    pub op: CmpOp,
    /// Comparison literal.
    pub literal: f64,
}

/// A node of the UDF DAG with its Table I features.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfNode {
    pub kind: UdfNodeKind,
    /// Estimated number of rows reaching this node (annotated per query by
    /// the hit-ratio machinery; 0 until annotated).
    pub in_rows: f64,
    /// INV: histogram of argument data types (count per [`DataType`]).
    pub in_dts: [u8; DataType::COUNT],
    /// INV: number of UDF parameters.
    pub nr_params: u8,
    /// COMP: library calls performed by the statement.
    pub libs: Vec<LibFn>,
    /// COMP: arithmetic operators used by the statement.
    pub ops: Vec<BinOp>,
    /// BRANCH: comparison operator of the condition.
    pub cmp_op: Option<CmpOp>,
    /// BRANCH: traceable condition, if any.
    pub cond: Option<BranchCondInfo>,
    /// Whether the node sits inside a loop body (`loop_part`).
    pub loop_part: bool,
    /// LOOP / LOOP_END: loop kind.
    pub loop_kind: Option<LoopKindFeat>,
    /// LOOP / LOOP_END: estimated trip count (`nr_iter`).
    pub nr_iter: f64,
    /// RET: output data type.
    pub out_dt: Option<DataType>,
    /// COMP/BRANCH: indices of UDF parameters the statement reads directly
    /// (drives the COLUMN → COMP data-flow edges of the joint graph,
    /// Section III-C).
    pub param_reads: Vec<u8>,
    /// Per-execution work estimate of this single statement in work units —
    /// *not* fed to the model (the model must learn costs from structure);
    /// used only by tests and debugging output.
    pub static_cost_hint: f64,
}

impl UdfNode {
    /// A blank node of the given kind (features zeroed).
    pub fn new(kind: UdfNodeKind) -> Self {
        UdfNode {
            kind,
            in_rows: 0.0,
            in_dts: [0; DataType::COUNT],
            nr_params: 0,
            libs: Vec::new(),
            ops: Vec::new(),
            cmp_op: None,
            cond: None,
            loop_part: false,
            loop_kind: None,
            nr_iter: 0.0,
            out_dt: None,
            param_reads: Vec::new(),
            static_cost_hint: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_dense() {
        let all = [
            UdfNodeKind::Inv,
            UdfNodeKind::Comp,
            UdfNodeKind::Branch,
            UdfNodeKind::Loop,
            UdfNodeKind::LoopEnd,
            UdfNodeKind::Ret,
        ];
        let mut seen = [false; UdfNodeKind::COUNT];
        for k in all {
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(UdfNodeKind::LoopEnd.name(), "LOOP_END");
        assert_eq!(UdfNodeKind::Inv.name(), "INV");
    }
}
