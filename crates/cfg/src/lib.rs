//! The UDF graph representation of GRACEFUL (Section III-A).
//!
//! The paper derives its UDF representation from the control-flow graph in
//! three steps: (1) compute the CFG, (2) split basic blocks into a
//! *single-statement* CFG, (3) replace loop back-edges with an acyclic
//! `LOOP` / `LOOP_END` encoding plus a residual `LOOP → LOOP_END` edge.
//! This crate performs the three steps in one fused lowering pass over the
//! AST ([`dag::build_dag`]); the result is identical to transforming a
//! block-level CFG because our AST is structured (no `goto`).
//!
//! * [`node`] — the five node types of Table I (`INV`, `COMP`, `BRANCH`,
//!   `LOOP`/`LOOP_END`, `RET`) with their transferable features,
//! * [`dag`] — DAG construction, topological order, execution-probability
//!   propagation (in-rows annotation) and branch-path condition tracing for
//!   the hit-ratio estimator of Section III-B.

pub mod dag;
pub mod node;

pub use dag::{build_dag, BranchPath, DagConfig, UdfDag};
pub use node::{BranchCondInfo, EdgeKind, LoopKindFeat, UdfNode, UdfNodeKind};
