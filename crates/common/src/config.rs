//! Experiment scaling knobs.
//!
//! The paper's corpus is 93.8k queries over 20 databases and took 142 hours
//! of execution to label. The reproduction defaults to a scale that finishes
//! the full experiment suite in minutes; every knob can be raised through
//! environment variables so the corpus approaches the paper's size:
//!
//! | Env var | Meaning | Default |
//! |---|---|---|
//! | `GRACEFUL_SCALE`          | multiplier on base-table row counts | `1.0` |
//! | `GRACEFUL_QUERIES_PER_DB` | labelled queries generated per database | `45` |
//! | `GRACEFUL_FOLDS`          | cross-validation groups (20 = the paper's leave-one-out) | `2` |
//! | `GRACEFUL_EPOCHS`         | GNN training epochs | `14` |
//! | `GRACEFUL_HIDDEN`         | GNN hidden width | `32` |
//! | `GRACEFUL_SEED`           | global seed | `20250331` (the arXiv date) |
//! | `GRACEFUL_UDF_BACKEND`    | UDF execution backend: `treewalk` or `vm` | `treewalk` |
//! | `GRACEFUL_UDF_BATCH`      | rows per batch fed to the UDF VM | `1024` |

/// Which UDF evaluation backend the execution engine uses.
///
/// Both backends produce identical values and identical accounted work (the
/// differential property suite enforces it), so experiments are reproducible
/// under either; the flag exists so results can always be pinned to the
/// reference tree-walker while the vectorized VM serves the hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UdfBackend {
    /// Reference tree-walking interpreter (`graceful-udf::interp`).
    #[default]
    TreeWalk,
    /// Bytecode compiler + vectorized batch VM (`graceful-udf::vm`).
    Vm,
}

impl UdfBackend {
    /// Resolve from `GRACEFUL_UDF_BACKEND` (`treewalk` | `vm`, case
    /// insensitive); unknown values fall back to the default.
    pub fn from_env() -> Self {
        match std::env::var("GRACEFUL_UDF_BACKEND") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "vm" | "bytecode" => UdfBackend::Vm,
                "treewalk" | "tree_walk" | "interp" => UdfBackend::TreeWalk,
                _ => UdfBackend::default(),
            },
            Err(_) => UdfBackend::default(),
        }
    }
}

/// Resolve the UDF VM batch size from `GRACEFUL_UDF_BATCH` (default 1024,
/// clamped to at least 1).
pub fn udf_batch_from_env() -> usize {
    env_parse::<usize>("GRACEFUL_UDF_BATCH").unwrap_or(1024).max(1)
}

/// Scaling configuration resolved from the environment with sane defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Multiplier applied to every dataset's base row counts.
    pub data_scale: f64,
    /// Number of labelled queries generated per database.
    pub queries_per_db: usize,
    /// Number of leave-one-out folds to actually run (the paper runs all 20).
    pub folds: usize,
    /// GNN training epochs.
    pub epochs: usize,
    /// GNN hidden width.
    pub hidden: usize,
    /// Global seed from which all others are forked.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            data_scale: 1.0,
            queries_per_db: 45,
            folds: 2,
            epochs: 14,
            hidden: 32,
            seed: 20_250_331,
        }
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

impl ScaleConfig {
    /// Resolve the configuration from `GRACEFUL_*` environment variables,
    /// falling back to the defaults above.
    pub fn from_env() -> Self {
        let d = ScaleConfig::default();
        ScaleConfig {
            data_scale: env_parse("GRACEFUL_SCALE").unwrap_or(d.data_scale).max(0.01),
            queries_per_db: env_parse("GRACEFUL_QUERIES_PER_DB").unwrap_or(d.queries_per_db).max(4),
            folds: env_parse::<usize>("GRACEFUL_FOLDS").unwrap_or(d.folds).clamp(1, 20),
            epochs: env_parse("GRACEFUL_EPOCHS").unwrap_or(d.epochs).max(1),
            hidden: env_parse("GRACEFUL_HIDDEN").unwrap_or(d.hidden).clamp(4, 512),
            seed: env_parse("GRACEFUL_SEED").unwrap_or(d.seed),
        }
    }

    /// Scale a base row count by `data_scale`, keeping at least 16 rows.
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.data_scale) as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ScaleConfig::default();
        assert!(c.folds >= 1 && c.folds <= 20);
        assert!(c.queries_per_db >= 4);
        assert_eq!(c.rows(1000), 1000);
    }

    #[test]
    fn rows_floor() {
        let c = ScaleConfig { data_scale: 0.001, ..ScaleConfig::default() };
        assert_eq!(c.rows(1000), 16);
    }
}
