//! Experiment scaling knobs.
//!
//! The paper's corpus is 93.8k queries over 20 databases and took 142 hours
//! of execution to label. The reproduction defaults to a scale that finishes
//! the full experiment suite in minutes; every knob can be raised through
//! environment variables so the corpus approaches the paper's size:
//!
//! | Env var | Meaning | Default |
//! |---|---|---|
//! | `GRACEFUL_SCALE`          | multiplier on base-table row counts | `1.0` |
//! | `GRACEFUL_QUERIES_PER_DB` | labelled queries generated per database | `45` |
//! | `GRACEFUL_FOLDS`          | cross-validation groups (20 = the paper's leave-one-out) | `2` |
//! | `GRACEFUL_EPOCHS`         | GNN training epochs | `14` |
//! | `GRACEFUL_HIDDEN`         | GNN hidden width | `32` |
//! | `GRACEFUL_SEED`           | global seed | `20250331` (the arXiv date) |
//! | `GRACEFUL_UDF_BACKEND`    | UDF execution backend: `treewalk`, `vm` or `simd` | `treewalk` |
//! | `GRACEFUL_UDF_BATCH`      | rows per batch fed to the UDF VM | `1024` |
//! | `GRACEFUL_THREADS`        | worker threads of the morsel-driven runtime (`graceful-runtime`) | all cores |
//! | `GRACEFUL_MORSEL`         | rows per morsel in parallel operators | `2048` |
//! | `GRACEFUL_EXEC`           | executor mode: `pipeline` (streaming physical operators) or `materialize` (per-operator materialization) | `pipeline` |
//! | `GRACEFUL_GNN_EXEC`       | GNN trainer mode: `batched` (level-synchronous) or `node-at-a-time` (reference) | `batched` |
//! | `GRACEFUL_PROFILE`        | attach a per-operator `ExecProfile` to every `QueryRun`: `1`/`0` (also `true`/`false`, `on`/`off`, `yes`/`no`) | `0` |
//! | `GRACEFUL_TRACE`          | enable span tracing and write Chrome-trace JSON to this path on flush | off |
//! | `GRACEFUL_FLIGHT`         | enable the query flight recorder and write per-query JSONL records to this path on flush | off |
//! | `GRACEFUL_VERIFY`         | bytecode verification of every compiled UDF: `strict` or `off` (bench-only) | `strict` |
//! | `GRACEFUL_PLAN_VERIFY`    | static plan verification before lowering: `strict` or `off` (bench-only) | `strict` |
//!
//! `GRACEFUL_SCALE`, `GRACEFUL_UDF_BACKEND`, `GRACEFUL_UDF_BATCH`,
//! `GRACEFUL_THREADS`, `GRACEFUL_MORSEL`, `GRACEFUL_EXEC`,
//! `GRACEFUL_GNN_EXEC`, `GRACEFUL_PROFILE`, `GRACEFUL_TRACE`,
//! `GRACEFUL_FLIGHT`, `GRACEFUL_VERIFY` and `GRACEFUL_PLAN_VERIFY` are
//! validated strictly: an unknown
//! backend name, a non-positive/unparsable thread, batch or morsel count, a
//! non-finite or non-positive data scale, an
//! unrecognized boolean or an empty trace/flight path is
//! a hard error (listing the valid options), not a silent fallback — a typo
//! in an experiment environment must not silently re-run the wrong
//! configuration. Results never depend on any of them: the runtime merges
//! per-morsel work in morsel-index order and both executor modes account
//! work with the same float grouping, so every output is bit-identical for
//! any thread count, batch size and executor mode — and profiling/tracing
//! are write-only observers, so `tests/parallel_determinism.rs` proves they
//! flip no contracted bit either.
//!
//! These environment variables are only *defaults*: the engine is configured
//! programmatically through `graceful_exec::Session` / `ExecOptions`, which
//! resolve the environment exactly once (via [`UdfBackend::try_from_env`] and
//! the `try_*_from_env` helpers here) and surface invalid values as typed
//! `GracefulError::Config` errors. This module is the **only** place in the
//! workspace that reads `GRACEFUL_*` variables.

/// Which UDF evaluation backend the execution engine uses.
///
/// Both backends produce identical values and identical accounted work (the
/// differential property suite enforces it), so experiments are reproducible
/// under either; the flag exists so results can always be pinned to the
/// reference tree-walker while the vectorized VM serves the hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UdfBackend {
    /// Reference tree-walking interpreter (`graceful-udf::interp`).
    #[default]
    TreeWalk,
    /// Bytecode compiler + vectorized batch VM (`graceful-udf::vm`).
    Vm,
    /// Batch VM with the typed columnar fast path (`graceful-udf::simd`):
    /// straight-line numeric segments execute column-at-a-time over unboxed
    /// lanes; diverging or non-numeric rows fall back to the per-row VM.
    Simd,
}

impl UdfBackend {
    /// Parse a backend name (`treewalk` | `vm` | `simd`, case insensitive,
    /// plus the aliases below). Unknown names are an error listing the valid
    /// options.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "vm" | "bytecode" => Ok(UdfBackend::Vm),
            "treewalk" | "tree_walk" | "interp" => Ok(UdfBackend::TreeWalk),
            "simd" | "columnar" => Ok(UdfBackend::Simd),
            other => Err(format!(
                "invalid GRACEFUL_UDF_BACKEND `{other}`: valid values are \
                 `treewalk` (aliases `tree_walk`, `interp`), `vm` (alias `bytecode`) \
                 and `simd` (alias `columnar`)"
            )),
        }
    }

    /// Resolve from `GRACEFUL_UDF_BACKEND`; unset means the default, an
    /// unknown value is an error (see [`UdfBackend::parse`]).
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("GRACEFUL_UDF_BACKEND") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(UdfBackend::default()),
        }
    }

    /// [`UdfBackend::try_from_env`], panicking on invalid values — a
    /// misconfigured experiment must fail loudly at startup, not silently
    /// run the wrong backend.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Whether compiled UDF bytecode is statically verified before execution.
///
/// Under [`VerifyMode::Strict`] (the default) every `compile()` result runs
/// through `graceful_udf::analysis::verify` — jump targets in bounds, no
/// use-before-def registers, return on all paths, cost-charge placement —
/// and a failing program is rejected with a typed `GracefulError::Verify`
/// before any backend executes it. [`VerifyMode::Off`] skips the check and
/// exists for compile-throughput benchmarking only: with verification off, a
/// buggy compiler output reaches the interpreters unchecked, so it must
/// never be set in experiments or tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Verify every compiled program; reject failures with a typed error.
    #[default]
    Strict,
    /// Skip verification (bench-only escape hatch).
    Off,
}

impl VerifyMode {
    /// Parse a verification mode (`strict` | `off`, case insensitive).
    /// Unknown names are an error listing the valid options.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "strict" | "on" => Ok(VerifyMode::Strict),
            "off" => Ok(VerifyMode::Off),
            other => Err(format!(
                "invalid GRACEFUL_VERIFY `{other}`: valid values are `strict` \
                 (alias `on`; the default) and `off` (bench-only — skips \
                 bytecode verification)"
            )),
        }
    }

    /// Resolve from `GRACEFUL_VERIFY`; unset means [`VerifyMode::Strict`],
    /// an unknown value is an error (see [`VerifyMode::parse`]).
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("GRACEFUL_VERIFY") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(VerifyMode::default()),
        }
    }
}

/// Whether logical plans are statically verified before lowering/execution.
///
/// Under [`PlanVerifyMode::Strict`] (the default) every plan handed to the
/// executor runs through `graceful_plan::analysis::verify` — DAG structure
/// (cycles, dangling children, operator arity, reachability), schema/type
/// resolution against the catalog (tables, columns, join-key compatibility,
/// UDF inputs, aggregate arity) and cardinality-annotation sanity — and a
/// failing plan is rejected with a typed `GracefulError::PlanVerify` before
/// anything executes it. [`PlanVerifyMode::Off`] skips the check and exists
/// for plan-throughput benchmarking only: with verification off, a malformed
/// plan reaches the engine unchecked and surfaces as a mid-execution error,
/// so it must never be set in experiments or tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanVerifyMode {
    /// Verify every plan before lowering; reject failures with a typed error.
    #[default]
    Strict,
    /// Skip plan verification (bench-only escape hatch).
    Off,
}

impl PlanVerifyMode {
    /// Parse a plan-verification mode (`strict` | `off`, case insensitive).
    /// Unknown names are an error listing the valid options.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "strict" | "on" => Ok(PlanVerifyMode::Strict),
            "off" => Ok(PlanVerifyMode::Off),
            other => Err(format!(
                "invalid GRACEFUL_PLAN_VERIFY `{other}`: valid values are \
                 `strict` (alias `on`; the default) and `off` (bench-only — \
                 skips static plan verification)"
            )),
        }
    }

    /// Resolve from `GRACEFUL_PLAN_VERIFY`; unset means
    /// [`PlanVerifyMode::Strict`], an unknown value is an error (see
    /// [`PlanVerifyMode::parse`]).
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("GRACEFUL_PLAN_VERIFY") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(PlanVerifyMode::default()),
        }
    }
}

/// Which execution strategy `graceful_exec`'s `Executor` uses. Both
/// produce bit-identical `QueryRun`s (values, cardinalities and accounted
/// work); they differ only in peak memory and code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Lower the logical plan to a physical-operator pipeline and stream
    /// fixed-size row batches through it — peak memory is bounded by
    /// O(batch × pipeline depth) for non-blocking chains.
    #[default]
    Pipeline,
    /// The original recursive interpreter: fully materialize every
    /// intermediate result. Kept as the differential-testing reference.
    Materialize,
}

impl ExecMode {
    /// Parse an executor-mode name (`pipeline` | `materialize`, case
    /// insensitive). Unknown names are an error listing the valid options.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value.trim().to_ascii_lowercase().as_str() {
            "pipeline" | "push" | "streaming" => Ok(ExecMode::Pipeline),
            "materialize" | "materialized" | "legacy" => Ok(ExecMode::Materialize),
            other => Err(format!(
                "invalid GRACEFUL_EXEC `{other}`: valid values are `pipeline` \
                 (aliases `push`, `streaming`) and `materialize` (aliases \
                 `materialized`, `legacy`)"
            )),
        }
    }

    /// Resolve from `GRACEFUL_EXEC`; unset means [`ExecMode::Pipeline`].
    pub fn try_from_env() -> Result<Self, String> {
        match std::env::var("GRACEFUL_EXEC") {
            Ok(v) => Self::parse(&v),
            Err(_) => Ok(ExecMode::default()),
        }
    }
}

/// Default rows per batch fed to the UDF VM.
pub const DEFAULT_UDF_BATCH: usize = 1024;

/// Parse a `GRACEFUL_UDF_BATCH` value: an integer ≥ 1 (rows per VM batch).
pub fn parse_udf_batch(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid GRACEFUL_UDF_BATCH `{}`: expected an integer >= 1 \
             (rows per UDF VM batch; unset means {DEFAULT_UDF_BATCH})",
            value.trim()
        )),
    }
}

/// Resolve the UDF VM batch size from `GRACEFUL_UDF_BATCH` (default
/// [`DEFAULT_UDF_BATCH`]); an invalid value is an error.
pub fn try_udf_batch_from_env() -> Result<usize, String> {
    match std::env::var("GRACEFUL_UDF_BATCH") {
        Ok(v) => parse_udf_batch(&v),
        Err(_) => Ok(DEFAULT_UDF_BATCH),
    }
}

/// Rows per morsel when none is configured.
pub const DEFAULT_MORSEL_ROWS: usize = 2048;

/// The machine's thread budget: `available_parallelism`, or 1 when the
/// platform cannot report it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Parse a `GRACEFUL_THREADS` value: an integer ≥ 1.
pub fn parse_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid GRACEFUL_THREADS `{}`: expected an integer >= 1 \
             (worker threads; unset means all cores)",
            value.trim()
        )),
    }
}

/// Parse a `GRACEFUL_MORSEL` value: an integer ≥ 1 (rows per morsel).
pub fn parse_morsel(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!(
            "invalid GRACEFUL_MORSEL `{}`: expected an integer >= 1 \
             (rows per morsel; unset means {DEFAULT_MORSEL_ROWS})",
            value.trim()
        )),
    }
}

/// Resolve the worker-thread count from `GRACEFUL_THREADS` (default: all
/// cores); an invalid value is an error.
pub fn try_threads_from_env() -> Result<usize, String> {
    match std::env::var("GRACEFUL_THREADS") {
        Ok(v) => parse_threads(&v),
        Err(_) => Ok(default_threads()),
    }
}

/// [`try_threads_from_env`], panicking on invalid values.
pub fn threads_from_env() -> usize {
    try_threads_from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Resolve the morsel size from `GRACEFUL_MORSEL` (default
/// [`DEFAULT_MORSEL_ROWS`]); an invalid value is an error.
pub fn try_morsel_from_env() -> Result<usize, String> {
    match std::env::var("GRACEFUL_MORSEL") {
        Ok(v) => parse_morsel(&v),
        Err(_) => Ok(DEFAULT_MORSEL_ROWS),
    }
}

/// [`try_morsel_from_env`], panicking on invalid values.
pub fn morsel_from_env() -> usize {
    try_morsel_from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Parse a `GRACEFUL_PROFILE` value: a boolean written as `1`/`0`, `true`/
/// `false`, `on`/`off` or `yes`/`no` (case insensitive). Anything else is an
/// error listing the valid spellings.
pub fn parse_profile(value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        other => Err(format!(
            "invalid GRACEFUL_PROFILE `{other}`: expected a boolean — \
             `1`/`0`, `true`/`false`, `on`/`off` or `yes`/`no`"
        )),
    }
}

/// Resolve per-query profiling from `GRACEFUL_PROFILE` (default: off); an
/// invalid value is an error.
pub fn try_profile_from_env() -> Result<bool, String> {
    match std::env::var("GRACEFUL_PROFILE") {
        Ok(v) => parse_profile(&v),
        Err(_) => Ok(false),
    }
}

/// Parse a `GRACEFUL_TRACE` value: a non-empty output path for the
/// Chrome-trace JSON. An empty (or all-whitespace) value is an error — an
/// accidentally blank variable must not silently disable the trace the
/// experiment asked for.
pub fn parse_trace(value: &str) -> Result<String, String> {
    let path = value.trim();
    if path.is_empty() {
        Err("invalid GRACEFUL_TRACE ``: expected a non-empty output path for the \
             Chrome-trace JSON (unset the variable to disable tracing)"
            .to_string())
    } else {
        Ok(path.to_string())
    }
}

/// Resolve the trace output path from `GRACEFUL_TRACE` (unset → `None`,
/// tracing off); an empty value is an error.
pub fn try_trace_from_env() -> Result<Option<String>, String> {
    match std::env::var("GRACEFUL_TRACE") {
        Ok(v) => parse_trace(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parse a `GRACEFUL_FLIGHT` value: a non-empty output path for the
/// flight-recorder JSONL. An empty (or all-whitespace) value is an error —
/// an accidentally blank variable must not silently disable the recording
/// the experiment asked for.
pub fn parse_flight(value: &str) -> Result<String, String> {
    let path = value.trim();
    if path.is_empty() {
        Err("invalid GRACEFUL_FLIGHT ``: expected a non-empty output path for the \
             flight-recorder JSONL (unset the variable to disable recording)"
            .to_string())
    } else {
        Ok(path.to_string())
    }
}

/// Resolve the flight-recorder output path from `GRACEFUL_FLIGHT` (unset →
/// `None`, recording off); an empty value is an error.
pub fn try_flight_from_env() -> Result<Option<String>, String> {
    match std::env::var("GRACEFUL_FLIGHT") {
        Ok(v) => parse_flight(&v).map(Some),
        Err(_) => Ok(None),
    }
}

/// Parse a `GRACEFUL_SCALE` value: a finite float > 0 multiplying every
/// dataset's base-table row counts. NaN, infinities, non-positive values
/// and garbage are hard errors — a typo'd scale must not silently re-run
/// the experiment at 1× (or, worse, at `max(0.01)` of garbage).
pub fn parse_scale(value: &str) -> Result<f64, String> {
    match value.trim().parse::<f64>() {
        Ok(s) if s.is_finite() && s > 0.0 => Ok(s),
        _ => Err(format!(
            "invalid GRACEFUL_SCALE `{}`: expected a finite float > 0 \
             (base-row multiplier; unset means 1.0)",
            value.trim()
        )),
    }
}

/// Resolve the data scale from `GRACEFUL_SCALE` (default `1.0`); an invalid
/// value is an error.
pub fn try_scale_from_env() -> Result<f64, String> {
    match std::env::var("GRACEFUL_SCALE") {
        Ok(v) => parse_scale(&v),
        Err(_) => Ok(1.0),
    }
}

/// [`try_scale_from_env`], panicking on invalid values — a misconfigured
/// experiment must fail loudly at startup.
pub fn scale_from_env() -> f64 {
    try_scale_from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Raw `GRACEFUL_GNN_EXEC` value (unset → `None`). This crate cannot depend
/// on `graceful-nn`, so the value is parsed (and strictly validated) by
/// `graceful_nn::GnnExecMode::parse` at the train-options layer — this
/// module stays the only place in the workspace that reads `GRACEFUL_*`.
pub fn gnn_exec_from_env() -> Option<String> {
    std::env::var("GRACEFUL_GNN_EXEC").ok()
}

/// Scaling configuration resolved from the environment with sane defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Multiplier applied to every dataset's base row counts.
    pub data_scale: f64,
    /// Number of labelled queries generated per database.
    pub queries_per_db: usize,
    /// Number of leave-one-out folds to actually run (the paper runs all 20).
    pub folds: usize,
    /// GNN training epochs.
    pub epochs: usize,
    /// GNN hidden width.
    pub hidden: usize,
    /// Global seed from which all others are forked.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            data_scale: 1.0,
            queries_per_db: 45,
            folds: 2,
            epochs: 14,
            hidden: 32,
            seed: 20_250_331,
        }
    }
}

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

impl ScaleConfig {
    /// Resolve the configuration from `GRACEFUL_*` environment variables,
    /// falling back to the defaults above. `GRACEFUL_SCALE` is validated
    /// strictly ([`parse_scale`]) and panics on invalid values, like every
    /// other execution knob; use [`ScaleConfig::try_from_env`] for a typed
    /// error instead.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`ScaleConfig::from_env`] with the strict `GRACEFUL_SCALE` validation
    /// surfaced as an error.
    pub fn try_from_env() -> Result<Self, String> {
        let d = ScaleConfig::default();
        Ok(ScaleConfig {
            data_scale: try_scale_from_env()?,
            queries_per_db: env_parse("GRACEFUL_QUERIES_PER_DB").unwrap_or(d.queries_per_db).max(4),
            folds: env_parse::<usize>("GRACEFUL_FOLDS").unwrap_or(d.folds).clamp(1, 20),
            epochs: env_parse("GRACEFUL_EPOCHS").unwrap_or(d.epochs).max(1),
            hidden: env_parse("GRACEFUL_HIDDEN").unwrap_or(d.hidden).clamp(4, 512),
            seed: env_parse("GRACEFUL_SEED").unwrap_or(d.seed),
        })
    }

    /// Scale a base row count by `data_scale`, keeping at least 16 rows.
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.data_scale) as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ScaleConfig::default();
        assert!(c.folds >= 1 && c.folds <= 20);
        assert!(c.queries_per_db >= 4);
        assert_eq!(c.rows(1000), 1000);
    }

    #[test]
    fn rows_floor() {
        let c = ScaleConfig { data_scale: 0.001, ..ScaleConfig::default() };
        assert_eq!(c.rows(1000), 16);
    }

    // Env-knob validation is tested through the pure parsers: the resolver
    // functions only add `std::env::var`, and mutating the environment from
    // tests would race the rest of the (multi-threaded) suite.

    #[test]
    fn backend_parses_known_names_and_rejects_unknown() {
        assert_eq!(UdfBackend::parse("vm"), Ok(UdfBackend::Vm));
        assert_eq!(UdfBackend::parse(" ByteCode "), Ok(UdfBackend::Vm));
        assert_eq!(UdfBackend::parse("treewalk"), Ok(UdfBackend::TreeWalk));
        assert_eq!(UdfBackend::parse("interp"), Ok(UdfBackend::TreeWalk));
        assert_eq!(UdfBackend::parse("simd"), Ok(UdfBackend::Simd));
        assert_eq!(UdfBackend::parse(" Columnar "), Ok(UdfBackend::Simd));
        let err = UdfBackend::parse("fast").unwrap_err();
        assert!(
            err.contains("treewalk") && err.contains("vm") && err.contains("simd"),
            "lists options: {err}"
        );
    }

    #[test]
    fn exec_mode_and_batch_parse_and_reject() {
        assert_eq!(ExecMode::parse("pipeline"), Ok(ExecMode::Pipeline));
        assert_eq!(ExecMode::parse(" Materialize "), Ok(ExecMode::Materialize));
        assert_eq!(ExecMode::parse("legacy"), Ok(ExecMode::Materialize));
        assert!(ExecMode::parse("turbo").unwrap_err().contains("GRACEFUL_EXEC"));
        assert_eq!(parse_udf_batch("37"), Ok(37));
        for bad in ["0", "-1", "", "fast", "2.5"] {
            assert!(parse_udf_batch(bad).is_err(), "batch accepted {bad:?}");
        }
        assert!(parse_udf_batch("0").unwrap_err().contains("GRACEFUL_UDF_BATCH"));
    }

    #[test]
    fn scale_knob_rejects_nonpositive_nan_and_garbage() {
        assert_eq!(parse_scale("100"), Ok(100.0));
        assert_eq!(parse_scale(" 0.25 "), Ok(0.25));
        for bad in ["0", "-1", "", "NaN", "inf", "-inf", "big", "1e999"] {
            let err = parse_scale(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_SCALE"), "error names the knob: {err}");
        }
    }

    #[test]
    fn thread_and_morsel_knobs_reject_invalid_values() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_morsel(" 512 "), Ok(512));
        for bad in ["0", "-2", "many", "", "1.5"] {
            assert!(parse_threads(bad).is_err(), "threads accepted {bad:?}");
            assert!(parse_morsel(bad).is_err(), "morsel accepted {bad:?}");
        }
        assert!(parse_threads("0").unwrap_err().contains("GRACEFUL_THREADS"));
        assert!(parse_morsel("x").unwrap_err().contains("GRACEFUL_MORSEL"));
        assert!(default_threads() >= 1);
    }

    #[test]
    fn profile_knob_parses_booleans_and_rejects_unknown() {
        for on in ["1", "true", "ON", " Yes "] {
            assert_eq!(parse_profile(on), Ok(true), "{on:?} should enable");
        }
        for off in ["0", "false", "Off", " no "] {
            assert_eq!(parse_profile(off), Ok(false), "{off:?} should disable");
        }
        for bad in ["", "2", "enabled", "y"] {
            let err = parse_profile(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_PROFILE"), "error names the knob: {err}");
        }
    }

    #[test]
    fn verify_knob_parses_modes_and_rejects_unknown() {
        assert_eq!(VerifyMode::parse("strict"), Ok(VerifyMode::Strict));
        assert_eq!(VerifyMode::parse(" On "), Ok(VerifyMode::Strict));
        assert_eq!(VerifyMode::parse("OFF"), Ok(VerifyMode::Off));
        assert_eq!(VerifyMode::default(), VerifyMode::Strict);
        for bad in ["", "lax", "1", "disabled"] {
            let err = VerifyMode::parse(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_VERIFY"), "error names the knob: {err}");
            assert!(err.contains("strict") && err.contains("off"), "lists options: {err}");
        }
    }

    #[test]
    fn plan_verify_knob_parses_modes_and_rejects_unknown() {
        assert_eq!(PlanVerifyMode::parse("strict"), Ok(PlanVerifyMode::Strict));
        assert_eq!(PlanVerifyMode::parse(" On "), Ok(PlanVerifyMode::Strict));
        assert_eq!(PlanVerifyMode::parse("OFF"), Ok(PlanVerifyMode::Off));
        assert_eq!(PlanVerifyMode::default(), PlanVerifyMode::Strict);
        for bad in ["", "lax", "1", "disabled"] {
            let err = PlanVerifyMode::parse(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_PLAN_VERIFY"), "error names the knob: {err}");
            assert!(err.contains("strict") && err.contains("off"), "lists options: {err}");
        }
    }

    #[test]
    fn trace_knob_requires_nonempty_path() {
        assert_eq!(parse_trace(" /tmp/trace.json "), Ok("/tmp/trace.json".to_string()));
        for bad in ["", "   ", "\t"] {
            let err = parse_trace(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_TRACE"), "error names the knob: {err}");
        }
    }

    #[test]
    fn flight_knob_requires_nonempty_path() {
        assert_eq!(parse_flight(" /tmp/flight.jsonl "), Ok("/tmp/flight.jsonl".to_string()));
        for bad in ["", "   ", "\t"] {
            let err = parse_flight(bad).unwrap_err();
            assert!(err.contains("GRACEFUL_FLIGHT"), "error names the knob: {err}");
        }
    }
}
