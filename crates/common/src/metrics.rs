//! Evaluation metrics used throughout the paper's experiments.
//!
//! The paper reports the **Q-error** `Q = max(ŷ/y, y/ŷ)` — the relative
//! factor between estimate and truth, always ≥ 1 — summarised by its median,
//! 95th and 99th percentiles, plus workload **speedups** for the advisor
//! experiments.

/// Q-error between a prediction and the true value (both must be positive).
///
/// Values are clamped to a small epsilon so that zero-cost corner cases do
/// not produce infinities; the paper's workloads never contain zero runtimes.
pub fn q_error(predicted: f64, actual: f64) -> f64 {
    let eps = 1e-9;
    let p = predicted.max(eps);
    let a = actual.max(eps);
    (p / a).max(a / p)
}

/// Percentile (inclusive, nearest-rank with linear interpolation) of a sample.
///
/// `q` is in `[0, 1]`; e.g. `percentile(&v, 0.5)` is the median.
///
/// # Panics
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values must not be NaN"));
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median shortcut.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 0.5)
}

/// Summary of a Q-error distribution as reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QErrorSummary {
    pub median: f64,
    pub p95: f64,
    pub p99: f64,
    pub count: usize,
}

impl QErrorSummary {
    /// Summarise a set of (predicted, actual) pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let qs: Vec<f64> = pairs.iter().map(|&(p, a)| q_error(p, a)).collect();
        Self::from_q_errors(&qs)
    }

    /// Summarise pre-computed Q-errors.
    pub fn from_q_errors(qs: &[f64]) -> Self {
        QErrorSummary {
            median: percentile(qs, 0.5),
            p95: percentile(qs, 0.95),
            p99: percentile(qs, 0.99),
            count: qs.len(),
        }
    }

    /// Element-wise average of several summaries (used to average the 20
    /// leave-one-out folds like Table III's caption describes).
    pub fn average(summaries: &[QErrorSummary]) -> Self {
        assert!(!summaries.is_empty());
        let n = summaries.len() as f64;
        QErrorSummary {
            median: summaries.iter().map(|s| s.median).sum::<f64>() / n,
            p95: summaries.iter().map(|s| s.p95).sum::<f64>() / n,
            p99: summaries.iter().map(|s| s.p99).sum::<f64>() / n,
            count: summaries.iter().map(|s| s.count).sum(),
        }
    }
}

impl std::fmt::Display for QErrorSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:.2} / p95 {:.2} / p99 {:.2} (n={})",
            self.median, self.p95, self.p99, self.count
        )
    }
}

/// Workload speedup: `baseline_runtime / achieved_runtime`.
pub fn speedup(baseline_runtime: f64, achieved_runtime: f64) -> f64 {
    baseline_runtime.max(1e-12) / achieved_runtime.max(1e-12)
}

/// Geometric mean, used for aggregating per-query speedups.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty());
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Process-wide counters fed by the morsel-driven runtime
/// (`graceful-runtime`). Observability only: nothing reads them on a result
/// path, so they never affect determinism. The scaling benches report them to
/// show how much work actually went through the pool.
///
/// Since the `graceful-obs` registry landed this module is a thin
/// compatibility wrapper: the counters live in the registry under the
/// `pool.*` names (`pool.regions`, `pool.inline_regions`, `pool.morsels`,
/// `pool.worker_launches`) and this API reads/writes those same atomics, so
/// `par::snapshot()` and `graceful_obs::registry::snapshot()` always agree.
pub mod par {
    use graceful_obs::registry::{counter, Counter};
    use std::sync::OnceLock;

    struct Handles {
        regions: Counter,
        inline_regions: Counter,
        morsels: Counter,
        worker_launches: Counter,
    }

    fn handles() -> &'static Handles {
        static HANDLES: OnceLock<Handles> = OnceLock::new();
        HANDLES.get_or_init(|| Handles {
            regions: counter("pool.regions"),
            inline_regions: counter("pool.inline_regions"),
            morsels: counter("pool.morsels"),
            worker_launches: counter("pool.worker_launches"),
        })
    }

    /// A parallel region ran on `workers` scoped threads over `morsels`
    /// morsels.
    pub fn record_region(morsels: u64, workers: u64) {
        let h = handles();
        h.regions.incr();
        h.morsels.add(morsels);
        h.worker_launches.add(workers);
    }

    /// A region ran inline on the calling thread (single-thread pool, a
    /// single morsel, or nested inside another region).
    pub fn record_inline(morsels: u64) {
        let h = handles();
        h.inline_regions.incr();
        h.morsels.add(morsels);
    }

    /// Point-in-time view of the counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct ParSnapshot {
        /// Regions that actually forked worker threads.
        pub regions: u64,
        /// Regions that ran inline on the caller.
        pub inline_regions: u64,
        /// Morsels dispatched across all regions.
        pub morsels: u64,
        /// Scoped worker threads launched in total.
        pub worker_launches: u64,
    }

    pub fn snapshot() -> ParSnapshot {
        let h = handles();
        ParSnapshot {
            regions: h.regions.get(),
            inline_regions: h.inline_regions.get(),
            morsels: h.morsels.get(),
            worker_launches: h.worker_launches.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_symmetric_and_at_least_one() {
        assert_eq!(q_error(2.0, 1.0), 2.0);
        assert_eq!(q_error(1.0, 2.0), 2.0);
        assert_eq!(q_error(3.0, 3.0), 1.0);
        assert!(q_error(0.0, 5.0) > 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 0.5), 7.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn summary_orders() {
        let pairs: Vec<(f64, f64)> = (1..=100).map(|i| (i as f64 * 1.1, i as f64)).collect();
        let s = QErrorSummary::from_pairs(&pairs);
        assert!((s.median - 1.1).abs() < 1e-9);
        assert!(s.p95 >= s.median && s.p99 >= s.p95);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn averaging_summaries() {
        let a = QErrorSummary { median: 1.0, p95: 2.0, p99: 3.0, count: 10 };
        let b = QErrorSummary { median: 3.0, p95: 4.0, p99: 5.0, count: 30 };
        let avg = QErrorSummary::average(&[a, b]);
        assert_eq!(avg.median, 2.0);
        assert_eq!(avg.p95, 3.0);
        assert_eq!(avg.count, 40);
    }

    #[test]
    fn speedup_and_geomean() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn par_counters_accumulate() {
        // Counters are process-global and other tests may record
        // concurrently, so only assert lower bounds on the deltas.
        let before = par::snapshot();
        par::record_region(8, 4);
        par::record_inline(3);
        let after = par::snapshot();
        assert!(after.regions > before.regions);
        assert!(after.inline_regions > before.inline_regions);
        assert!(after.morsels >= before.morsels + 11);
        assert!(after.worker_launches >= before.worker_launches + 4);
    }

    #[test]
    fn par_counters_are_registry_counters() {
        // `par` is a compatibility view over the obs registry: both APIs
        // must read the same atomics under the `pool.*` names.
        par::record_region(5, 2);
        let par_view = par::snapshot();
        let reg_view = graceful_obs::registry::snapshot();
        assert_eq!(par_view.regions, reg_view.counter("pool.regions"));
        assert_eq!(par_view.inline_regions, reg_view.counter("pool.inline_regions"));
        assert_eq!(par_view.morsels, reg_view.counter("pool.morsels"));
        assert_eq!(par_view.worker_launches, reg_view.counter("pool.worker_launches"));
    }

    #[test]
    fn registry_histogram_percentiles_match_paper_metrics() {
        // The obs registry's p50/p95/p99 must agree bit-for-bit with this
        // module's `percentile` on identical samples — the registry is the
        // operational view, this module is the paper-metrics view, and the
        // two must never tell different stories about the same data.
        let samples: Vec<f64> =
            (0..1000).map(|i| ((i * 7919) % 1000) as f64 * 0.25 + 1.0).collect();
        let h = graceful_obs::registry::histogram("test.common.percentile_crosscheck");
        for &s in &samples {
            h.record(s);
        }
        let summary = h.summary().expect("samples recorded");
        assert_eq!(summary.p50.to_bits(), percentile(&samples, 0.5).to_bits());
        assert_eq!(summary.p95.to_bits(), percentile(&samples, 0.95).to_bits());
        assert_eq!(summary.p99.to_bits(), percentile(&samples, 0.99).to_bits());
        assert_eq!(
            graceful_obs::registry::percentile(&samples, 0.95).to_bits(),
            percentile(&samples, 0.95).to_bits()
        );
    }
}
