//! Deterministic random number generation.
//!
//! All stochastic choices in the reproduction flow through [`Rng`], a thin
//! wrapper over `rand::rngs::StdRng` seeded explicitly. Child generators are
//! derived with [`Rng::fork`] so that independent subsystems (data
//! generation, query generation, model init) never perturb each other's
//! streams — adding a query to the workload does not change the data.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng as _, SeedableRng};

/// A deterministic, fork-able random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
}

impl Rng {
    /// Create a generator from an explicit 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        Rng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child generator.
    ///
    /// The child stream is a pure function of `(parent seed so far, salt)`,
    /// so two forks with different salts are independent and reproducible.
    pub fn fork(&mut self, salt: u64) -> Self {
        let base: u64 = self.inner.gen();
        Rng::seed(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample from a range (`low..high` or `low..=high`).
    pub fn range<T, R>(&mut self, r: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(r)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Choose an element of a slice uniformly at random.
    ///
    /// # Panics
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        let idx = self.inner.gen_range(0..items.len());
        &items[idx]
    }

    /// Choose an index according to (unnormalised, non-negative) weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Sample `k` distinct indices from `0..n` (k is clamped to n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut self.inner);
        idx.truncate(k);
        idx
    }

    /// Standard normal draw (Box–Muller; two uniforms per call).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen::<f64>().max(1e-12);
        let u2: f64 = self.inner.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Zipf-like draw over `0..n` with skew `s` (s=0 is uniform).
    ///
    /// Implemented via inverse-CDF over the harmonic weights; intended for
    /// modest `n` (data generation uses it per column domain, not per row —
    /// callers cache the CDF when sampling many rows).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        if s <= 0.0 {
            return self.inner.gen_range(0..n);
        }
        // Rejection-free two-pass is O(n); fine for domain construction.
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
        }
        let mut target = self.inner.gen::<f64>() * total;
        for i in 0..n {
            target -= 1.0 / ((i + 1) as f64).powf(s);
            if target <= 0.0 {
                return i;
            }
        }
        n - 1
    }

    /// Raw `u64`, for deriving salts.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// Build a cached Zipf cumulative distribution over `n` ranks with skew `s`.
///
/// Returns a vector of cumulative probabilities; sample with
/// [`sample_cdf`]. Used by the data generators, which draw millions of values
/// from the same skewed domain.
pub fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0);
    let mut weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s.max(0.0))).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    for w in weights.iter_mut() {
        acc += *w / total;
        *w = acc;
    }
    // Guard against FP drift at the tail.
    if let Some(last) = weights.last_mut() {
        *last = 1.0;
    }
    weights
}

/// Sample a rank from a cumulative distribution produced by [`zipf_cdf`].
pub fn sample_cdf(rng: &mut Rng, cdf: &[f64]) -> usize {
    let u = rng.unit();
    match cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
        Ok(i) => i,
        Err(i) => i.min(cdf.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed(7);
        let mut b = Rng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_with_same_salt_from_same_state_agree() {
        let mut parent1 = Rng::seed(42);
        let mut parent2 = Rng::seed(42);
        let mut f1 = parent1.fork(1);
        let mut f2 = parent2.fork(1);
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_salts_diverge() {
        let mut parent = Rng::seed(42);
        // Same parent state consumed once per fork; different salts must
        // yield different streams.
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Rng::seed(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.choose_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "frac2={frac2}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn zipf_cdf_is_monotone_and_complete() {
        let cdf = zipf_cdf(100, 1.1);
        assert_eq!(cdf.len(), 100);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let mut rng = Rng::seed(5);
        let cdf = zipf_cdf(50, 1.5);
        let mut low = 0;
        for _ in 0..5_000 {
            if sample_cdf(&mut rng, &cdf) < 5 {
                low += 1;
            }
        }
        // With s=1.5 the first 5 ranks carry well over half the mass.
        assert!(low > 2_500, "low={low}");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed(9);
        let idx = rng.sample_indices(20, 10);
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }
}
