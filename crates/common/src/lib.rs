//! Shared primitives for the GRACEFUL reproduction.
//!
//! This crate hosts the pieces every other crate needs: a deterministic,
//! seedable random-number generator ([`rng::Rng`]), evaluation metrics
//! (Q-error and percentile helpers in [`metrics`]), experiment scaling knobs
//! ([`config::ScaleConfig`]) and the shared error type ([`GracefulError`]).
//!
//! Everything in the reproduction is deterministic given a seed: data
//! generation, workload generation, model initialisation and training all
//! draw from [`rng::Rng`] instances derived from explicit seeds, so every
//! experiment table can be regenerated bit-for-bit.

pub mod config;
pub mod metrics;
pub mod rng;

use std::fmt;

/// Errors surfaced by the GRACEFUL crates.
///
/// The reproduction favours explicit `Result`s over panics for anything that
/// can be triggered by user input (parsing UDF source, building plans over a
/// catalog, featurizing graphs). Internal invariant violations still use
/// `debug_assert!`/`panic!` as they indicate bugs, not bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum GracefulError {
    /// UDF source code failed to lex or parse.
    Parse { line: usize, message: String },
    /// A UDF failed while being evaluated (type error, unknown function, ...).
    Eval(String),
    /// A UDF loop ran past the engine's iteration cap. Typed (rather than a
    /// generic `Eval` string) so executors and schedulers can distinguish
    /// "this UDF diverges" from ordinary evaluation failures; both UDF
    /// backends report it identically.
    IterationLimit {
        /// The cap that was exceeded.
        limit: u64,
    },
    /// A name (table, column, UDF parameter) could not be resolved.
    Unresolved(String),
    /// A plan is structurally invalid (e.g. join on missing columns).
    InvalidPlan(String),
    /// Model training / inference failed (shape mismatch, empty dataset, ...).
    Model(String),
    /// Corpus/bench construction failed.
    Benchmark(String),
    /// Invalid engine configuration (zero batch/morsel/thread counts, an
    /// unknown backend name, a malformed `GRACEFUL_*` value). Surfaced by
    /// `Session`/`ExecOptions` validation instead of panicking, so embedding
    /// programs can report misconfiguration like any other error.
    Config(String),
    /// A logical plan failed pre-execution static verification (cycle or
    /// dangling child in the DAG, wrong operator arity, unknown table or
    /// column, type-incompatible join keys, UDF input mismatch, an impossible
    /// `est_out_rows` annotation, or a violated physical-lowering invariant).
    /// Raised by `graceful_plan::analysis::verify` — under the default
    /// `GRACEFUL_PLAN_VERIFY=strict` every plan is checked before lowering,
    /// so a malformed plan surfaces here as a typed error naming the
    /// offending operator instead of as an engine panic mid-execution.
    PlanVerify(String),
    /// Compiled UDF bytecode failed static verification (out-of-bounds jump
    /// target or register, use of a possibly-uninitialized register, a path
    /// that falls off the end of the program, misplaced cost charges, ...).
    /// Raised by `graceful_udf::analysis::verify` — under the default
    /// `GRACEFUL_VERIFY=strict` every `compile()` result is checked, so a
    /// compiler bug surfaces here as a typed error instead of as
    /// backend-divergent behaviour or a release-mode panic downstream.
    Verify(String),
}

impl fmt::Display for GracefulError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GracefulError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GracefulError::Eval(m) => write!(f, "UDF evaluation error: {m}"),
            GracefulError::IterationLimit { limit } => {
                write!(f, "iteration limit: loop exceeded {limit} iterations")
            }
            GracefulError::Unresolved(m) => write!(f, "unresolved name: {m}"),
            GracefulError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            GracefulError::Model(m) => write!(f, "model error: {m}"),
            GracefulError::Benchmark(m) => write!(f, "benchmark error: {m}"),
            GracefulError::Config(m) => write!(f, "configuration error: {m}"),
            GracefulError::PlanVerify(m) => write!(f, "plan verification failed: {m}"),
            GracefulError::Verify(m) => write!(f, "bytecode verification failed: {m}"),
        }
    }
}

impl std::error::Error for GracefulError {}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GracefulError>;
