//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! No shrinking, no persistence — just deterministic case generation: each
//! `proptest!` test expands to a plain `#[test]` that samples its inputs from
//! ranges for `config.cases` iterations with an RNG seeded from the test
//! name, so failures reproduce exactly across runs. `prop_assert*` map to
//! the std `assert*` macros; `prop_assume!` discards the case.

use std::ops::{Range, RangeInclusive};

/// Runner configuration (field-compatible with the upstream usage here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream-API parity; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32, max_shrink_iters: 0 }
    }
}

/// SplitMix64 — small, deterministic, and good enough for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Input generators: the range expressions used in `x in lo..hi` clauses.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.end > self.start, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

/// Marker for a discarded case (`prop_assume!` failed).
#[derive(Debug)]
pub struct CaseRejected;

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, CaseRejected,
        ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discard the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseRejected);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::CaseRejected);
        }
    };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            let mut __ran: u32 = 0;
            for _ in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __case = || {
                    $body
                    ::std::result::Result::Ok(())
                };
                let __result: ::std::result::Result<(), $crate::CaseRejected> = __case();
                if __result.is_ok() {
                    __ran += 1;
                }
            }
            let _ = __ran;
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges produce values inside their bounds.
        #[test]
        fn int_ranges_in_bounds(x in 5u64..50, y in -3i64..=3) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn float_ranges_in_bounds(f in 0.25f64..0.5) {
            prop_assert!((0.25..0.5).contains(&f));
        }

        #[test]
        fn assume_discards(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
