//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides `Criterion::bench_function` with a simple warm-up + timed-batch
//! measurement loop and the `criterion_group!` / `criterion_main!` macros.
//! No statistical analysis, plots or baselines — it reports mean ns/iter and
//! iterations/second per benchmark, which is all the workspace's
//! micro-benchmarks read off.

use std::time::{Duration, Instant};

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark and print its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        // Warm-up: run until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
        }
        // Measurement: spread the budget over `sample_size` samples.
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let meas_start = Instant::now();
        let mut samples = 0usize;
        while samples < self.sample_size || meas_start.elapsed() < self.measurement_time {
            f(&mut b);
            samples += 1;
            if meas_start.elapsed() >= self.measurement_time && samples >= self.sample_size {
                break;
            }
        }
        let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!("{name:<40} {ns:>14.1} ns/iter   {:>14.0} iters/s", 1e9 / ns.max(1e-9));
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated executions of `f`. The shim adaptively sizes the inner
    /// batch so that per-batch timer overhead stays negligible.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for batches of roughly 1ms.
        let probe_start = Instant::now();
        std::hint::black_box(f());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += batch + 1;
        self.elapsed += probe;
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }
}
