//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! in-tree serde shim.
//!
//! With no crates.io access there is no `syn`/`quote`, so this macro parses
//! the item's token stream directly. It supports exactly the shapes the
//! workspace derives on: non-generic structs with named fields (honouring
//! `#[serde(skip)]`), tuple/newtype structs, unit structs, and non-generic
//! enums with unit, tuple and struct variants (externally tagged, like
//! upstream serde's default representation). Anything else panics at compile
//! time with a clear message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    // Skip attributes / visibility until the `struct` / `enum` keyword.
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct/enum found in derive input"),
        }
    }
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic type `{name}`");
        }
    }
    let shape = if is_enum {
        let body = expect_brace(&toks, i, &name);
        Shape::Enum(parse_variants(body, &name))
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream(), &name))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        }
    };
    Item { name, shape }
}

fn expect_brace(toks: &[TokenTree], i: usize, name: &str) -> TokenStream {
    match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, got {other:?}"),
    }
}

/// Consume leading `#[...]` attributes; returns (next index, saw serde skip).
fn take_attrs(toks: &[TokenTree], mut i: usize, ctx: &str) -> (usize, bool) {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() != '#' {
            break;
        }
        let group = match toks.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde_derive: malformed attribute in {ctx}: {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                let args = match inner.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        g.stream()
                    }
                    other => panic!("serde_derive: malformed #[serde] in {ctx}: {other:?}"),
                };
                for t in args {
                    match &t {
                        TokenTree::Ident(a) if a.to_string() == "skip" => skip = true,
                        TokenTree::Punct(p) if p.as_char() == ',' => {}
                        other => panic!(
                            "serde_derive shim only supports #[serde(skip)], found {other} in {ctx}"
                        ),
                    }
                }
            }
        }
        i += 2;
    }
    (i, skip)
}

fn parse_named_fields(stream: TokenStream, ctx: &str) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, skip) = take_attrs(&toks, i, ctx);
        i = j;
        if i >= toks.len() {
            break;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = toks.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name in {ctx}, got {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive: expected `:` after field `{name}` in {ctx}, got {other:?}")
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 0;
    let mut in_segment = false;
    let mut angle = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                arity += 1;
                in_segment = false;
                continue;
            }
            _ => {}
        }
        in_segment = true;
    }
    if in_segment {
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream, ctx: &str) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (j, _skip) = take_attrs(&toks, i, ctx);
        i = j;
        if i >= toks.len() {
            break;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name in {ctx}, got {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream(), ctx))
            }
            _ => VariantKind::Unit,
        };
        // Consume a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::new();\n{pushes}::serde::Content::Map(__m)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Content::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_content(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Content::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(::std::string::String::from(\"{vname}\"), ::serde::Content::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n        {body}\n    }}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::core::default::Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!("{0}: ::serde::field(__m, \"{0}\")?,\n", f.name));
                }
            }
            format!(
                "let __m = __c.as_map().ok_or_else(|| ::serde::de_error(\"expected map for {name}\"))?;\n::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| ::serde::de_error(\"expected sequence for {name}\"))?;\nif __s.len() != {n} {{ return ::std::result::Result::Err(::serde::de_error(\"wrong tuple arity for {name}\")); }}\n::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_content(__v)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n    let __s = __v.as_seq().ok_or_else(|| ::serde::de_error(\"expected sequence for {name}::{vname}\"))?;\n    if __s.len() != {n} {{ return ::std::result::Result::Err(::serde::de_error(\"wrong arity for {name}::{vname}\")); }}\n    ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{0}: ::serde::field(__mm, \"{0}\")?", f.name))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n    let __mm = __v.as_map().ok_or_else(|| ::serde::de_error(\"expected map for {name}::{vname}\"))?;\n    ::std::result::Result::Ok({name}::{vname} {{ {} }})\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}__other => ::std::result::Result::Err(::serde::de_error(format!(\"unknown {name} variant {{__other}}\"))),\n}},\n::serde::Content::Map(__m) if __m.len() == 1 => {{\nlet (__k, __v) = &__m[0];\nmatch __k.as_str() {{\n{data_arms}__other => ::std::result::Result::Err(::serde::de_error(format!(\"unknown {name} variant {{__other}}\"))),\n}}\n}},\n_ => ::std::result::Result::Err(::serde::de_error(\"expected string or single-key map for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}
