//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`], bridging JSON text and the serde shim's
//! [`Content`] model. Covers the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null); floats are printed with Rust's
//! shortest round-trip formatting so models serialize losslessly.

use serde::{Content, Deserialize, Serialize};

/// Error type for both directions (a plain message, like the shim's serde).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize any `Serialize` value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out);
    Ok(out)
}

/// Parse a JSON string and deserialize it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::Int(i) => {
            out.push_str(&i.to_string());
        }
        Content::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Content::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that round-trips
                // exactly (always includes a `.` or exponent, so it re-parses
                // as a float).
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no NaN/inf; the cost model sanitizes these away,
                // so encountering one is a bug we keep visible as null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'n') => self.literal("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, val: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|c| c as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::Int)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            // Prefer Int when it fits so signed/unsigned views both work.
            match text.parse::<i64>() {
                Ok(i) => Ok(Content::Int(i)),
                Err(_) => text
                    .parse::<u64>()
                    .map(Content::UInt)
                    .map_err(|_| Error(format!("invalid integer `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn float_shortest_repr_round_trips_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 3.0] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x, "via {s}");
        }
    }

    #[test]
    fn nested_structures() {
        let v = vec![vec![1i64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<i64>>>(&s).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "a\"b\\c\nd\tü€".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
        assert_eq!(from_str::<String>(r#""A\n""#).unwrap(), "A\n");
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u8> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
