//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The real serde is generic over serializers; every consumer in this
//! repository only ever round-trips models through `serde_json`, so the shim
//! collapses the design to a single self-describing [`Content`] tree:
//! [`Serialize`] renders a value *into* a `Content`, [`Deserialize`] rebuilds
//! a value *from* one, and the `serde_json` shim handles `Content` ⇄ JSON
//! text. The derive macros (re-exported from `serde_derive`) generate both
//! impls for structs and enums, honouring `#[serde(skip)]` the same way
//! upstream does (omitted on write, `Default::default()` on read).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the meeting point of both traits.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    /// Signed integers (everything representable as `i64`).
    Int(i64),
    /// Unsigned integers that do not fit `i64`.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key order is preserved (JSON objects round-trip stably).
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Int(_) | Content::UInt(_) => "integer",
            Content::Float(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization into the [`Content`] model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Deserialization error (a plain message; the shim has no error taxonomy).
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// Look up a named struct field in a map during deserialization.
pub fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_content(v),
        None => Err(de_error(format!("missing field `{name}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Int(i) => Ok(*i as $t),
                    Content::UInt(u) => Ok(*u as $t),
                    Content::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(de_error(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.type_name()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Content::Int(v as i64)
                } else {
                    Content::UInt(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Int(i) if *i >= 0 => Ok(*i as $t),
                    Content::UInt(u) => Ok(*u as $t),
                    Content::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(de_error(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Float(f) => Ok(*f as $t),
                    Content::Int(i) => Ok(*i as $t),
                    Content::UInt(u) => Ok(*u as $t),
                    other => Err(de_error(format!(
                        concat!("expected ", stringify!($t), ", got {}"), other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(de_error(format!("expected bool, got {}", other.type_name()))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(de_error(format!("expected string, got {}", other.type_name()))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => {
                Err(de_error(format!("expected single-char string, got {}", other.type_name())))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => Ok(Some(T::from_content(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(de_error(format!("expected sequence, got {}", other.type_name()))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| de_error("expected tuple sequence"))?;
                let expected = [$($n),+].len();
                if seq.len() != expected {
                    return Err(de_error(format!(
                        "expected tuple of {expected}, got {} elements", seq.len()
                    )));
                }
                Ok(($($t::from_content(&seq[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        let v: Vec<u32> = Vec::from_content(&vec![1u32, 2, 3].to_content()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn big_u64_uses_uint() {
        let big = u64::MAX - 3;
        assert_eq!(big.to_content(), Content::UInt(big));
        assert_eq!(u64::from_content(&Content::UInt(big)).unwrap(), big);
    }

    #[test]
    fn tuples_and_refs() {
        let store = (1u32, "x".to_string());
        let c = (&store.0, &store.1).to_content();
        let back: (u32, String) = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn option_round_trips_via_null() {
        assert_eq!(Option::<u32>::from_content(&None::<u32>.to_content()).unwrap(), None);
        assert_eq!(Option::<u32>::from_content(&Some(5u32).to_content()).unwrap(), Some(5));
    }
}
